"""Benchmark: the online-appendix sampling-strategy family."""

from __future__ import annotations

from repro.experiments.appendix_sampling import run_appendix_sampling


def _mean(cell: str) -> float:
    return float(str(cell).split("±")[0])


def test_bench_appendix_sampling(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_appendix_sampling(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    rows = {row["sampling"]: row for row in report.rows}
    # Consistency with the main text: cluster designs cut the cost on
    # every real profile (entity-identification savings).  A 5% slack
    # absorbs Monte-Carlo ties at benchmark repetition counts; at the
    # paper's 1,000 reps the inequality is strict (EXPERIMENTS.md).
    for dataset in ("YAGO", "NELL", "DBPEDIA"):
        assert _mean(rows["TWCS"][f"{dataset} cost"]) < 1.05 * _mean(
            rows["SRS"][f"{dataset} cost"]
        ), dataset
    # Stratification never does materially worse than SRS.
    for dataset in ("YAGO", "NELL", "DBPEDIA", "FACTBENCH"):
        assert _mean(rows["STRAT"][f"{dataset} triples"]) <= 1.2 * _mean(
            rows["SRS"][f"{dataset} triples"]
        ), dataset
