"""Benchmarks: the parallel study-execution runtime.

Two acceptance scenarios:

* **cell fan-out** — a representative multi-cell study (the Table 3
  grid at reduced repetitions) run through ``ParallelExecutor`` with 4
  workers must be bit-identical to the serial path, show a parallel
  speedup when the hardware can provide one, and be served entirely
  from the ``ResultStore`` cache on a second invocation;
* **repetition sharding** — a *single* 1,000-repetition coverage cell
  (the shape cell fan-out cannot help: one cell, one worker) run with
  4 workers and ``chunk_size=50`` must be bit-identical to the serial
  run and at least 2x faster when >= 4 cores are available.

The persisted results file records only deterministic facts (cell
counts, identity and cache verdicts); wall-clock numbers and the
measured speedups print to stdout.  Machine-readable timing and cache
metrics — the telemetry aggregate of each benchmarked run plus its
wall-clock — additionally land in ``benchmarks/BENCH_runtime.json``, a
schema-versioned trajectory file kept *outside* ``benchmarks/results``
so the results drift gate never diffs hardware-dependent numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentSettings
from repro.experiments.table3 import table3_plan
from repro.runtime import (
    DynamicAuditCell,
    ParallelExecutor,
    ResultStore,
    SequentialCoverageCell,
    StudyPlan,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable benchmark trajectory.  Deliberately *not* under
#: ``benchmarks/results`` — that directory is drift-gated in CI, and
#: this file carries wall-clock numbers that differ per machine.
BENCH_JSON = Path(__file__).parent / "BENCH_runtime.json"

#: Version of the trajectory-file layout (bump on breaking change).
BENCH_SCHEMA_VERSION = 1

#: Cores needed before a hard >= 2x wall-clock assertion is meaningful.
_SPEEDUP_CORES = 4


def _record_bench(scenario: str, outcome, wall_seconds: float, **extra) -> None:
    """Merge one scenario's metrics into ``BENCH_runtime.json``.

    Read-modify-write so the sharding and dynamic-audit tests (run in
    either order, or alone) each update only their own scenario key.
    The payload is the run's full telemetry aggregate
    (``outcome.metrics.as_dict()``, itself schema-versioned) plus the
    scenario wall-clock and any extra deterministic facts.
    """
    try:
        trajectory = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        if trajectory.get("schema_version") != BENCH_SCHEMA_VERSION:
            trajectory = {}
    except (FileNotFoundError, ValueError):
        trajectory = {}
    trajectory.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    scenarios = trajectory.setdefault("scenarios", {})
    scenarios[scenario] = {
        "wall_seconds": round(wall_seconds, 3),
        "cores": os.cpu_count() or 1,
        "metrics": outcome.metrics.as_dict() if outcome.metrics else None,
        **extra,
    }
    BENCH_JSON.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _studies_equal(a, b) -> bool:
    return (
        np.array_equal(a.triples, b.triples)
        and np.array_equal(a.cost_hours, b.cost_hours)
        and np.array_equal(a.estimates, b.estimates)
        and np.array_equal(a.entities, b.entities)
        and np.array_equal(a.converged, b.converged)
    )


def test_bench_runtime_parallel_cache(tmp_path, bench_settings, monkeypatch):
    # The serial baseline must be genuinely serial and unsharded even
    # under the CI matrix legs that export these knobs suite-wide.
    monkeypatch.delenv("REPRO_CHUNK_SIZE", raising=False)
    monkeypatch.delenv("REPRO_CHUNK_SECONDS", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    settings = ExperimentSettings(
        repetitions=max(10, bench_settings.repetitions // 3),
        datasets=("YAGO", "NELL"),
    )
    plan = table3_plan(settings)  # 2 datasets x 2 strategies x 3 methods

    start = time.perf_counter()
    serial = ParallelExecutor(workers=1).run(plan)
    serial_wall = time.perf_counter() - start

    store = ResultStore(tmp_path / "cache")
    start = time.perf_counter()
    parallel = ParallelExecutor(workers=4, store=store).run(plan)
    parallel_wall = time.perf_counter() - start

    identical = all(
        _studies_equal(serial.results[key], parallel.results[key])
        for key in serial.results
    )
    assert identical
    assert parallel.cache_misses == len(plan)

    start = time.perf_counter()
    cached = ParallelExecutor(workers=4, store=store).run(plan)
    cached_wall = time.perf_counter() - start
    assert cached.cache_hits == len(plan)
    assert cached.cache_misses == 0
    cached_identical = all(
        _studies_equal(serial.results[key], cached.results[key])
        for key in serial.results
    )
    assert cached_identical
    assert cached_wall < serial_wall

    speedup = serial_wall / parallel_wall
    cores = os.cpu_count() or 1
    if cores >= _SPEEDUP_CORES:
        # The acceptance bar; only meaningful with real parallelism.
        assert speedup >= 2.0, f"speedup {speedup:.2f}x on {cores} cores"

    timing_lines = [
        "runtime benchmark (Table 3 grid, "
        f"{len(plan)} cells x {settings.repetitions} reps, {cores} cores)",
        f"  serial (1 worker)        : {serial_wall:7.2f} s",
        f"  parallel (4 workers)     : {parallel_wall:7.2f} s"
        f"  ({speedup:.2f}x)",
        f"  cached re-run            : {cached_wall:7.2f} s",
        "  speedup >= 2x asserted   : "
        + ("yes" if cores >= _SPEEDUP_CORES else f"skipped ({cores} cores < {_SPEEDUP_CORES})"),
    ]
    # Only machine-independent facts go to disk; wall-clock numbers,
    # the measured speedup, and the core-count-dependent assertion
    # status stay on stdout.
    file_lines = [
        "runtime acceptance (deterministic fields only; timings on stdout)",
        "=================================================================",
        f"grid                                    : table3, {len(plan)} cells",
        "parallel (4 workers) == serial          : "
        + ("yes" if identical else "NO"),
        "second invocation served from cache     : "
        + (f"yes ({cached.cache_hits}/{len(plan)} cells)" if cached.cache_hits == len(plan) else "NO"),
        "cached re-run == serial                 : "
        + ("yes" if cached_identical else "NO"),
    ]
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "runtime.txt"
    path.write_text("\n".join(file_lines) + "\n", encoding="utf-8")
    print("\n" + "\n".join(timing_lines + [""] + file_lines) + f"\n[written to {path}]")


def test_bench_runtime_repetition_sharding(monkeypatch):
    """The acceptance scenario: one 1,000-repetition coverage cell.

    Cell-level fan-out is powerless here — the plan has a single cell —
    so any speedup must come from repetition sharding.  With 4 workers
    and ``chunk_size=50`` (20 shards) the merged result must be
    bit-identical to the serial run; the >= 2x wall-clock bar is
    asserted only when the hardware has >= 4 cores (timings go to
    stdout, never into the results file).
    """
    # Pin the baseline serial and unsharded regardless of the CI leg's
    # suite-wide env knobs.
    monkeypatch.delenv("REPRO_CHUNK_SIZE", raising=False)
    monkeypatch.delenv("REPRO_CHUNK_SECONDS", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    repetitions = 1_000
    chunk_size = 50
    settings = ExperimentSettings(repetitions=repetitions, seed=0)
    cell = SequentialCoverageCell(
        key=("seq-coverage", "Wilson", 0.9),
        label="seq-coverage/Wilson/mu=0.9",
        method="Wilson",
        mu=0.9,
        seed=7,
        repetitions=repetitions,
    )
    plan = StudyPlan(settings=settings, cells=(cell,), name="sharding")

    start = time.perf_counter()
    serial = ParallelExecutor(workers=1).run(plan)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    sharded = ParallelExecutor(workers=4, chunk_size=chunk_size).run(plan)
    sharded_wall = time.perf_counter() - start

    identical = serial.results[cell.key] == sharded.results[cell.key]
    assert identical
    assert sharded.cells[0].shards == repetitions // chunk_size

    # A ragged chunking (non-divisor of 1,000) must merge identically too.
    ragged = ParallelExecutor(workers=4, chunk_size=33).run(plan)
    ragged_identical = serial.results[cell.key] == ragged.results[cell.key]
    assert ragged_identical

    speedup = serial_wall / sharded_wall
    cores = os.cpu_count() or 1
    if cores >= _SPEEDUP_CORES:
        # The acceptance bar; only meaningful with real parallelism.
        assert speedup >= 2.0, f"sharded speedup {speedup:.2f}x on {cores} cores"

    timing_lines = [
        "repetition-sharding benchmark "
        f"(1 cell x {repetitions} reps, chunk_size={chunk_size}, {cores} cores)",
        f"  serial (1 worker, unsharded)      : {serial_wall:7.2f} s",
        f"  sharded (4 workers, 20 shards)    : {sharded_wall:7.2f} s"
        f"  ({speedup:.2f}x)",
        "  speedup >= 2x asserted            : "
        + ("yes" if cores >= _SPEEDUP_CORES else f"skipped ({cores} cores < {_SPEEDUP_CORES})"),
    ]
    file_lines = [
        "repetition sharding (deterministic fields only; timings on stdout)",
        "==================================================================",
        f"grid                                    : 1 cell x {repetitions} reps",
        f"sharded (chunk=50, 4 workers) == serial : "
        + ("yes (20 shards)" if identical else "NO"),
        "ragged chunking (chunk=33) == serial    : "
        + ("yes (31 shards)" if ragged_identical else "NO"),
    ]
    _record_bench(
        "repetition-sharding",
        sharded,
        sharded_wall,
        serial_wall_seconds=round(serial_wall, 3),
        speedup=round(speedup, 2),
        chunk_size=chunk_size,
        shards=repetitions // chunk_size,
        identical=bool(identical),
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "runtime-sharding.txt"
    path.write_text("\n".join(file_lines) + "\n", encoding="utf-8")
    print("\n" + "\n".join(timing_lines + [""] + file_lines) + f"\n[written to {path}]")


def test_bench_runtime_audit_sharding(monkeypatch):
    """Dynamic-audit sharding: one multi-repetition evolving-KG cell.

    The Sec.-8 workload is the hardest sharding case the runtime hosts:
    every repetition is a full multi-round stream with the carried
    prior threaded through its rounds, so a buggy reducer would corrupt
    the round boundary rather than merely reorder numbers.  The
    scenario runs one 12-replication dynamic cell serially and sharded
    (4 workers) and asserts bit-identity record by record — carried
    priors included.

    Chunking honours ``REPRO_CHUNK_SECONDS`` when the CI leg exports it
    (adaptive pilot-calibrated shards) and falls back to a fixed
    ``chunk_size=2`` otherwise; either way the persisted results file
    records only deterministic facts, so both legs must produce it byte
    for byte.
    """
    chunk_seconds = os.environ.get("REPRO_CHUNK_SECONDS", "").strip()
    monkeypatch.delenv("REPRO_CHUNK_SIZE", raising=False)
    monkeypatch.delenv("REPRO_CHUNK_SECONDS", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    repetitions = 12
    settings = ExperimentSettings(repetitions=repetitions, seed=0)
    cell = DynamicAuditCell(
        key=("dynamic-audit",),
        label="dynamic-audit/stable-drift",
        method="aHPD",
        base_facts=900,
        base_accuracy=0.85,
        updates=((450, 0.85, 0.3), (450, 0.5, 0.3)),
        stream_seed=7,
        strategy="TWCS:3",
        carryover=1.0,
        seed=123,
        repetitions=repetitions,
    )
    plan = StudyPlan(settings=settings, cells=(cell,), name="audit-sharding")

    start = time.perf_counter()
    serial = ParallelExecutor(workers=1).run(plan)
    serial_wall = time.perf_counter() - start

    if chunk_seconds:
        sharded_executor = ParallelExecutor(
            workers=4, chunk_seconds=float(chunk_seconds)
        )
        mode = f"chunk_seconds={chunk_seconds} (adaptive)"
    else:
        sharded_executor = ParallelExecutor(workers=4, chunk_size=2)
        mode = "chunk_size=2 (fixed)"
    start = time.perf_counter()
    sharded = sharded_executor.run(plan)
    sharded_wall = time.perf_counter() - start

    identical = serial.results[cell.key] == sharded.results[cell.key]
    assert identical
    boundary_intact = all(
        record.carried_prior == previous.posterior_prior
        for stream in sharded.results[cell.key].streams
        for previous, record in zip(stream, stream[1:])
    )
    assert boundary_intact
    study = sharded.results[cell.key]
    assert study.repetitions == repetitions
    assert study.rounds == 3

    cores = os.cpu_count() or 1
    speedup = serial_wall / sharded_wall
    timing_lines = [
        "dynamic-audit sharding benchmark "
        f"(1 cell x {repetitions} stream replications x 3 rounds, "
        f"{mode}, {cores} cores)",
        f"  serial (1 worker, unsharded)      : {serial_wall:7.2f} s",
        f"  sharded (4 workers)               : {sharded_wall:7.2f} s"
        f"  ({speedup:.2f}x)",
    ]
    # Deterministic fields only: the sharding mode (fixed vs the CI
    # leg's adaptive REPRO_CHUNK_SECONDS) and all wall-clock numbers
    # stay on stdout so both legs reproduce this file byte for byte.
    file_lines = [
        "dynamic-audit sharding (deterministic fields only; timings on stdout)",
        "=====================================================================",
        f"grid                                    : 1 cell x {repetitions} "
        "stream replications x 3 rounds",
        "sharded (4 workers) == serial           : "
        + ("yes" if identical else "NO"),
        "carried-prior round boundary intact     : "
        + ("yes" if boundary_intact else "NO"),
        f"mean annotated triples per round        : "
        f"{study.triples.mean():.3f}",
        f"convergence rate                        : "
        f"{study.converged.mean():.3f}",
    ]
    _record_bench(
        "dynamic-audit-sharding",
        sharded,
        sharded_wall,
        serial_wall_seconds=round(serial_wall, 3),
        speedup=round(speedup, 2),
        mode=mode,
        identical=bool(identical),
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "audit-sharding.txt"
    path.write_text("\n".join(file_lines) + "\n", encoding="utf-8")
    print("\n" + "\n".join(timing_lines + [""] + file_lines) + f"\n[written to {path}]")
