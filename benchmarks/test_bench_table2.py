"""Benchmark: regenerate Table 2 (prior selection under SRS).

The paper's findings checked against the regenerated rows:

* HPD converges with no more triples than ET under every prior on the
  skewed datasets;
* aHPD matches the best fixed-prior HPD per dataset.
"""

from __future__ import annotations

from repro.experiments.table2 import run_table2


def _mean(cell: str) -> float:
    return float(str(cell).split("±")[0])


def test_bench_table2(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_table2(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    rows = {row["interval"]: row for row in report.rows}
    for dataset in ("YAGO", "NELL", "DBPEDIA"):
        for prior in ("Kerman", "Jeffreys", "Uniform"):
            et = _mean(rows[f"ET[{prior}]"][dataset])
            hpd = _mean(rows[f"HPD[{prior}]"][dataset])
            assert hpd <= et * 1.05, (dataset, prior)
        # aHPD tracks the best HPD (tolerance: Monte-Carlo noise).
        best_hpd = min(
            _mean(rows[f"HPD[{prior}]"][dataset])
            for prior in ("Kerman", "Jeffreys", "Uniform")
        )
        ahpd = _mean(rows["aHPD[{K, J, U}]"][dataset])
        assert ahpd <= best_hpd * 1.15, dataset
