"""Benchmark: the coverage audit (paper Sec. 3.3 extension)."""

from __future__ import annotations

from repro.experiments.coverage_audit import run_coverage_audit


def _pct(cell: str) -> float:
    return float(str(cell).rstrip("%"))


def test_bench_coverage(benchmark, bench_settings, emit_report):
    settings = bench_settings.with_repetitions(
        max(1_000, bench_settings.repetitions * 10)
    )
    report = benchmark.pedantic(
        lambda: run_coverage_audit(settings), rounds=1, iterations=1
    )
    emit_report(report)
    rows = {row["method"]: row for row in report.rows}
    # Wald collapses near the boundary; Wilson does not.
    assert _pct(rows["Wald"]["mu=0.99"]) < 85.0
    assert _pct(rows["Wilson"]["mu=0.99"]) > 90.0
    # Clopper-Pearson is conservative in the centre.
    assert _pct(rows["Clopper-Pearson"]["mu=0.5"]) >= 95.0
