"""Benchmark-harness configuration.

Each benchmark regenerates one paper artifact (table / figure /
example), times the full reproduction with pytest-benchmark, prints the
regenerated rows, and writes them under ``benchmarks/results/`` so that
EXPERIMENTS.md can quote paper-vs-measured values.

Repetition counts default to a bench-friendly profile; set
``REPRO_BENCH_REPS`` to raise them toward the paper's 1,000 (the
experiment CLI is the tool for the full protocol).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentSettings
from repro.experiments.report import ExperimentReport

RESULTS_DIR = Path(__file__).parent / "results"

#: Default Monte-Carlo repetitions per configuration in benchmarks.
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "30"))


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """The benchmark evaluation protocol (paper protocol, fewer reps)."""
    return ExperimentSettings(repetitions=BENCH_REPS)


@pytest.fixture(scope="session")
def emit_report():
    """Persist and display a regenerated artifact.

    The persisted file excludes volatile (wall-clock) columns so that
    re-running the benchmarks only diffs ``benchmarks/results/`` when
    the reproduced numbers themselves change; the full table, timing
    included, goes to stdout.
    """

    def _emit(report: ExperimentReport) -> ExperimentReport:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{report.experiment_id}.txt"
        path.write_text(report.render(volatile=False) + "\n", encoding="utf-8")
        print(f"\n{report.render()}\n[written to {path}]")
        return report

    return _emit
