"""Benchmark: regenerate Table 3 (aHPD vs Wald / Wilson efficiency).

Shape checks mirror the paper's headline claims: aHPD needs no more
triples than Wilson on every skewed dataset under both sampling
strategies, and TWCS is cheaper than SRS in cost terms.
"""

from __future__ import annotations

from repro.experiments.table3 import table3_studies
from repro.experiments.report import ExperimentReport
from repro.experiments.table3 import run_table3


def test_bench_table3(benchmark, bench_settings, emit_report):
    report: ExperimentReport = benchmark.pedantic(
        lambda: run_table3(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    assert len(report.rows) == 6  # 2 strategies x 3 methods


def test_table3_orderings(bench_settings):
    studies = table3_studies(
        bench_settings.with_repetitions(max(20, bench_settings.repetitions // 2)),
        strategies=("SRS", "TWCS"),
    )
    for strategy in ("SRS", "TWCS"):
        for dataset in ("YAGO", "NELL", "DBPEDIA"):
            ahpd = studies[(dataset, strategy, "aHPD")].triples.mean()
            wilson = studies[(dataset, strategy, "Wilson")].triples.mean()
            assert ahpd <= wilson * 1.10, (dataset, strategy)
    # TWCS's entity-identification savings: cheaper than SRS for aHPD.
    for dataset in ("NELL", "DBPEDIA"):
        srs_cost = studies[(dataset, "SRS", "aHPD")].cost_hours.mean()
        twcs_cost = studies[(dataset, "TWCS", "aHPD")].cost_hours.mean()
        assert twcs_cost < srs_cost, dataset
