"""Benchmark: sequential-coverage analysis (what survives the stop rule)."""

from __future__ import annotations

from repro.experiments.sequential_coverage import run_sequential_coverage


def _pct(cell: str) -> float:
    return float(str(cell).rstrip("%"))


def test_bench_sequential_coverage(benchmark, bench_settings, emit_report):
    settings = bench_settings.with_repetitions(max(150, bench_settings.repetitions * 5))
    report = benchmark.pedantic(
        lambda: run_sequential_coverage(settings), rounds=1, iterations=1
    )
    emit_report(report)
    rows = {row["method"]: row for row in report.rows}
    # Wald's boundary collapse is worst sequentially.
    assert _pct(rows["Wald"]["mu=0.99"]) < _pct(rows["Wilson"]["mu=0.99"])
    # Wilson and aHPD keep usable sequential coverage in every regime.
    for method in ("Wilson", "aHPD"):
        for mu in ("mu=0.91", "mu=0.85", "mu=0.54"):
            assert _pct(rows[method][mu]) > 75.0, (method, mu)
