"""Benchmark: regenerate Figure 3 (expected HPD width by prior)."""

from __future__ import annotations

from repro.experiments.figure3 import compute_figure3, run_figure3


def test_bench_figure3(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_figure3(bench_settings, n=30, grid_points=199),
        rounds=1,
        iterations=1,
    )
    emit_report(report)
    # Paper: Jeffreys never the shortest; Kerman wins at the extremes,
    # Uniform in the centre.
    winners = report.column("optimal")
    assert "Jeffreys" not in set(winners)
    assert winners[0] == "Kerman"
    assert "Uniform" in set(winners)


def test_bench_figure3_series_resolution(benchmark):
    # Time the full-resolution sweep used for plotting-quality data.
    series = benchmark.pedantic(
        lambda: compute_figure3(n=30, alpha=0.05, grid_points=399),
        rounds=1,
        iterations=1,
    )
    regions = series.optimal_regions()
    assert regions["Jeffreys"] == 0.0
    assert regions["Kerman"] > 0.3  # both extreme regions
    assert regions["Uniform"] > 0.2  # the central region
