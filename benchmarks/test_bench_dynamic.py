"""Benchmark: the evolving-KG audit (paper Sec. 8 future work)."""

from __future__ import annotations

from repro.experiments.dynamic_audit import run_dynamic_audit


def test_bench_dynamic(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_dynamic_audit(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    stable = [row for row in report.rows if row["regime"] == "stable"]
    # Stable regime: carried priors save annotations on re-audits.
    for row in stable[1:]:
        assert row["triples (carried)"] <= row["triples (independent)"]
    # Drift regime: the estimate still tracks the drifted truth.
    drift_final = [row for row in report.rows if row["regime"] == "drift"][-1]
    assert abs(float(drift_final["estimate"]) - float(drift_final["true_mu"])) < 0.08
