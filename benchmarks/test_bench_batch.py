"""Micro-benchmarks of the batch interval engine.

Times the vectorised HPD solver against the scalar per-posterior loop
at 1k / 10k posteriors, and the unique-outcome coverage audit against
the legacy per-repetition loop, then records a speedup summary under
``benchmarks/results/batch-engine.txt``.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.estimators.base import Evidence
from repro.evaluation.coverage import empirical_coverage
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.batch import hpd_bounds_batch
from repro.intervals.hpd import hpd_bounds
from repro.intervals.posterior import BetaPosterior
from repro.intervals.priors import JEFFREYS

RESULTS_DIR = Path(__file__).parent / "results"

#: Interior-mode posterior shape arrays used by the solver benches.
_RNG = np.random.default_rng(0)
SHAPES_1K = (
    _RNG.uniform(1.5, 300.0, size=1_000),
    _RNG.uniform(1.5, 300.0, size=1_000),
)
SHAPES_10K = (
    _RNG.uniform(1.5, 300.0, size=10_000),
    _RNG.uniform(1.5, 300.0, size=10_000),
)


def test_bench_hpd_batch_1k(benchmark):
    a, b = SHAPES_1K
    lower, upper = benchmark(lambda: hpd_bounds_batch(a, b, 0.05))
    assert np.all(lower < upper)


def test_bench_hpd_batch_10k(benchmark):
    a, b = SHAPES_10K
    lower, upper = benchmark(lambda: hpd_bounds_batch(a, b, 0.05))
    assert np.all(lower < upper)


def test_bench_hpd_scalar_loop_1k(benchmark):
    a, b = SHAPES_1K

    def loop():
        return [
            hpd_bounds(
                BetaPosterior(a=float(ai), b=float(bi), prior=JEFFREYS), 0.05
            )
            for ai, bi in zip(a, b)
        ]

    bounds = benchmark(loop)
    assert len(bounds) == 1_000


def test_bench_coverage_unique_outcome(benchmark):
    # The paper's coverage cell: n=30, 2,000 repetitions, aHPD.
    result = benchmark(
        lambda: empirical_coverage(
            AdaptiveHPD(), mu=0.9, n=30, repetitions=2_000, rng=0
        )
    )
    assert 0.0 <= result.coverage <= 1.0


def test_bench_coverage_per_repetition_loop(benchmark):
    # The legacy hot loop this PR retired: one scalar solve per draw.
    method = AdaptiveHPD()

    def loop():
        taus = np.random.default_rng(0).binomial(30, 0.9, size=2_000)
        hits = 0
        for tau in taus:
            interval = method.compute(Evidence.from_counts(int(tau), 30), 0.05)
            hits += interval.contains(0.9)
        return hits / 2_000

    coverage = benchmark(loop)
    assert 0.0 <= coverage <= 1.0


def test_record_batch_engine_summary():
    """Measure the headline batch-engine speedups.

    The persisted results file carries only deterministic fields
    (problem sizes, solve budgets, threshold verdicts); the wall-clock
    measurements print to stdout, so re-running the benchmarks never
    commits timing noise.
    """

    def clock(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    a1, b1 = SHAPES_1K
    a10, b10 = SHAPES_10K
    batch_1k = clock(lambda: hpd_bounds_batch(a1, b1, 0.05))
    batch_10k = clock(lambda: hpd_bounds_batch(a10, b10, 0.05))
    scalar_1k = clock(
        lambda: [
            hpd_bounds(
                BetaPosterior(a=float(ai), b=float(bi), prior=JEFFREYS), 0.05
            )
            for ai, bi in zip(a1, b1)
        ],
        repeats=1,
    )

    method = AdaptiveHPD()
    unique_outcome = clock(
        lambda: empirical_coverage(method, mu=0.9, n=30, repetitions=2_000, rng=0)
    )

    def legacy_loop():
        taus = np.random.default_rng(0).binomial(30, 0.9, size=2_000)
        for tau in taus:
            method.compute(Evidence.from_counts(int(tau), 30), 0.05)

    legacy = clock(legacy_loop, repeats=1)

    timing_lines = [
        "batch-engine micro-benchmarks (best-of-N wall clock)",
        "====================================================",
        f"HPD solve, 1k posteriors,  batch engine : {batch_1k * 1e3:9.2f} ms",
        f"HPD solve, 1k posteriors,  scalar loop  : {scalar_1k * 1e3:9.2f} ms"
        f"  ({scalar_1k / batch_1k:5.1f}x slower)",
        f"HPD solve, 10k posteriors, batch engine : {batch_10k * 1e3:9.2f} ms",
        "coverage cell (n=30, 2000 reps, aHPD):",
        f"  unique-outcome batch audit            : {unique_outcome * 1e3:9.2f} ms",
        f"  legacy per-repetition loop            : {legacy * 1e3:9.2f} ms"
        f"  ({legacy / unique_outcome:5.1f}x slower)",
        "speedup floors (asserted, not persisted):",
        f"  batch faster than scalar loop         : {'yes' if batch_1k < scalar_1k else 'NO'}",
        f"  unique-outcome faster than legacy     : {'yes' if unique_outcome < legacy else 'NO'}",
    ]
    # Only machine-independent facts go to disk; every wall-clock
    # number and wall-clock-derived verdict stays on stdout.
    file_lines = [
        "batch-engine summary (deterministic fields only; timings on stdout)",
        "===================================================================",
        "HPD solves, batch engine vs scalar loop : 1,000 and 10,000 posteriors",
        "coverage cell                           : n=30, 2,000 repetitions, aHPD",
        "unique-outcome solve budget             : <= 31 solves per cell",
        "speedup assertions                      : batch < scalar, unique-outcome < legacy",
    ]
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "batch-engine.txt"
    path.write_text("\n".join(file_lines) + "\n", encoding="utf-8")
    print("\n" + "\n".join(timing_lines + [""] + file_lines) + f"\n[written to {path}]")
    assert batch_1k < scalar_1k
    assert unique_outcome < legacy
