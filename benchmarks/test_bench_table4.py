"""Benchmark: regenerate Table 4 (SYN 100M scalability)."""

from __future__ import annotations

from repro.experiments.table4 import run_table4, table4_studies


def _mean(cell: str) -> float:
    return float(str(cell).split("±")[0].rstrip("†‡"))


def test_bench_table4(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_table4(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    rows = {(row["sampling"], row["interval"]): row for row in report.rows}
    # Scalability claim: same order of magnitude as the small datasets.
    for strategy in ("SRS", "TWCS"):
        assert _mean(rows[(strategy, "aHPD")]["mu=0.9 triples"]) < 400
        # Symmetric accuracies (0.9 / 0.1) cost roughly the same.
        hi = _mean(rows[(strategy, "aHPD")]["mu=0.9 triples"])
        lo = _mean(rows[(strategy, "aHPD")]["mu=0.1 triples"])
        assert 0.5 < hi / lo < 2.0


def test_table4_symmetric_case_ties_wilson(bench_settings):
    # At mu = 0.5 aHPD and Wilson converge with comparable effort.
    studies = table4_studies(
        bench_settings.with_repetitions(max(10, bench_settings.repetitions // 3)),
        accuracies=(0.5,),
        strategies=("SRS",),
    )
    ahpd = studies[(0.5, "SRS", "aHPD")].triples.mean()
    wilson = studies[(0.5, "SRS", "Wilson")].triples.mean()
    assert abs(ahpd - wilson) / wilson < 0.10
