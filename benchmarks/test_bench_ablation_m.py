"""Benchmark: TWCS second-stage size ablation."""

from __future__ import annotations

from repro.experiments.ablation_m import run_m_ablation


def _cost(cell: str) -> float:
    return float(str(cell).split("±")[0])


def test_bench_ablation_m(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_m_ablation(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    costs = {row["m"]: _cost(row["cost_hours"]) for row in report.rows}
    triples = {row["m"]: _cost(row["triples"]) for row in report.rows}
    # Statistical-efficiency side: larger stage-2 caps annotate more
    # correlated triples, so the triple count grows with m.
    assert triples[12] > triples[1]
    # Cost side: the recommended small-m band is never beaten by the
    # extremes by a material margin.
    band_best = min(costs[2], costs[3], costs[5])
    assert band_best <= costs[12] * 1.05
    assert band_best <= costs[1] * 1.05
