"""Benchmarks: regenerate the paper's running Examples 1 and 2."""

from __future__ import annotations

from repro.experiments.example1 import run_example1
from repro.experiments.example2 import run_example2


def test_bench_example1(benchmark, bench_settings, emit_report):
    # Example 1 needs enough repetitions for a stable rate estimate.
    settings = bench_settings.with_repetitions(
        max(200, bench_settings.repetitions)
    )
    report = benchmark.pedantic(
        lambda: run_example1(settings), rounds=1, iterations=1
    )
    emit_report(report)
    rows = {row["quantity"]: row["value"] for row in report.rows}
    rate = float(str(rows["zero-width interval rate"]).rstrip("%"))
    # Paper: 7% over 1,000 iterations; binomial prediction 5.9%.
    assert 2.0 < rate < 13.0
    assert rows["estimate when zero-width"] == "1.00"


def test_bench_example2(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_example2(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    triples = {
        row["configuration"]: float(str(row["triples"]).split("±")[0])
        for row in report.rows
    }
    # Informative priors must cut the annotation effort substantially
    # (paper: 63 vs 222 triples).
    assert triples["aHPD informative"] < 0.6 * triples["aHPD uninformative"]
