"""Benchmark: human-machine collaborative evaluation (paper Sec. 7)."""

from __future__ import annotations

from repro.experiments.human_machine import run_human_machine


def _mean(cell: str) -> float:
    return float(str(cell).split("±")[0])


def test_bench_human_machine(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_human_machine(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    rows = {row["configuration"]: row for row in report.rows}
    assisted = rows["aHPD + inference"]
    manual = rows["aHPD manual-only"]
    # Inference must cut manual effort on the rule-dense KG...
    assert _mean(assisted["manual triples"]) < _mean(manual["manual triples"])
    assert _mean(assisted["cost_hours"]) < _mean(manual["cost_hours"])
    # ...with a substantial share of labels coming for free.
    share = float(str(assisted["inferred share"]).rstrip("%"))
    assert share > 10.0
    # And the estimator stays honest (note records the bias).
    assert any("unbiased" in note for note in report.notes)
