"""Benchmark: regenerate Figure 2 (ET vs HPD across skewness)."""

from __future__ import annotations

from repro.experiments.figure2 import run_figure2


def test_bench_figure2(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_figure2(bench_settings), rounds=3, iterations=1
    )
    emit_report(report)
    # Paper claims: HPD never wider; ET wastes <75% (moderate) / <20%
    # (high skew) of the excluded HPD mass.
    widths_et = report.column("et_width")
    widths_hpd = report.column("hpd_width")
    assert all(h <= e + 1e-9 for h, e in zip(widths_hpd, widths_et))
    ratios = [float(str(r).rstrip("%")) for r in report.column("waste_ratio")]
    assert ratios[1] < 75.0
    assert ratios[2] < 25.0
