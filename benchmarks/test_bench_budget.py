"""Benchmark: budget-feasibility analysis (paper Sec. 6.5)."""

from __future__ import annotations

from repro.experiments.budget_analysis import run_budget_analysis


def test_bench_budget(benchmark, bench_settings, emit_report):
    settings = bench_settings.with_repetitions(max(100, bench_settings.repetitions * 3))
    report = benchmark.pedantic(
        lambda: run_budget_analysis(settings), rounds=1, iterations=1
    )
    emit_report(report)
    # aHPD's completion probability dominates Wilson's at every budget.
    for row in report.rows:
        ahpd = float(str(row["aHPD"]).rstrip("%"))
        wilson = float(str(row["Wilson"]).rstrip("%"))
        assert ahpd >= wilson - 1e-9
    # And the dominance is strict somewhere in the budget range.
    gaps = [
        float(str(row["aHPD"]).rstrip("%")) - float(str(row["Wilson"]).rstrip("%"))
        for row in report.rows
    ]
    assert max(gaps) > 10.0
