"""Benchmark: regenerate Figure 4 (aHPD vs Wilson across precision).

Checks the robustness claims: aHPD is never materially worse than
Wilson at any precision level, the savings are largest on YAGO at
alpha = 0.01 (the paper's -47% / -39% peaks), and FACTBENCH shows
neither benefit nor penalty.
"""

from __future__ import annotations

from repro.experiments.figure4 import run_figure4


def _pct(cell: str) -> float:
    return float(str(cell).rstrip("%"))


def test_bench_figure4(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_figure4(bench_settings), rounds=1, iterations=1
    )
    emit_report(report)
    rows = {
        (row["sampling"], row["dataset"], row["alpha"]): row for row in report.rows
    }
    # aHPD never materially worse than Wilson (Monte-Carlo tolerance).
    for key, row in rows.items():
        assert _pct(row["reduction"]) <= 8.0, key
    # The YAGO high-precision cell shows the largest savings under SRS.
    yago_001 = _pct(rows[("SRS", "YAGO", "0.01")]["reduction"])
    assert yago_001 < -25.0
    # FACTBENCH is a wash at every level.
    for alpha in ("0.1", "0.05", "0.01"):
        assert abs(_pct(rows[("SRS", "FACTBENCH", alpha)]["reduction"])) <= 5.0
