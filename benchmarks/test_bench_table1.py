"""Benchmark: regenerate Table 1 (dataset statistics).

Times the profiled dataset generation plus the lazy SYN 100M
instantiation, and prints the statistics table for comparison with the
paper's Table 1 (they must match exactly).
"""

from __future__ import annotations

from repro.experiments.table1 import run_table1


def test_bench_table1(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_table1(bench_settings, include_syn100m=True),
        rounds=1,
        iterations=1,
    )
    emit_report(report)
    datasets = report.column("dataset")
    assert datasets == ["YAGO", "NELL", "DBPEDIA", "FACTBENCH", "SYN 100M"]
    facts = report.column("num_facts")
    assert facts == [1_386, 1_860, 9_344, 2_800, 101_415_011]
