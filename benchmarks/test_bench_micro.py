"""Micro-benchmarks of the hot primitives.

These time the inner-loop operations that dominate the Monte-Carlo
experiments: HPD solves, aHPD rounds, the Wilson closed form, PPS
cluster draws on the 100M-triple KG, a full evaluation run, and the
solver hot path itself — cold solve-table build vs warm table hit, and
the NumPy reference kernel vs the JIT native kernel at 1e2/1e4/1e6
rows.  The solver scenarios additionally land machine-readable numbers
in ``benchmarks/BENCH_solver.json`` (schema-versioned, deliberately
outside ``benchmarks/results`` so the drift gate never diffs
hardware-dependent wall-clock).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.estimators.base import Evidence
from repro.evaluation.framework import KGAccuracyEvaluator
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.hpd import hpd_bounds
from repro.intervals.kernels import get_kernel, kernel_status, native_available
from repro.intervals.posterior import BetaPosterior
from repro.intervals.priors import JEFFREYS
from repro.intervals.table import SolveTable
from repro.intervals.wilson import WilsonInterval
from repro.kg.datasets import load_dataset, load_syn100m
from repro.sampling.srs import SimpleRandomSampling
from repro.sampling.twcs import TwoStageWeightedClusterSampling

EVIDENCE = Evidence.from_counts(27, 30)
POSTERIOR = BetaPosterior.from_counts(JEFFREYS, 27, 30)

#: Machine-readable solver-benchmark trajectory; kept outside
#: ``benchmarks/results`` because it carries wall-clock numbers.
BENCH_JSON = Path(__file__).parent / "BENCH_solver.json"

#: Version of the trajectory-file layout (bump on breaking change).
BENCH_SCHEMA_VERSION = 1

#: Acceptance bar: a warm table hit must beat the cold build by this.
_TABLE_SPEEDUP_BAR = 5.0


def _record_solver_bench(scenario: str, payload: dict) -> None:
    """Merge one scenario's numbers into ``BENCH_solver.json``.

    Read-modify-write (same discipline as ``BENCH_runtime.json``) so
    the table and kernel scenarios, run in either order or alone, each
    update only their own key.
    """
    try:
        trajectory = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        if trajectory.get("schema_version") != BENCH_SCHEMA_VERSION:
            trajectory = {}
    except (FileNotFoundError, ValueError):
        trajectory = {}
    trajectory.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    trajectory.setdefault("scenarios", {})[scenario] = {
        "cores": os.cpu_count() or 1,
        **payload,
    }
    BENCH_JSON.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def test_bench_hpd_newton(benchmark):
    bounds = benchmark(lambda: hpd_bounds(POSTERIOR, 0.05, solver="newton"))
    assert bounds[0] < bounds[1]


def test_bench_hpd_slsqp(benchmark):
    bounds = benchmark(lambda: hpd_bounds(POSTERIOR, 0.05, solver="slsqp"))
    assert bounds[0] < bounds[1]


def test_bench_ahpd_round(benchmark):
    method = AdaptiveHPD()
    interval = benchmark(lambda: method.compute(EVIDENCE, 0.05))
    assert interval.width > 0


def test_bench_wilson(benchmark):
    method = WilsonInterval()
    interval = benchmark(lambda: method.compute(EVIDENCE, 0.05))
    assert interval.width > 0


def test_bench_syn100m_cluster_draw(benchmark):
    kg = load_syn100m(accuracy=0.9, seed=0)
    twcs = TwoStageWeightedClusterSampling(m=5)
    rng = np.random.default_rng(0)

    def draw():
        state = twcs.new_state()
        batch = twcs.draw(kg, state, units=50, rng=rng)
        return batch.num_triples

    total = benchmark(draw)
    assert total >= 50


def test_bench_full_evaluation_run(benchmark):
    kg = load_dataset("NELL", seed=42)
    evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), AdaptiveHPD())
    counter = iter(range(10_000))
    result = benchmark(lambda: evaluator.run(rng=next(counter)))
    assert result.converged


def test_bench_solve_table_cold_vs_warm(tmp_path):
    """Acceptance: a warm table hit beats the cold build by >= 5x.

    The cold pass builds the full (n+1)-row aHPD table (every tau for
    one n — the exact shape the Monte-Carlo grids request); the warm
    pass serves the same batch from the in-memory table, and a fresh
    ``SolveTable`` over the same root serves it from the mmap sidecar
    without re-solving anything.
    """
    method = AdaptiveHPD()
    n, alpha = 256, 0.05
    evidences = [Evidence.from_counts(tau, n) for tau in range(n + 1)]
    direct_start = time.perf_counter()
    direct = method.compute_batch(evidences, alpha)
    direct_seconds = time.perf_counter() - direct_start

    table = SolveTable(tmp_path, cap=n)
    cold_start = time.perf_counter()
    cold = table.serve(method, evidences, alpha)
    cold_seconds = time.perf_counter() - cold_start
    assert cold is not None and table.stats()["builds"] == 1

    warm_seconds = min(
        _timed(lambda: table.serve(method, evidences, alpha))
        for _ in range(5)
    )
    assert table.stats()["builds"] == 1  # warm hits never re-solve

    fresh = SolveTable(tmp_path, cap=n)
    sidecar_seconds = _timed(
        lambda: fresh.serve(method, evidences, alpha, build=False)
    )
    assert fresh.stats()["sidecar_loads"] == 1 and fresh.stats()["builds"] == 0

    warm = table.serve(method, evidences, alpha)
    identical = (
        warm.lower.tobytes() == direct.lower.tobytes()
        and warm.upper.tobytes() == direct.upper.tobytes()
        and warm.labels == direct.labels
    )
    assert identical

    speedup = cold_seconds / warm_seconds
    assert speedup >= _TABLE_SPEEDUP_BAR, (
        f"warm table hit only {speedup:.1f}x faster than the cold build"
    )
    _record_solver_bench(
        "solve-table",
        {
            "method": "aHPD",
            "n": n,
            "rows": len(evidences),
            "direct_solve_seconds": round(direct_seconds, 6),
            "cold_build_seconds": round(cold_seconds, 6),
            "warm_hit_seconds": round(warm_seconds, 6),
            "sidecar_reload_seconds": round(sidecar_seconds, 6),
            "warm_speedup": round(speedup, 1),
            "speedup_bar": _TABLE_SPEEDUP_BAR,
            "bit_identical_to_direct": bool(identical),
        },
    )
    print(
        f"\nsolve-table benchmark (aHPD, n={n}, {len(evidences)} rows)\n"
        f"  direct compute_batch : {direct_seconds * 1e3:9.3f} ms\n"
        f"  cold build + serve   : {cold_seconds * 1e3:9.3f} ms\n"
        f"  warm table hit       : {warm_seconds * 1e3:9.3f} ms"
        f"  ({speedup:.0f}x vs cold)\n"
        f"  mmap sidecar reload  : {sidecar_seconds * 1e3:9.3f} ms\n"
        f"[recorded in {BENCH_JSON}]"
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    assert result is not None
    return elapsed


def test_bench_kernel_newton_scaling():
    """NumPy reference vs native JIT kernel at 1e2 / 1e4 / 1e6 rows.

    Where numba is absent the native columns record ``null`` plus the
    build-failure reason — the scenario still lands in
    ``BENCH_solver.json`` so the trajectory shows *why* no ratio was
    measured on this machine.
    """
    rng = np.random.default_rng(20250808)
    numpy_kernel = get_kernel("numpy")
    native_kernel = get_kernel("native") if native_available() else None
    if native_kernel is not None:
        # Trigger (and exclude) the one-time JIT compile.
        warm = np.array([5.0, 9.5], dtype=float)
        native_kernel.newton_interior(warm, warm, 0.05)

    rows = []
    for size in (10**2, 10**4, 10**6):
        # Interior-mode posteriors across the realistic range: small
        # pilot samples through multi-thousand-annotation audits.
        a = 1.0 + rng.uniform(0.5, 2_000.0, size=size)
        b = 1.0 + rng.uniform(0.5, 2_000.0, size=size)
        start = time.perf_counter()
        np_lower, np_upper, np_failed = numpy_kernel.newton_interior(a, b, 0.05)
        numpy_seconds = time.perf_counter() - start
        assert np.isfinite(np_lower[~np_failed]).all()
        entry = {
            "rows": size,
            "numpy_seconds": round(numpy_seconds, 6),
            "native_seconds": None,
            "native_speedup": None,
        }
        if native_kernel is not None:
            start = time.perf_counter()
            nat_lower, nat_upper, nat_failed = native_kernel.newton_interior(
                a, b, 0.05
            )
            native_seconds = time.perf_counter() - start
            ok = ~(np_failed | nat_failed)
            np.testing.assert_allclose(
                nat_lower[ok], np_lower[ok], rtol=0.0, atol=1e-12
            )
            np.testing.assert_allclose(
                nat_upper[ok], np_upper[ok], rtol=0.0, atol=1e-12
            )
            entry["native_seconds"] = round(native_seconds, 6)
            entry["native_speedup"] = round(numpy_seconds / native_seconds, 2)
        rows.append(entry)

    status = kernel_status()
    _record_solver_bench(
        "kernel-newton",
        {
            "alpha": 0.05,
            "native_available": status["native_available"],
            "native_error": status["native_error"],
            "sizes": rows,
        },
    )
    lines = [f"\nkernel benchmark (damped-Newton HPD, alpha=0.05)"]
    for entry in rows:
        native = (
            f"{entry['native_seconds'] * 1e3:9.3f} ms"
            f"  ({entry['native_speedup']:.2f}x)"
            if entry["native_seconds"] is not None
            else "        (native unavailable)"
        )
        lines.append(
            f"  {entry['rows']:>9,} rows : numpy "
            f"{entry['numpy_seconds'] * 1e3:9.3f} ms | native {native}"
        )
    print("\n".join(lines) + f"\n[recorded in {BENCH_JSON}]")
