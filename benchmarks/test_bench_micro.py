"""Micro-benchmarks of the hot primitives.

These time the inner-loop operations that dominate the Monte-Carlo
experiments: HPD solves, aHPD rounds, the Wilson closed form, PPS
cluster draws on the 100M-triple KG, and a full evaluation run.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import Evidence
from repro.evaluation.framework import KGAccuracyEvaluator
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.hpd import hpd_bounds
from repro.intervals.posterior import BetaPosterior
from repro.intervals.priors import JEFFREYS
from repro.intervals.wilson import WilsonInterval
from repro.kg.datasets import load_dataset, load_syn100m
from repro.sampling.srs import SimpleRandomSampling
from repro.sampling.twcs import TwoStageWeightedClusterSampling

EVIDENCE = Evidence.from_counts(27, 30)
POSTERIOR = BetaPosterior.from_counts(JEFFREYS, 27, 30)


def test_bench_hpd_newton(benchmark):
    bounds = benchmark(lambda: hpd_bounds(POSTERIOR, 0.05, solver="newton"))
    assert bounds[0] < bounds[1]


def test_bench_hpd_slsqp(benchmark):
    bounds = benchmark(lambda: hpd_bounds(POSTERIOR, 0.05, solver="slsqp"))
    assert bounds[0] < bounds[1]


def test_bench_ahpd_round(benchmark):
    method = AdaptiveHPD()
    interval = benchmark(lambda: method.compute(EVIDENCE, 0.05))
    assert interval.width > 0


def test_bench_wilson(benchmark):
    method = WilsonInterval()
    interval = benchmark(lambda: method.compute(EVIDENCE, 0.05))
    assert interval.width > 0


def test_bench_syn100m_cluster_draw(benchmark):
    kg = load_syn100m(accuracy=0.9, seed=0)
    twcs = TwoStageWeightedClusterSampling(m=5)
    rng = np.random.default_rng(0)

    def draw():
        state = twcs.new_state()
        batch = twcs.draw(kg, state, units=50, rng=rng)
        return batch.num_triples

    total = benchmark(draw)
    assert total >= 50


def test_bench_full_evaluation_run(benchmark):
    kg = load_dataset("NELL", seed=42)
    evaluator = KGAccuracyEvaluator(kg, SimpleRandomSampling(), AdaptiveHPD())
    counter = iter(range(10_000))
    result = benchmark(lambda: evaluator.run(rng=next(counter)))
    assert result.converged
