"""Benchmarks: ablation studies (HPD solver, batch granularity)."""

from __future__ import annotations

from repro.experiments.ablations import run_batch_size_ablation, run_hpd_solver_ablation


def test_bench_ablation_hpd_solver(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_hpd_solver_ablation(bench_settings, n=80),
        rounds=1,
        iterations=1,
    )
    emit_report(report)
    rows = {row["solver"]: row for row in report.rows}
    # Agreement with the paper's SLSQP to numerical tolerance.
    assert float(str(rows["newton"]["max_dev_vs_slsqp"])) < 1e-6
    assert float(str(rows["scalar"]["max_dev_vs_slsqp"])) < 1e-6
    # The default solver must actually be faster than SLSQP.
    assert float(rows["newton"]["usec_per_solve"]) < float(
        rows["slsqp"]["usec_per_solve"]
    )


def test_bench_ablation_batch_size(benchmark, bench_settings, emit_report):
    report = benchmark.pedantic(
        lambda: run_batch_size_ablation(bench_settings),
        rounds=1,
        iterations=1,
    )
    emit_report(report)
    # Coarser batches must not *reduce* the annotation effort: the
    # stop rule is checked less often, so overshoot only accumulates.
    triples = [float(str(row["triples"]).split("±")[0]) for row in report.rows]
    assert triples[-1] >= triples[0] * 0.98
