"""Compare every interval family on the same annotation outcome.

Builds all six interval methods on one sample, shows the Wald zero-width
pathology (paper Example 1 / Fallacies 1-3), and contrasts empirical
coverage near the accuracy boundary — the quantitative story behind the
paper's Sections 3 and 4.

Run with::

    python examples/compare_interval_methods.py
"""

from __future__ import annotations

from repro import (
    AdaptiveHPD,
    AgrestiCoullInterval,
    ClopperPearsonInterval,
    ETCredibleInterval,
    Evidence,
    HPDCredibleInterval,
    WaldInterval,
    WilsonInterval,
    empirical_coverage,
)

METHODS = (
    WaldInterval(),
    WilsonInterval(),
    AgrestiCoullInterval(),
    ClopperPearsonInterval(),
    ETCredibleInterval(),
    HPDCredibleInterval(),
    AdaptiveHPD(),
)


def show_intervals(tau: int, n: int, alpha: float = 0.05) -> None:
    evidence = Evidence.from_counts(tau, n)
    print(f"\nannotation outcome: {tau}/{n} correct (mu_hat = {evidence.mu_hat:.3f})")
    print(f"{'method':<18} {'interval':<22} {'width':>7} {'MoE':>7}")
    for method in METHODS:
        interval = method.compute(evidence, alpha)
        cell = f"[{interval.lower:.4f}, {interval.upper:.4f}]"
        print(f"{method.name:<18} {cell:<22} {interval.width:>7.4f} {interval.moe:>7.4f}")


def show_coverage(mu: float, n: int, alpha: float = 0.05) -> None:
    print(f"\nempirical coverage at true mu = {mu}, n = {n} (nominal {1-alpha:.0%}):")
    for method in METHODS:
        result = empirical_coverage(method, mu, n, alpha=alpha, repetitions=4_000, rng=0)
        bar = "#" * int(result.coverage * 40)
        print(f"{method.name:<18} {result.coverage:6.1%}  {bar}")


def main() -> None:
    # A typical skewed outcome: HPD shifts toward the mode and is the
    # shortest interval on offer.
    show_intervals(tau=27, n=30)

    # The Example 1 pathology: a unanimous sample.  Wald collapses to a
    # zero-width interval; every other method keeps honest uncertainty.
    show_intervals(tau=30, n=30)

    # Near the boundary, Wald's collapse destroys its coverage; Wilson
    # and the credible intervals stay calibrated.
    show_coverage(mu=0.99, n=30)


if __name__ == "__main__":
    main()
