"""Auditing an evolving knowledge graph (paper Sec. 8, future work).

A KG receives content batches over time.  Each re-audit reuses the
previous audit's posterior as an informative prior — the Bayesian
framing makes "what we learned last quarter" a first-class input.  The
example shows both regimes the paper discusses: stable accuracy (big
savings) and an accuracy drift after a massive low-quality update (the
carried prior is deceptive, but the competing uninformative priors keep
the audit correct).

Run with::

    python examples/dynamic_kg_audit.py
"""

from __future__ import annotations

from repro import DynamicAuditor, TwoStageWeightedClusterSampling
from repro.kg.generators import generate_profiled_kg


def build_stream(update_accuracies):
    """A base KG plus cumulative update batches."""
    snapshots = []
    kg = generate_profiled_kg(
        "base", num_facts=6_000, num_clusters=2_000, accuracy=0.85, seed=0
    )
    snapshots.append(kg)
    for i, accuracy in enumerate(update_accuracies):
        batch = generate_profiled_kg(
            f"update{i}", num_facts=3_000, num_clusters=1_000,
            accuracy=accuracy, seed=100 + i,
        )
        kg = kg.merge(batch)
        snapshots.append(kg)
    return snapshots


def run_regime(title: str, update_accuracies) -> None:
    print(f"\n=== {title} ===")
    snapshots = build_stream(update_accuracies)
    carried = DynamicAuditor(
        strategy=TwoStageWeightedClusterSampling(m=3), carryover=1.0
    )
    independent = DynamicAuditor(
        strategy=TwoStageWeightedClusterSampling(m=3), carryover=0.0
    )
    records_c = carried.audit_stream(snapshots, seed=0)
    records_i = independent.audit_stream(snapshots, seed=0)
    print(f"{'round':>5} {'true mu':>8} {'estimate':>9} {'carried':>9} {'fresh':>7}")
    for rec_c, rec_i, kg in zip(records_c, records_i, snapshots):
        print(
            f"{rec_c.round_index:>5} {kg.accuracy:>8.3f} "
            f"{rec_c.result.mu_hat:>9.3f} "
            f"{rec_c.result.n_triples:>9} {rec_i.result.n_triples:>7}"
        )
    saved = sum(r.result.n_triples for r in records_i[1:]) - sum(
        r.result.n_triples for r in records_c[1:]
    )
    print(f"re-audit annotations saved by carrying the posterior: {saved}")


def main() -> None:
    run_regime("Stable content (updates at the same accuracy)", (0.85, 0.85, 0.85))
    run_regime("Accuracy drift (a massive low-quality update)", (0.85, 0.45))
    print(
        "\nIn the drift regime the carried prior is deceptive; because it "
        "merely competes inside aHPD, the estimate still tracks the truth."
    )


if __name__ == "__main__":
    main()
