"""Per-predicate quality report: find out *which* relations are broken.

A single accuracy number tells you whether a KG is usable; a
per-predicate audit tells you where to spend curation effort.  This
example builds a KG whose relations have very different error rates,
audits every predicate under a shared annotation budget, and prints a
curation-priority report.

Run with::

    python examples/predicate_quality_report.py
"""

from __future__ import annotations

import numpy as np

from repro import KnowledgeGraph, Triple, audit_by_predicate
from repro.kg.queries import TripleIndex


def build_mixed_kg(seed: int = 0) -> KnowledgeGraph:
    """A KG with four relations of very different quality."""
    rng = np.random.default_rng(seed)
    spec = (
        # (predicate, facts, accuracy) — a curated core, two decent
        # relations, and one broken extractor output.
        ("bornIn", 1_500, 0.97),
        ("worksFor", 1_000, 0.90),
        ("hasAward", 700, 0.82),
        ("relatedTo", 900, 0.45),
    )
    triples: list[Triple] = []
    labels: list[bool] = []
    for predicate, count, accuracy in spec:
        for i in range(count):
            triples.append(Triple(f"e:{i % (count // 3)}", predicate, f"v:{predicate}:{i}"))
            labels.append(bool(rng.random() < accuracy))
    return KnowledgeGraph(triples, labels)


def main() -> None:
    kg = build_mixed_kg()
    print(f"Auditing {kg!r} per predicate (alpha=0.05, MoE <= 0.05)\n")
    result = audit_by_predicate(kg, rng=3)

    index = TripleIndex(kg)
    print(f"{'predicate':<12} {'share':>6} {'annotated':>9} {'estimate':>9} "
          f"{'interval':<18} {'true':>6}")
    ranked = sorted(result.partitions, key=lambda p: p.mu_hat)
    for audit in ranked:
        truth = index.predicate_profile(audit.partition).accuracy
        cell = f"[{audit.interval.lower:.3f}, {audit.interval.upper:.3f}]"
        print(
            f"{audit.partition:<12} {audit.weight:>6.1%} {audit.n_annotated:>9} "
            f"{audit.mu_hat:>9.3f} {cell:<18} {truth:>6.3f}"
        )

    print(f"\nglobal accuracy  : {result.global_mu_hat:.3f} "
          f"(interval {result.global_interval})")
    print(f"annotation cost  : {result.cost_hours:.2f} hours")
    worst = result.worst_partition
    print(
        f"\ncuration priority: '{worst.partition}' — estimated "
        f"{worst.mu_hat:.0%} accurate, {worst.weight:.0%} of the KG."
    )


if __name__ == "__main__":
    main()
