"""Audit a 100-million-triple knowledge graph on a laptop.

The paper's scalability claim (Table 4): convergence depends on the
accuracy distribution, not the KG size.  This example audits the lazy
SYN 100M synthetic KG (101,415,011 triples, 5M entity clusters) with
TWCS + aHPD and compares the effort against auditing the 1,860-triple
NELL sample — the costs come out in the same ballpark.

Run with::

    python examples/audit_large_kg.py
"""

from __future__ import annotations

import time

from repro import (
    AdaptiveHPD,
    KGAccuracyEvaluator,
    TwoStageWeightedClusterSampling,
    load_nell,
    load_syn100m,
)


def audit(kg, label: str, m: int) -> None:
    evaluator = KGAccuracyEvaluator(
        kg=kg,
        strategy=TwoStageWeightedClusterSampling(m=m),
        method=AdaptiveHPD(),
    )
    start = time.perf_counter()
    result = evaluator.run(rng=11)
    elapsed = time.perf_counter() - start
    print(f"\n{label}")
    print(f"  KG size            : {kg.num_triples:,} triples")
    print(f"  estimated accuracy : {result.mu_hat:.3f} (true {kg.accuracy:.3f})")
    print(f"  interval           : {result.interval}")
    print(f"  annotated triples  : {result.n_triples}")
    print(f"  sampled clusters   : {result.n_units}")
    print(f"  annotation cost    : {result.cost_hours:.2f} hours")
    print(f"  wall-clock         : {elapsed:.2f} s")


def main() -> None:
    print("Building the lazy SYN 100M KG (labels generated on demand)...")
    syn = load_syn100m(accuracy=0.9, seed=0)
    audit(syn, "SYN 100M (mu = 0.9), TWCS m=5", m=5)

    nell = load_nell(seed=42)
    audit(nell, "NELL sample (mu = 0.91), TWCS m=3", m=3)

    print(
        "\nSame accuracy regime, same order of annotation effort — "
        "a 54,000x larger KG costs roughly the same audit (Table 4)."
    )


if __name__ == "__main__":
    main()
