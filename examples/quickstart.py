"""Quickstart: audit the accuracy of a knowledge graph.

Loads the NELL dataset profile, runs the paper's iterative evaluation
with aHPD + SRS, and prints the estimate, the credible interval, and
what the audit would have cost in human annotation time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AdaptiveHPD,
    KGAccuracyEvaluator,
    SimpleRandomSampling,
    load_nell,
)


def main() -> None:
    # 1. A knowledge graph with ground-truth labels.  `load_nell`
    #    regenerates the paper's NELL sample profile (1,860 facts,
    #    817 entity clusters, accuracy 0.91).
    kg = load_nell(seed=42)
    print(f"Auditing {kg!r}")

    # 2. The evaluator wires together a sampling strategy, an interval
    #    method, an annotator (defaults to the gold-label oracle), and
    #    the stop rule (alpha = 0.05, MoE threshold = 0.05).
    evaluator = KGAccuracyEvaluator(
        kg=kg,
        strategy=SimpleRandomSampling(),
        method=AdaptiveHPD(),  # Kerman + Jeffreys + Uniform priors
    )

    # 3. One audit run.  The loop samples, annotates, re-estimates, and
    #    stops as soon as the credible interval is narrow enough.
    result = evaluator.run(rng=7, keep_trace=True)

    print(f"\nestimated accuracy : {result.mu_hat:.3f}")
    print(f"true accuracy      : {kg.accuracy:.3f}")
    print(f"95% credible interval: {result.interval}")
    print(f"annotated triples  : {result.n_triples}")
    print(f"distinct entities  : {result.n_entities}")
    print(f"annotation cost    : {result.cost_hours:.2f} hours")

    # 4. The trace shows the interval tightening as annotations accrue.
    print("\niteration trace (every 10th):")
    for record in result.trace[::10]:
        print(
            f"  n={record.n_annotated:4d}  mu_hat={record.mu_hat:.3f}  "
            f"interval=[{record.lower:.3f}, {record.upper:.3f}]  "
            f"MoE={record.moe:.3f}"
        )
    final = result.trace[-1]
    print(
        f"  n={final.n_annotated:4d}  mu_hat={final.mu_hat:.3f}  "
        f"interval=[{final.lower:.3f}, {final.upper:.3f}]  "
        f"MoE={final.moe:.3f}  <- converged"
    )


if __name__ == "__main__":
    main()
