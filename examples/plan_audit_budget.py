"""Plan an annotation budget before committing annotators.

Before an audit starts, the beta-binomial machinery can predict how
many annotations (and hours) each interval method will need for a
hypothesised accuracy — the expected-MoE curves behind the paper's
Figure 3, inverted.  The example plans budgets across the accuracy
range and precision levels, then verifies one prediction against a
simulated audit.

Run with::

    python examples/plan_audit_budget.py
"""

from __future__ import annotations

from repro import (
    AdaptiveHPD,
    EvaluationConfig,
    KGAccuracyEvaluator,
    SampleSizePlanner,
    SimpleRandomSampling,
    WaldInterval,
    WilsonInterval,
    load_nell,
    run_study,
)

METHODS = {
    "Wald": WaldInterval(),
    "Wilson": WilsonInterval(),
    "aHPD": AdaptiveHPD(),
}


def plan_table(alpha: float) -> None:
    planner = SampleSizePlanner(config=EvaluationConfig(alpha=alpha, epsilon=0.05))
    print(f"\npredicted annotations for MoE <= 0.05 at alpha = {alpha}:")
    print(f"{'expected mu':>12} {'Wald':>8} {'Wilson':>8} {'aHPD':>8} {'aHPD hours':>11}")
    for mu in (0.99, 0.95, 0.91, 0.85, 0.70, 0.54):
        plans = planner.compare(METHODS, mu=mu)
        print(
            f"{mu:>12.2f} {plans['Wald'].n_triples:>8} "
            f"{plans['Wilson'].n_triples:>8} {plans['aHPD'].n_triples:>8} "
            f"{plans['aHPD'].cost_hours:>11.2f}"
        )


def verify_against_simulation() -> None:
    kg = load_nell(seed=42)
    planner = SampleSizePlanner()
    plan = planner.plan(AdaptiveHPD(), mu=kg.accuracy)
    study = run_study(
        KGAccuracyEvaluator(kg, SimpleRandomSampling(), AdaptiveHPD()),
        repetitions=60,
        seed=0,
    )
    print(f"\nNELL sanity check (true mu = {kg.accuracy:.2f}):")
    print(f"  planner prediction : {plan.n_triples} triples")
    print(f"  simulated audits   : {study.triples_summary.format(0)} triples")
    print(
        "  (realised effort runs below the prediction because the stop "
        "rule halts on the noisy realised MoE)"
    )


def main() -> None:
    plan_table(alpha=0.05)
    plan_table(alpha=0.01)
    verify_against_simulation()


if __name__ == "__main__":
    main()
