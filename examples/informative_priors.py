"""Using prior knowledge to cut annotation costs (paper Example 2).

An analyst auditing a DBPEDIA-like KG already knows the accuracy of two
similar KGs (0.80 and 0.90).  Encoding that knowledge as informative
Beta priors and feeding them to aHPD slashes the annotation effort —
while a *deceptive* prior (from a KG that is nothing like the target)
is caught by letting it compete against the uninformative trio.

Run with::

    python examples/informative_priors.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptiveHPD,
    BetaPrior,
    KGAccuracyEvaluator,
    TwoStageWeightedClusterSampling,
    UNINFORMATIVE_PRIORS,
    load_dbpedia,
    run_study,
)


def study(kg, method, label: str, repetitions: int = 50):
    evaluator = KGAccuracyEvaluator(
        kg=kg, strategy=TwoStageWeightedClusterSampling(m=3), method=method
    )
    result = run_study(evaluator, repetitions=repetitions, seed=0, label=label)
    print(
        f"  {label:32s} triples={result.triples_summary.format(0):>9s}  "
        f"cost={result.cost_summary.format(2)}h  "
        f"bias={result.estimate_bias(kg.accuracy):+.3f}"
    )
    return result


def main() -> None:
    kg = load_dbpedia(seed=42)
    print(f"Auditing {kg!r} under TWCS (m=3), 50 repetitions each.\n")

    # The paper's Example 2 priors: two similar KGs with accuracies
    # 0.80 and 0.90, each trusted as much as 100 annotations.
    similar_a = BetaPrior.from_accuracy(0.80, 100, name="Similar KG (0.80)")
    similar_b = BetaPrior.from_accuracy(0.90, 100, name="Similar KG (0.90)")

    print("1. Informative priors from similar KGs (paper Example 2):")
    informative = study(
        kg, AdaptiveHPD(priors=(similar_a, similar_b)), "aHPD informative"
    )
    uninformative = study(kg, AdaptiveHPD(), "aHPD uninformative")
    saving = 1 - informative.cost_hours.mean() / uninformative.cost_hours.mean()
    print(f"  -> informative priors save {saving:.0%} of the annotation cost\n")

    # A deceptive prior: belief that the KG is nearly perfect (0.99)
    # with heavy confidence.  Racing it against the uninformative trio
    # keeps the audit honest (the estimate stays unbiased) at a modest
    # efficiency price.
    deceptive = BetaPrior.from_accuracy(0.99, 300, name="Deceptive (0.99)")
    print("2. A deceptive prior, raced against the uninformative trio:")
    guarded = study(
        kg,
        AdaptiveHPD(priors=UNINFORMATIVE_PRIORS + (deceptive,)),
        "aHPD trio + deceptive",
    )
    drift = abs(float(np.mean(guarded.estimates)) - kg.accuracy)
    print(f"  -> estimate drift vs truth: {drift:.3f} (stays honest)")


if __name__ == "__main__":
    main()
