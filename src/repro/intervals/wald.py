"""The Wald confidence interval (paper Sec. 3.1).

Inverts the large-sample normal test, yielding

.. math::

    \\hat\\mu_S \\pm z_{\\alpha/2} \\sqrt{V(\\hat\\mu_S)}

Efficient but unreliable: on binomial proportions it overshoots the
``[0, 1]`` domain and produces zero-width intervals whenever the sample
is unanimous (``V = 0``), the pathology behind the paper's Example 1 and
its Fallacies 1-3 discussion.  Because it consumes the *design* variance
directly, the same class serves SRS and TWCS without a design-effect
correction.
"""

from __future__ import annotations

import math
from typing import Sequence

from .._validation import check_alpha
from ..estimators.base import Evidence
from .base import Interval, IntervalMethod, critical_value
from .batch import BatchIntervals, evidence_arrays, wald_bounds_batch

__all__ = ["WaldInterval"]


class WaldInterval(IntervalMethod):
    """Normal-approximation interval around the point estimate."""

    name = "Wald"

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        alpha = check_alpha(alpha)
        z = critical_value(alpha)
        half_width = z * math.sqrt(evidence.variance)
        return Interval(
            lower=evidence.mu_hat - half_width,
            upper=evidence.mu_hat + half_width,
            alpha=alpha,
            method=self.name,
        )

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        alpha = check_alpha(alpha)
        mu, variance, _, _ = evidence_arrays(evidences)
        lower, upper = wald_bounds_batch(mu, variance, alpha)
        return BatchIntervals(lower=lower, upper=upper, alpha=alpha, method=self.name)
