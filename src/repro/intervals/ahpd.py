"""The adaptive HPD (aHPD) algorithm (paper Sec. 4.5, Algorithm 1).

Choosing the right uninformative prior is impossible a priori: Kerman is
optimal in the extreme accuracy regions, Uniform in the central one, and
Jeffreys never wins (Sec. 4.4 / Fig. 3).  aHPD sidesteps the choice by
running *all* candidate priors concurrently: at every round of the
iterative evaluation it builds one HPD interval per prior and keeps the
shortest.  The first interval to meet the MoE threshold halts the
evaluation, so the most efficient competitor always decides convergence.

This module implements the per-round interval selection; the loop around
it (sampling, annotation, the MoE stop rule) is
:class:`repro.evaluation.framework.KGAccuracyEvaluator` — together they
are Algorithm 1.  Informative priors (Example 2) are supported simply by
passing them in the prior set.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .._validation import check_alpha, check_not_empty
from ..estimators.base import Evidence
from ..exceptions import ValidationError
from .base import Interval, IntervalMethod
from .batch import (
    BatchIntervals,
    evidence_arrays,
    hpd_bounds_batch,
    posterior_shapes_batch,
)
from .hpd import HPD_SOLVERS, hpd_bounds
from .posterior import BetaPosterior
from .priors import UNINFORMATIVE_PRIORS, BetaPrior

__all__ = ["AdaptiveHPD"]


class AdaptiveHPD(IntervalMethod):
    """Shortest-HPD-across-priors interval selector.

    Parameters
    ----------
    priors:
        Candidate Beta priors; defaults to the paper's trio (Kerman,
        Jeffreys, Uniform).  There is no limit on how many priors can
        compete; informative priors are allowed.
    solver:
        Interior-mode HPD solver (see
        :func:`repro.intervals.hpd.hpd_bounds`).
    """

    def __init__(
        self,
        priors: Sequence[BetaPrior] = UNINFORMATIVE_PRIORS,
        solver: str = "newton",
    ):
        priors = tuple(check_not_empty(list(priors), "priors"))
        for prior in priors:
            if not isinstance(prior, BetaPrior):
                raise ValidationError(f"expected BetaPrior instances, got {type(prior)!r}")
        if solver not in HPD_SOLVERS:
            known = ", ".join(sorted(HPD_SOLVERS))
            raise ValidationError(
                f"unknown HPD solver {solver!r}; expected one of: {known}"
            )
        self.priors = priors
        self.solver = solver
        self.name = "aHPD"

    def compute_all(self, evidence: Evidence, alpha: float) -> Mapping[str, Interval]:
        """One HPD interval per candidate prior (Algorithm 1, l. 14-22)."""
        intervals: dict[str, Interval] = {}
        for prior in self.priors:
            posterior = BetaPosterior.from_evidence(prior, evidence)
            lower, upper = hpd_bounds(posterior, alpha, solver=self.solver)
            intervals[prior.name] = Interval(
                lower=lower,
                upper=upper,
                alpha=alpha,
                method=f"aHPD[{prior.name}]",
            )
        return intervals

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        """The smallest competing HPD interval (Algorithm 1, l. 23)."""
        intervals = self.compute_all(evidence, alpha)
        return min(intervals.values(), key=lambda interval: interval.width)

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        """Element-wise shortest interval across the candidate priors.

        One vectorised HPD solve per prior; ties resolve to the earliest
        prior, matching the scalar ``min`` over insertion order.  The
        winning prior of each element is preserved as its label, like
        the scalar path's ``aHPD[<prior>]`` annotation.
        """
        alpha = check_alpha(alpha)
        _, _, n_eff, tau_eff = evidence_arrays(evidences)
        best_lower = best_upper = best_width = winner = None
        for prior_index, prior in enumerate(self.priors):
            a, b = posterior_shapes_batch(prior, tau_eff, n_eff)
            lower, upper = hpd_bounds_batch(a, b, alpha)
            width = upper - lower
            if best_width is None:
                best_lower, best_upper, best_width = lower, upper, width
                winner = np.zeros(len(lower), dtype=int)
            else:
                shorter = width < best_width
                best_lower = np.where(shorter, lower, best_lower)
                best_upper = np.where(shorter, upper, best_upper)
                best_width = np.where(shorter, width, best_width)
                winner = np.where(shorter, prior_index, winner)
        return BatchIntervals(
            lower=best_lower,
            upper=best_upper,
            alpha=alpha,
            method=self.name,
            labels=tuple(f"aHPD[{self.priors[i].name}]" for i in winner),
        )

    def winning_prior(self, evidence: Evidence, alpha: float) -> BetaPrior:
        """Which prior produced the shortest interval for *evidence*."""
        intervals = self.compute_all(evidence, alpha)
        best_name = min(intervals, key=lambda name: intervals[name].width)
        for prior in self.priors:
            if prior.name == best_name:
                return prior
        raise AssertionError("winning prior not found")  # pragma: no cover

    def __repr__(self) -> str:
        names = ", ".join(prior.name for prior in self.priors)
        return f"AdaptiveHPD(priors=[{names}], solver={self.solver!r})"
