"""Pluggable solver kernels for the HPD hot path.

Every Monte-Carlo cell bottoms out in the same inner loop: the damped-
Newton HPD solve over interior-mode Beta posteriors plus the raw beta
pdf/cdf/ppf primitives.  This module makes that loop *pluggable*:

* :class:`NumpyKernel` — the existing vectorised NumPy implementation,
  moved here **verbatim** from ``repro.intervals.batch._newton_batch``.
  It is the reference oracle: every other kernel is pinned to it by a
  bit-identity-or-1e-12 property test over all nine interval methods.
* :class:`NativeKernel` — a JIT-compiled (numba, *optional* dependency)
  scalar transcription of the same iteration, calling the identical
  ``scipy.special`` C routines through
  ``scipy.special.cython_special`` function addresses, so the per-row
  trajectory matches the NumPy loop step for step.  Compiled once per
  process on first use; absent numba, requesting it raises.

Selection (``REPRO_KERNEL`` / ``RunContext.kernel`` / ``--kernel``):

* ``numpy`` — the default; the oracle, always available.
* ``native`` — the JIT kernel; raises a
  :class:`~repro.exceptions.ValidationError` when numba (or the
  required ``cython_special`` symbols) is unavailable.
* ``auto`` — ``native`` when it can be built, else a **loud** per-
  process ``RuntimeWarning`` plus a ``kernel_fallback`` journal event
  (emitted by the executor) and the NumPy oracle.  Never silent.

Kernel choice is pure execution policy: it is *not* part of
:class:`~repro.runtime.settings.RunContext`'s cache identity, never
reaches :func:`~repro.runtime.spec.cache_token`, and must never change
committed result bytes — the deterministic-fields-only rule of
EXPERIMENTS.md extends to ``REPRO_KERNEL``.  The kernel travels as a
context variable (:func:`use_kernel` / :func:`active_kernel`), same as
the ambient solve pool, so concurrent service requests can run
different kernels side by side.
"""

from __future__ import annotations

import contextvars
import threading
import warnings
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from ..exceptions import ValidationError
from ..stats.beta import _beta_cdf_raw, _beta_pdf_raw, _beta_ppf_raw

__all__ = [
    "KERNEL_NAMES",
    "NEWTON_MAX_ITER",
    "NativeKernel",
    "NumpyKernel",
    "SolverKernel",
    "active_kernel",
    "auto_fallback_info",
    "get_kernel",
    "kernel_status",
    "native_available",
    "use_kernel",
]

#: Valid ``REPRO_KERNEL`` / ``--kernel`` choices.
KERNEL_NAMES = ("auto", "numpy", "native")

#: Maximum damped-Newton iterations before a row falls back to the
#: scalar solver — the single source of truth shared by every kernel
#: and by the scalar solver in :mod:`repro.intervals.hpd`.
NEWTON_MAX_ITER = 60


class SolverKernel:
    """One implementation of the solver hot path.

    A kernel provides the raw beta primitives and the interior-mode
    Newton iteration; the shape dispatch, validation, and scalar
    fallback around them stay in :mod:`repro.intervals.batch`, shared
    by every kernel.  ``newton_interior`` receives positive, finite,
    interior-mode ``(a, b)`` arrays (``a > 1``, ``b > 1``) and returns
    ``(lower, upper, failed)``: the iterated bounds plus a boolean mask
    of rows the caller must re-solve with the robust scalar solver.
    Rows are independent — a kernel may vectorise or loop, but row
    ``i``'s output depends only on ``(a[i], b[i], alpha)``.
    """

    name: str = "abstract"

    def beta_pdf(self, x, a, b) -> np.ndarray:
        """Raw (validation-free) Beta density over broadcast arrays."""
        raise NotImplementedError

    def beta_cdf(self, x, a, b) -> np.ndarray:
        """Raw Beta CDF over broadcast arrays."""
        raise NotImplementedError

    def beta_ppf(self, q, a, b) -> np.ndarray:
        """Raw Beta quantile function over broadcast arrays."""
        raise NotImplementedError

    def newton_interior(
        self, a: np.ndarray, b: np.ndarray, alpha: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Damped-Newton HPD iteration over interior-mode rows."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NumpyKernel(SolverKernel):
    """The vectorised NumPy implementation — the reference oracle.

    The Newton loop below is the former body of
    ``repro.intervals.batch._newton_batch``, moved verbatim: same
    bracketing, same Jacobian, same feasibility-limited damping, same
    per-row convergence bookkeeping.  Nothing about the arithmetic
    changed in the move, which is what keeps every pre-kernel golden
    fixture byte-identical.
    """

    name = "numpy"

    def beta_pdf(self, x, a, b) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return _beta_pdf_raw(x, a, b)

    def beta_cdf(self, x, a, b) -> np.ndarray:
        return _beta_cdf_raw(x, a, b)

    def beta_ppf(self, q, a, b) -> np.ndarray:
        return _beta_ppf_raw(q, a, b)

    def newton_interior(
        self, a: np.ndarray, b: np.ndarray, alpha: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        target = 1.0 - alpha
        eps = 1e-12
        mode = (a - 1.0) / (a + b - 2.0)
        # Rows whose mode sits numerically on a boundary degenerate the
        # two-sided bracketing; send them straight to the scalar fallback.
        failed = (mode <= 2.0 * eps) | (mode >= 1.0 - 2.0 * eps)

        with np.errstate(divide="ignore", invalid="ignore"):
            lower = _beta_ppf_raw(alpha / 2.0, a, b)
            upper = _beta_ppf_raw(1.0 - alpha / 2.0, a, b)
            lower = np.minimum(np.maximum(lower, eps), mode - eps)
            upper = np.minimum(
                np.maximum(np.minimum(upper, 1.0 - eps), mode + eps), 1.0 - eps
            )

            active = np.flatnonzero(~failed)
            # Gather the active-row views once; the loop maintains them
            # in lock-step with ``active`` instead of re-slicing the full
            # arrays every iteration (pure bookkeeping — same values).
            a_i, b_i = a[active], b[active]
            l_i, u_i = lower[active], upper[active]
            m_i = mode[active]
            for _ in range(NEWTON_MAX_ITER):
                if active.size == 0:
                    break
                f_l = _beta_pdf_raw(l_i, a_i, b_i)
                f_u = _beta_pdf_raw(u_i, a_i, b_i)
                mass = _beta_cdf_raw(u_i, a_i, b_i) - _beta_cdf_raw(l_i, a_i, b_i)
                r1 = f_l - f_u
                r2 = mass - target
                converged = (
                    np.abs(r1) <= 1e-12 * np.maximum(np.maximum(f_l, f_u), 1.0)
                ) & (np.abs(r2) <= 1e-12)
                if converged.all():
                    break
                if converged.any():
                    keep = ~converged
                    active = active[keep]
                    a_i, b_i = a_i[keep], b_i[keep]
                    l_i, u_i = l_i[keep], u_i[keep]
                    f_l, f_u = f_l[keep], f_u[keep]
                    r1, r2 = r1[keep], r2[keep]
                    m_i = m_i[keep]

                # Analytic 2x2 Jacobian of the optimality system.  Rows
                # whose iterate grazes a boundary produce non-finite entries
                # here and are routed to the scalar fallback below.
                j11 = f_l * ((a_i - 1.0) / l_i - (b_i - 1.0) / (1.0 - l_i))
                j12 = -f_u * ((a_i - 1.0) / u_i - (b_i - 1.0) / (1.0 - u_i))
                j21 = -f_l
                j22 = f_u
                det = j11 * j22 - j12 * j21
                singular = (det == 0.0) | ~np.isfinite(det)
                det = np.where(singular, 1.0, det)
                step_l = (r1 * j22 - r2 * j12) / det
                step_u = (r2 * j11 - r1 * j21) / det

                # Feasibility-limited damping: the largest per-row scale
                # that keeps ``l in (0, mode)`` and ``u in (mode, 1)``,
                # backed off to 90% so iterates stay strictly interior.
                s_l = np.where(
                    step_l > 0.0,
                    l_i / step_l,
                    np.where(step_l < 0.0, (m_i - l_i) / -step_l, np.inf),
                )
                s_u = np.where(
                    step_u < 0.0,
                    (1.0 - u_i) / -step_u,
                    np.where(step_u > 0.0, (u_i - m_i) / step_u, np.inf),
                )
                scale = np.minimum(1.0, 0.9 * np.minimum(s_l, s_u))
                stuck = (
                    singular
                    | ~np.isfinite(step_l)
                    | ~np.isfinite(step_u)
                    | (scale <= 1e-6)
                )
                new_l = l_i - scale * step_l
                new_u = u_i - scale * step_u
                if stuck.any():
                    failed[active[stuck]] = True
                    ok = ~stuck
                    active = active[ok]
                    a_i, b_i = a_i[ok], b_i[ok]
                    m_i = m_i[ok]
                    l_i, u_i = new_l[ok], new_u[ok]
                else:
                    l_i, u_i = new_l, new_u
                lower[active] = l_i
                upper[active] = u_i
        return lower, upper, failed


class NativeKernel(SolverKernel):
    """JIT-compiled per-row transcription of the Newton iteration.

    Built by :func:`_build_native` when numba is importable: the
    compiled loop calls the same ``scipy.special`` C routines as the
    NumPy ufuncs (through ``cython_special`` function addresses), so a
    row's iterate sequence matches the oracle's — any residual
    difference comes from scalar-vs-SIMD ``exp`` and stays within the
    pinned 1e-12 tolerance.
    """

    name = "native"

    def __init__(self, newton_rows, pdf_rows, cdf_rows, ppf_rows) -> None:
        self._newton_rows = newton_rows
        self._pdf_rows = pdf_rows
        self._cdf_rows = cdf_rows
        self._ppf_rows = ppf_rows

    @staticmethod
    def _broadcast(x, a, b) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple]:
        x, a, b = np.broadcast_arrays(
            np.asarray(x, dtype=float),
            np.asarray(a, dtype=float),
            np.asarray(b, dtype=float),
        )
        shape = x.shape
        flat = (
            np.ascontiguousarray(x, dtype=float).ravel(),
            np.ascontiguousarray(a, dtype=float).ravel(),
            np.ascontiguousarray(b, dtype=float).ravel(),
        )
        return (*flat, shape)

    def beta_pdf(self, x, a, b) -> np.ndarray:
        x, a, b, shape = self._broadcast(x, a, b)
        out = np.empty(x.shape[0], dtype=float)
        self._pdf_rows(out, x, a, b)
        return out.reshape(shape)

    def beta_cdf(self, x, a, b) -> np.ndarray:
        x, a, b, shape = self._broadcast(x, a, b)
        out = np.empty(x.shape[0], dtype=float)
        self._cdf_rows(out, x, a, b)
        return out.reshape(shape)

    def beta_ppf(self, q, a, b) -> np.ndarray:
        q, a, b, shape = self._broadcast(q, a, b)
        out = np.empty(q.shape[0], dtype=float)
        self._ppf_rows(out, q, a, b)
        return out.reshape(shape)

    def newton_interior(
        self, a: np.ndarray, b: np.ndarray, alpha: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        a = np.ascontiguousarray(a, dtype=float)
        b = np.ascontiguousarray(b, dtype=float)
        lower = np.empty(a.shape[0], dtype=float)
        upper = np.empty(a.shape[0], dtype=float)
        failed = np.zeros(a.shape[0], dtype=np.bool_)
        self._newton_rows(a, b, float(alpha), lower, upper, failed)
        return lower, upper, failed


def _cython_special_fn(name: str, arity: int, probe, expected: float):
    """A ctypes handle on a ``scipy.special.cython_special`` double routine.

    Fused-type routines export mangled symbols (``__pyx_fuse_1<name>``
    for the double specialisation on current scipy, but the numbering
    is an implementation detail) — so every candidate symbol is probed
    against the ufunc's value at a known point and only a match is
    accepted.  A float-specialisation hit through the double ABI would
    produce garbage and fail the probe.
    """
    import ctypes

    from numba.extending import get_cython_function_address

    signature = ctypes.CFUNCTYPE(ctypes.c_double, *([ctypes.c_double] * arity))
    for symbol in (name, f"__pyx_fuse_1{name}", f"__pyx_fuse_0{name}"):
        try:
            address = get_cython_function_address(
                "scipy.special.cython_special", symbol
            )
        except ValueError:
            continue
        handle = signature(address)
        got = handle(*probe)
        if abs(got - expected) <= 1e-10 * max(1.0, abs(expected)):
            return handle
    raise ImportError(
        f"scipy.special.cython_special exports no double-precision "
        f"{name!r} symbol"
    )


def _build_native() -> NativeKernel:
    """Compile the native kernel; raises ``ImportError`` without numba."""
    import math

    import numba
    from scipy import special as _sp

    betainc = _cython_special_fn(
        "betainc", 3, (2.0, 3.0, 0.25), float(_sp.betainc(2.0, 3.0, 0.25))
    )
    betaincinv = _cython_special_fn(
        "betaincinv", 3, (2.0, 3.0, 0.25), float(_sp.betaincinv(2.0, 3.0, 0.25))
    )
    xlogy = _cython_special_fn(
        "xlogy", 2, (1.5, 0.25), float(_sp.xlogy(1.5, 0.25))
    )
    xlog1py = _cython_special_fn(
        "xlog1py", 2, (1.5, -0.25), float(_sp.xlog1py(1.5, -0.25))
    )
    betaln = _cython_special_fn(
        "betaln", 2, (2.0, 3.0), float(_sp.betaln(2.0, 3.0))
    )

    # cache=False: the compiled loops close over ctypes addresses that
    # change per process, so numba's on-disk cache cannot hold them;
    # the JIT'd dispatchers are cached per process on the kernel
    # instance instead (one compile per service/worker lifetime).
    @numba.njit(cache=False)
    def pdf_one(x: float, a: float, b: float) -> float:
        if x < 0.0 or x > 1.0:
            return 0.0
        return math.exp(xlogy(a - 1.0, x) + xlog1py(b - 1.0, -x) - betaln(a, b))

    @numba.njit(cache=False)
    def pdf_rows(out, x, a, b):
        for i in range(out.shape[0]):
            out[i] = pdf_one(x[i], a[i], b[i])

    @numba.njit(cache=False)
    def cdf_rows(out, x, a, b):
        for i in range(out.shape[0]):
            clipped = min(max(x[i], 0.0), 1.0)
            out[i] = betainc(a[i], b[i], clipped)

    @numba.njit(cache=False)
    def ppf_rows(out, q, a, b):
        for i in range(out.shape[0]):
            out[i] = betaincinv(a[i], b[i], q[i])

    @numba.njit(cache=False)
    def newton_rows(a, b, alpha, lower, upper, failed):
        # Scalar transcription of NumpyKernel.newton_interior: one row
        # at a time, identical bracketing / Jacobian / damping, so each
        # row walks the same iterate sequence as the vectorised oracle.
        target = 1.0 - alpha
        eps = 1e-12
        max_iter = NEWTON_MAX_ITER
        for i in range(a.shape[0]):
            a_i = a[i]
            b_i = b[i]
            m_i = (a_i - 1.0) / (a_i + b_i - 2.0)
            if m_i <= 2.0 * eps or m_i >= 1.0 - 2.0 * eps:
                failed[i] = True
                lower[i] = 0.0
                upper[i] = 1.0
                continue
            l_i = betaincinv(a_i, b_i, alpha / 2.0)
            u_i = betaincinv(a_i, b_i, 1.0 - alpha / 2.0)
            l_i = min(max(l_i, eps), m_i - eps)
            u_i = min(max(min(u_i, 1.0 - eps), m_i + eps), 1.0 - eps)
            for _ in range(max_iter):
                f_l = pdf_one(l_i, a_i, b_i)
                f_u = pdf_one(u_i, a_i, b_i)
                mass = betainc(a_i, b_i, u_i) - betainc(a_i, b_i, l_i)
                r1 = f_l - f_u
                r2 = mass - target
                if (
                    abs(r1) <= 1e-12 * max(max(f_l, f_u), 1.0)
                    and abs(r2) <= 1e-12
                ):
                    break
                j11 = f_l * ((a_i - 1.0) / l_i - (b_i - 1.0) / (1.0 - l_i))
                j12 = -f_u * ((a_i - 1.0) / u_i - (b_i - 1.0) / (1.0 - u_i))
                j21 = -f_l
                j22 = f_u
                det = j11 * j22 - j12 * j21
                singular = det == 0.0 or not math.isfinite(det)
                if singular:
                    det = 1.0
                step_l = (r1 * j22 - r2 * j12) / det
                step_u = (r2 * j11 - r1 * j21) / det
                if step_l > 0.0:
                    s_l = l_i / step_l
                elif step_l < 0.0:
                    s_l = (m_i - l_i) / -step_l
                else:
                    s_l = np.inf
                if step_u < 0.0:
                    s_u = (1.0 - u_i) / -step_u
                elif step_u > 0.0:
                    s_u = (u_i - m_i) / step_u
                else:
                    s_u = np.inf
                scale = min(1.0, 0.9 * min(s_l, s_u))
                if (
                    singular
                    or not math.isfinite(step_l)
                    or not math.isfinite(step_u)
                    or scale <= 1e-6
                ):
                    # Stuck: keep the previous iterate (the oracle never
                    # writes the stuck step either) and hand the row to
                    # the scalar fallback.
                    failed[i] = True
                    break
                l_i = l_i - scale * step_l
                u_i = u_i - scale * step_u
            lower[i] = l_i
            upper[i] = u_i

    # Warm the dispatchers now so "native kernel ready" means compiled:
    # misconfigured numba/scipy combinations fail here, at selection
    # time, not mid-run inside a solve.
    probe = np.array([2.5], dtype=float)
    out = np.empty(1, dtype=float)
    pdf_rows(out, np.array([0.5]), probe, probe)
    cdf_rows(out, np.array([0.5]), probe, probe)
    ppf_rows(out, np.array([0.5]), probe, probe)
    newton_rows(
        probe,
        probe,
        0.05,
        np.empty(1, dtype=float),
        np.empty(1, dtype=float),
        np.zeros(1, dtype=np.bool_),
    )
    return NativeKernel(newton_rows, pdf_rows, cdf_rows, ppf_rows)


# ----------------------------------------------------------------------
# Registry, resolution, and the ambient-kernel context variable
# ----------------------------------------------------------------------

_NUMPY_KERNEL = NumpyKernel()
_BUILD_LOCK = threading.Lock()
#: Build-once memo: the native kernel instance, or the failure text.
_NATIVE_KERNEL: NativeKernel | None = None
_NATIVE_ERROR: str | None = None
_AUTO_WARNED = False

#: The ambient solver kernel, if any; ``None`` resolves ``REPRO_KERNEL``
#: lazily (see :func:`active_kernel`).  A context variable, like the
#: ambient solve pool, so concurrent requests pick kernels independently.
_KERNEL: contextvars.ContextVar[SolverKernel | None] = contextvars.ContextVar(
    "repro-solver-kernel", default=None
)


def _try_native() -> NativeKernel | None:
    """The native kernel, building it on first call; ``None`` on failure."""
    global _NATIVE_KERNEL, _NATIVE_ERROR
    if _NATIVE_KERNEL is not None:
        return _NATIVE_KERNEL
    if _NATIVE_ERROR is not None:
        return None
    with _BUILD_LOCK:
        if _NATIVE_KERNEL is not None or _NATIVE_ERROR is not None:
            return _NATIVE_KERNEL
        try:
            _NATIVE_KERNEL = _build_native()
        except Exception as exc:  # noqa: BLE001 - any build failure degrades
            _NATIVE_ERROR = f"{type(exc).__name__}: {exc}"
            return None
    return _NATIVE_KERNEL


def native_available() -> bool:
    """Whether the JIT kernel can be (or already was) built here."""
    return _try_native() is not None


def get_kernel(name: str) -> SolverKernel:
    """The kernel instance for resolved choice *name*.

    ``native`` raises when the JIT kernel cannot be built; ``auto``
    degrades to the NumPy oracle **loudly** — one ``RuntimeWarning``
    per process (the executor additionally journals a
    ``kernel_fallback`` event per run).
    """
    global _AUTO_WARNED
    choice = str(name).strip().lower()
    if choice == "numpy":
        return _NUMPY_KERNEL
    if choice == "native":
        kernel = _try_native()
        if kernel is None:
            raise ValidationError(
                "the native solver kernel is unavailable "
                f"({_NATIVE_ERROR}); install numba or select "
                "--kernel numpy / REPRO_KERNEL=auto"
            )
        return kernel
    if choice == "auto":
        kernel = _try_native()
        if kernel is not None:
            return kernel
        if not _AUTO_WARNED:
            _AUTO_WARNED = True
            warnings.warn(
                "REPRO_KERNEL=auto: native solver kernel unavailable "
                f"({_NATIVE_ERROR}); falling back to the NumPy oracle "
                "kernel (results are unaffected — the kernels are "
                "pinned bit-identical-or-1e-12)",
                RuntimeWarning,
                stacklevel=2,
            )
        return _NUMPY_KERNEL
    raise ValidationError(
        f"unknown solver kernel {name!r}; expected one of: "
        + ", ".join(KERNEL_NAMES)
    )


def auto_fallback_info(name: str) -> dict[str, Any] | None:
    """Describes the ``auto`` → ``numpy`` degradation, or ``None``.

    The executor journals this as a per-run ``kernel_fallback`` event
    so a trace reader sees the degradation even when the per-process
    warning fired in an earlier run.
    """
    if str(name).strip().lower() != "auto" or native_available():
        return None
    return {
        "requested": "auto",
        "resolved": "numpy",
        "reason": _NATIVE_ERROR or "native kernel unavailable",
    }


def active_kernel() -> SolverKernel:
    """The kernel the solver hot path dispatches through.

    An ambient kernel installed by :func:`use_kernel` wins; otherwise
    the ``REPRO_KERNEL`` knob resolves lazily (default ``numpy``), so a
    bare ``compute_batch`` call — no executor, no context — still
    honours the environment on a native CI leg.
    """
    kernel = _KERNEL.get()
    if kernel is not None:
        return kernel
    from ..runtime.settings import resolve_kernel  # import-leaf, cycle-safe

    return get_kernel(resolve_kernel(None))


@contextmanager
def use_kernel(kernel: "SolverKernel | str | None") -> Iterator[SolverKernel]:
    """Install *kernel* (an instance or a choice name) as ambient.

    ``None`` is a no-op install that leaves resolution lazy — useful
    for unconditional ``with`` statements.  Kernels never change what
    is computed, only which implementation computes it.
    """
    if isinstance(kernel, str):
        kernel = get_kernel(kernel)
    token = _KERNEL.set(kernel)
    try:
        yield kernel if kernel is not None else active_kernel()
    finally:
        _KERNEL.reset(token)


def kernel_status() -> dict[str, Any]:
    """JSON-ready kernel facts (service ``ping``, diagnostics)."""
    ambient = _KERNEL.get()
    return {
        "active": None if ambient is None else ambient.name,
        "native_available": native_available(),
        "native_error": _NATIVE_ERROR,
    }
