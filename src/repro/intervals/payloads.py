"""Picklable method payloads: primitive tuples describing methods.

Spec strings cover the stock methods, but they are lossy: an
informative-prior aHPD, a non-default ET/HPD prior, or a non-default
solver has no faithful spec.  Payloads close that gap — a primitive
tuple carrying the *full* configuration, decodable in any worker and
hashed into the cache token — so such methods can take the executor
path instead of silently falling back to serial loops.

The machinery lives here (not in :mod:`repro.runtime.cells`, which
re-exports it) because the intervals layer itself needs payload keys:
the cross-request :class:`~repro.runtime.solvebatch.SolveBroker` groups
pending solves by payload, and the small-n
:class:`~repro.intervals.table.SolveTable` keys its precomputed
interval tables the same way.  Payload bytes are part of the cache
contract — two equal-configured method instances must produce equal
payloads, and the payload of any method must be stable across
processes and PRs.
"""

from __future__ import annotations

from ..exceptions import ValidationError
from .agresti_coull import AgrestiCoullInterval
from .ahpd import AdaptiveHPD
from .base import IntervalMethod
from .clopper_pearson import ClopperPearsonInterval
from .et import ETCredibleInterval
from .hpd import HPDCredibleInterval
from .priors import BetaPrior
from .transforms import ArcsineInterval, LogitInterval
from .wald import WaldInterval
from .wilson import WilsonInterval

__all__ = [
    "build_method_from_payload",
    "method_payload",
]

#: Stateless method classes: the class name alone is the configuration.
_PLAIN_METHODS: dict[str, type] = {
    "wald": WaldInterval,
    "wilson": WilsonInterval,
    "ac": AgrestiCoullInterval,
    "cp": ClopperPearsonInterval,
    "arcsine": ArcsineInterval,
    "logit": LogitInterval,
}
_PLAIN_METHOD_KINDS = {klass: kind for kind, klass in _PLAIN_METHODS.items()}


def _prior_payload(prior: BetaPrior) -> tuple[float, float, str]:
    return (float(prior.a), float(prior.b), str(prior.name))


def method_payload(method: IntervalMethod) -> tuple | None:
    """A primitive tuple fully describing *method*, or ``None``.

    The payload captures everything the method reads — class, priors,
    solver — for the library's method classes (exact types only: a
    subclass may carry state the payload cannot see and is therefore
    not encodable).  ``None`` means the method cannot take the executor
    path; callers must then fall back *loudly* (``warnings.warn``), per
    the no-silent-fallback contract.
    """
    kind = _PLAIN_METHOD_KINDS.get(type(method))
    if kind is not None:
        return (kind,)
    if type(method) is ETCredibleInterval:
        return ("et", _prior_payload(method.prior))
    if type(method) is HPDCredibleInterval:
        return ("hpd", _prior_payload(method.prior), method.solver)
    if type(method) is AdaptiveHPD:
        return (
            "ahpd",
            tuple(_prior_payload(prior) for prior in method.priors),
            method.solver,
        )
    return None


def build_method_from_payload(payload: tuple) -> IntervalMethod:
    """Reconstruct the method a :func:`method_payload` tuple describes."""
    kind = payload[0]
    plain = _PLAIN_METHODS.get(kind)
    if plain is not None:
        return plain()
    if kind == "et":
        return ETCredibleInterval(prior=BetaPrior(*payload[1]))
    if kind == "hpd":
        return HPDCredibleInterval(prior=BetaPrior(*payload[1]), solver=payload[2])
    if kind == "ahpd":
        priors = tuple(BetaPrior(*entry) for entry in payload[1])
        return AdaptiveHPD(priors=priors, solver=payload[2])
    raise ValidationError(f"unknown method payload kind {kind!r}")
