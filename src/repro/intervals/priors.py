"""Beta priors for the Bayesian accuracy model (paper Sec. 4.1, 4.4).

The annotation process is a binomial ``Bin(n_S, mu)``; Beta
distributions are its conjugate priors, so a prior ``Beta(a, b)`` plus
an outcome ``(tau_S, n_S)`` yields the posterior
``Beta(a + tau_S, b + n_S - tau_S)``.

Three *uninformative* priors (``a = b <= 1``) anchor the paper's
analysis:

* **Kerman** ``Beta(1/3, 1/3)`` [24] — optimal in the extreme accuracy
  regions;
* **Jeffreys** ``Beta(1/2, 1/2)`` [22] — the common default, never the
  most efficient (a trade-off between the other two);
* **Uniform** ``Beta(1, 1)`` [2] — optimal in the central region.

Informative priors encode knowledge from similar KGs (paper Example 2);
:meth:`BetaPrior.from_accuracy` builds one from an accuracy belief and
a pseudo-annotation strength.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_positive, check_probability
from ..exceptions import PriorError

__all__ = [
    "BetaPrior",
    "KERMAN",
    "JEFFREYS",
    "UNIFORM",
    "UNINFORMATIVE_PRIORS",
]


@dataclass(frozen=True)
class BetaPrior:
    """A validated ``Beta(a, b)`` prior with a display name.

    Attributes
    ----------
    a:
        Prior pseudo-count of correct triples; strictly positive.
    b:
        Prior pseudo-count of incorrect triples; strictly positive.
    name:
        Display label used in reports (e.g. ``"Kerman"``).
    """

    a: float
    b: float
    name: str = ""

    def __post_init__(self) -> None:
        try:
            check_positive(self.a, "a")
            check_positive(self.b, "b")
        except Exception as exc:
            raise PriorError(str(exc)) from exc
        if not self.name:
            object.__setattr__(self, "name", f"Beta({self.a:g},{self.b:g})")

    @property
    def is_uninformative(self) -> bool:
        """Whether the prior is objective: ``a == b <= 1`` (Sec. 4.4)."""
        return self.a == self.b and self.a <= 1.0

    @property
    def strength(self) -> float:
        """Total pseudo-annotation count ``a + b``."""
        return self.a + self.b

    @property
    def mean(self) -> float:
        """Prior mean accuracy belief ``a / (a + b)``."""
        return self.a / (self.a + self.b)

    @classmethod
    def from_accuracy(
        cls, accuracy: float, strength: float, name: str = ""
    ) -> "BetaPrior":
        """Informative prior from an accuracy belief.

        *strength* is the weight of the belief in pseudo-annotations:
        e.g. knowing a similar KG has accuracy 0.80 and trusting that as
        much as 100 annotations gives ``Beta(80, 20)`` — the paper's
        Example 2 construction.
        """
        accuracy = check_probability(accuracy, "accuracy")
        strength = check_positive(strength, "strength")
        a = accuracy * strength
        b = (1.0 - accuracy) * strength
        if a <= 0.0 or b <= 0.0:
            raise PriorError(
                "informative prior requires accuracy strictly inside (0, 1); "
                f"got accuracy={accuracy}"
            )
        return cls(a=a, b=b, name=name or f"Informative({accuracy:g}@{strength:g})")

    def __str__(self) -> str:
        return f"{self.name}=Beta({self.a:g}, {self.b:g})"


#: Kerman's neutral noninformative prior Beta(1/3, 1/3).
KERMAN = BetaPrior(1.0 / 3.0, 1.0 / 3.0, name="Kerman")

#: Jeffreys' invariant prior Beta(1/2, 1/2).
JEFFREYS = BetaPrior(0.5, 0.5, name="Jeffreys")

#: The Bayes-Laplace uniform prior Beta(1, 1).
UNIFORM = BetaPrior(1.0, 1.0, name="Uniform")

#: The trio fed to aHPD in all paper experiments.
UNINFORMATIVE_PRIORS: tuple[BetaPrior, ...] = (KERMAN, JEFFREYS, UNIFORM)
