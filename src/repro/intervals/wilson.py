"""The Wilson score interval (paper Sec. 3.2, Eq. 7).

Inverts the score test with the *null* standard error, producing an
interval with a relocated centre and corrected spread:

.. math::

    \\frac{\\hat\\mu + z^2 / 2n}{1 + z^2 / n} \\pm
    \\frac{z}{1 + z^2 / n}
    \\sqrt{\\frac{\\hat\\mu (1 - \\hat\\mu)}{n} + \\frac{z^2}{4 n^2}}

Wilson is the state of the art for KG accuracy estimation [31]: reliable
where Wald is erratic, at some efficiency cost near the accuracy
boundaries.  Under complex designs the binomial ``n`` is replaced by the
design-effect-corrected effective sample size carried by the evidence.
"""

from __future__ import annotations

import math
from typing import Sequence

from .._validation import check_alpha
from ..estimators.base import Evidence
from .base import Interval, IntervalMethod, critical_value
from .batch import BatchIntervals, evidence_arrays, wilson_bounds_batch

__all__ = ["WilsonInterval"]


class WilsonInterval(IntervalMethod):
    """Score interval on the (effective) binomial sample."""

    name = "Wilson"

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        alpha = check_alpha(alpha)
        z = critical_value(alpha)
        n = evidence.n_effective
        mu = evidence.mu_hat
        z2_over_n = z * z / n
        denom = 1.0 + z2_over_n
        centre = (mu + z2_over_n / 2.0) / denom
        spread = (z / denom) * math.sqrt(
            mu * (1.0 - mu) / n + z * z / (4.0 * n * n)
        )
        # Wilson bounds live in [0, 1] mathematically; clamp away the
        # ulp-level float overshoot at unanimous outcomes.
        return Interval(
            lower=max(centre - spread, 0.0),
            upper=min(centre + spread, 1.0),
            alpha=alpha,
            method=self.name,
        )

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        alpha = check_alpha(alpha)
        mu, _, n_eff, _ = evidence_arrays(evidences)
        lower, upper = wilson_bounds_batch(mu, n_eff, alpha)
        return BatchIntervals(lower=lower, upper=upper, alpha=alpha, method=self.name)
