"""Variance-stabilising CI baselines: arcsine and logit intervals.

Two further members of the binomial-CI family surveyed by Brown, Cai &
DasGupta [8] (the paper's CI reference).  Both transform the proportion
to a scale where the variance is (approximately) constant, build a Wald
interval there, and back-transform:

* **Arcsine**: ``sin^2( arcsin(sqrt(mu)) ± z / (2 sqrt(n)) )`` — bounds
  always inside ``[0, 1]``.
* **Logit**: Wald on ``log(mu / (1 - mu))`` with variance
  ``n / (tau (n - tau))``; undefined at unanimous outcomes, where the
  standard Anscombe continuity correction (add 1/2 to each count) is
  applied.

They complete the coverage-audit experiment's CI landscape; neither is
used by the paper's evaluation loop.
"""

from __future__ import annotations

import math
from typing import Sequence

from .._validation import check_alpha
from ..estimators.base import Evidence
from .base import Interval, IntervalMethod, critical_value
from .batch import (
    BatchIntervals,
    arcsine_bounds_batch,
    evidence_arrays,
    logit_bounds_batch,
)

__all__ = ["ArcsineInterval", "LogitInterval"]


class ArcsineInterval(IntervalMethod):
    """Arcsine-square-root transformed interval."""

    name = "Arcsine"

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        alpha = check_alpha(alpha)
        z = critical_value(alpha)
        n = evidence.n_effective
        centre = math.asin(math.sqrt(evidence.mu_hat))
        half = z / (2.0 * math.sqrt(n))
        lower = math.sin(max(centre - half, 0.0)) ** 2
        upper = math.sin(min(centre + half, math.pi / 2.0)) ** 2
        return Interval(lower=lower, upper=upper, alpha=alpha, method=self.name)

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        alpha = check_alpha(alpha)
        mu, _, n_eff, _ = evidence_arrays(evidences)
        lower, upper = arcsine_bounds_batch(mu, n_eff, alpha)
        return BatchIntervals(lower=lower, upper=upper, alpha=alpha, method=self.name)


class LogitInterval(IntervalMethod):
    """Wald interval on the log-odds scale, back-transformed."""

    name = "Logit"

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        alpha = check_alpha(alpha)
        z = critical_value(alpha)
        tau = evidence.tau_effective
        n = evidence.n_effective
        failures = n - tau
        if tau <= 0.0 or failures <= 0.0:
            # Anscombe continuity correction for unanimous outcomes.
            tau += 0.5
            failures += 0.5
            n = tau + failures
        centre = math.log(tau / failures)
        spread = z * math.sqrt(n / (tau * failures))
        lower = _expit(centre - spread)
        upper = _expit(centre + spread)
        return Interval(lower=lower, upper=upper, alpha=alpha, method=self.name)

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        alpha = check_alpha(alpha)
        _, _, n_eff, tau_eff = evidence_arrays(evidences)
        lower, upper = logit_bounds_batch(tau_eff, n_eff, alpha)
        return BatchIntervals(lower=lower, upper=upper, alpha=alpha, method=self.name)


def _expit(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)
