"""The Agresti-Coull interval — an extra frequentist baseline.

Not part of the paper's head-to-head, but a standard member of the
binomial-CI family reviewed by Brown, Cai & DasGupta [8] (the paper's
reference for CI construction methods).  It is the "add z^2/2 successes
and z^2/2 failures, then Wald" recipe: a Wald interval computed at the
Wilson centre.  Including it lets the coverage-audit experiment place
Wald / Wilson / credible intervals in the broader CI landscape.
"""

from __future__ import annotations

import math
from typing import Sequence

from .._validation import check_alpha
from ..estimators.base import Evidence
from .base import Interval, IntervalMethod, critical_value
from .batch import BatchIntervals, agresti_coull_bounds_batch, evidence_arrays

__all__ = ["AgrestiCoullInterval"]


class AgrestiCoullInterval(IntervalMethod):
    """Adjusted-Wald interval on the (effective) binomial sample."""

    name = "Agresti-Coull"

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        alpha = check_alpha(alpha)
        z = critical_value(alpha)
        n_adj = evidence.n_effective + z * z
        tau_adj = evidence.tau_effective + z * z / 2.0
        centre = tau_adj / n_adj
        half_width = z * math.sqrt(centre * (1.0 - centre) / n_adj)
        return Interval(
            lower=centre - half_width,
            upper=centre + half_width,
            alpha=alpha,
            method=self.name,
        )

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        alpha = check_alpha(alpha)
        _, _, n_eff, tau_eff = evidence_arrays(evidences)
        lower, upper = agresti_coull_bounds_batch(tau_eff, n_eff, alpha)
        return BatchIntervals(lower=lower, upper=upper, alpha=alpha, method=self.name)
