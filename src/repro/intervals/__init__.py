"""Interval estimation: frequentist CIs and Bayesian CrIs.

The paper's cast:

* :class:`WaldInterval` — efficient but unreliable baseline (Sec. 3.1);
* :class:`WilsonInterval` — the frequentist state of the art (Sec. 3.2);
* :class:`ETCredibleInterval` — equal-tailed credible interval (Sec. 4.2);
* :class:`HPDCredibleInterval` — highest posterior density (Sec. 4.3);
* :class:`AdaptiveHPD` — the paper's aHPD contribution (Sec. 4.5).

Plus two extra CI baselines (Agresti-Coull, Clopper-Pearson) from the
binomial-interval literature the paper builds on [8].

Every method also implements ``compute_batch``, backed by the
vectorised batch engine in :mod:`repro.intervals.batch`, which solves
whole arrays of evidences (or Beta posteriors) in one call — the hot
path of the Monte-Carlo experiments.  Two further layers accelerate
that path without touching results: a pluggable solver kernel
(:mod:`repro.intervals.kernels` — the NumPy reference or a
JIT-compiled native variant, selected by ``REPRO_KERNEL``) and a
precomputed small-n solve table (:mod:`repro.intervals.table`) that
turns repeat integer-count solves into memory-mapped lookups.
"""

from .agresti_coull import AgrestiCoullInterval
from .ahpd import AdaptiveHPD
from .base import (
    Interval,
    IntervalMethod,
    active_solve_pool,
    active_solve_table,
    critical_value,
    use_solve_pool,
    use_solve_table,
)
from .batch import (
    BatchIntervals,
    compute_batch_pooled,
    et_bounds_batch,
    hpd_bounds_batch,
)
from .kernels import (
    KERNEL_NAMES,
    active_kernel,
    get_kernel,
    kernel_status,
    native_available,
    use_kernel,
)
from .payloads import build_method_from_payload, method_payload
from .table import SolveTable, default_table, shared_table
from .clopper_pearson import ClopperPearsonInterval
from .et import ETCredibleInterval, et_bounds
from .transforms import ArcsineInterval, LogitInterval
from .hpd import HPD_SOLVERS, HPDCredibleInterval, hpd_bounds
from .posterior import BetaPosterior, PosteriorShape
from .priors import JEFFREYS, KERMAN, UNIFORM, UNINFORMATIVE_PRIORS, BetaPrior
from .wald import WaldInterval
from .wilson import WilsonInterval

__all__ = [
    "Interval",
    "IntervalMethod",
    "BatchIntervals",
    "KERNEL_NAMES",
    "SolveTable",
    "active_kernel",
    "active_solve_pool",
    "active_solve_table",
    "build_method_from_payload",
    "compute_batch_pooled",
    "critical_value",
    "default_table",
    "get_kernel",
    "kernel_status",
    "method_payload",
    "native_available",
    "shared_table",
    "use_kernel",
    "use_solve_pool",
    "use_solve_table",
    "WaldInterval",
    "WilsonInterval",
    "AgrestiCoullInterval",
    "ClopperPearsonInterval",
    "ArcsineInterval",
    "LogitInterval",
    "BetaPrior",
    "KERMAN",
    "JEFFREYS",
    "UNIFORM",
    "UNINFORMATIVE_PRIORS",
    "BetaPosterior",
    "PosteriorShape",
    "ETCredibleInterval",
    "et_bounds",
    "et_bounds_batch",
    "HPDCredibleInterval",
    "hpd_bounds",
    "hpd_bounds_batch",
    "HPD_SOLVERS",
    "AdaptiveHPD",
]
