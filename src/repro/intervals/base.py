"""Interval value type and the method interface.

All six interval families (Wald, Wilson, Agresti-Coull,
Clopper-Pearson, ET, HPD — plus the adaptive aHPD selector) implement
:class:`IntervalMethod`: given the design-aware
:class:`~repro.estimators.base.Evidence` of an annotated sample and a
significance level ``alpha``, produce a ``1 - alpha``
:class:`Interval`.  The evaluation framework only ever talks to this
interface, which is what lets credible and confidence intervals compete
inside the same minimisation loop.
"""

from __future__ import annotations

import contextvars
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from scipy import special

from .._validation import check_alpha
from ..estimators.base import Evidence
from ..exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .batch import BatchIntervals

__all__ = [
    "Interval",
    "IntervalMethod",
    "active_solve_pool",
    "active_solve_table",
    "critical_value",
    "use_solve_pool",
    "use_solve_table",
]

#: The ambient solve pool, if any.  A pool is an object with a
#: ``solve(method, evidences, alpha) -> BatchIntervals`` method that may
#: coalesce solves from several callers into one vectorised
#: ``compute_batch`` call (see :mod:`repro.runtime.solvebatch`).  Kept
#: as a context variable so concurrently-executing requests (service
#: threads) each control their own routing without touching the others.
_SOLVE_POOL: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "repro-solve-pool", default=None
)


def active_solve_pool() -> Any | None:
    """The solve pool :meth:`IntervalMethod.solve_batch` routes through,
    or ``None`` when solves run directly."""
    return _SOLVE_POOL.get()


@contextmanager
def use_solve_pool(pool: Any) -> Iterator[Any]:
    """Install *pool* as the ambient solve pool for the calling context.

    Everything under the ``with`` block that solves intervals through
    :meth:`IntervalMethod.solve_batch` hands its work to *pool* instead
    of computing directly.  ``None`` is allowed and is a no-op install
    (useful for unconditional ``with`` statements).  Pools never change
    results — only who executes the vectorised solve.
    """
    token = _SOLVE_POOL.set(pool)
    try:
        yield pool
    finally:
        _SOLVE_POOL.reset(token)


#: The ambient small-n solve table, if any.  A table is an object with
#: a ``serve(method, evidences, alpha, build=...) -> BatchIntervals |
#: None`` method that short-circuits solves over integer-count
#: evidences by slicing a precomputed (method, alpha, n) interval table
#: (see :mod:`repro.intervals.table`).  Like the solve pool, it lives
#: in a context variable so concurrent requests route independently —
#: and like the pool, it changes wall-clock, never numbers.
_SOLVE_TABLE: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "repro-solve-table", default=None
)


def active_solve_table() -> Any | None:
    """The solve table :meth:`IntervalMethod.solve_batch` consults,
    or ``None`` when every solve computes."""
    return _SOLVE_TABLE.get()


@contextmanager
def use_solve_table(table: Any) -> Iterator[Any]:
    """Install *table* as the ambient solve table for the context.

    Everything under the ``with`` block that solves through
    :meth:`IntervalMethod.solve_batch` consults *table* first; solves
    the table cannot serve (non-integer counts, ``n`` above its cap, an
    unencodable method) proceed exactly as before.  ``None`` is a
    no-op install.  Tables are memoisation — served rows are
    bit-identical to freshly solved ones.
    """
    token = _SOLVE_TABLE.set(table)
    try:
        yield table
    finally:
        _SOLVE_TABLE.reset(token)


def critical_value(alpha: float) -> float:
    """Two-sided standard-normal critical value ``z_{alpha/2}``."""
    alpha = check_alpha(alpha)
    return float(special.ndtri(1.0 - alpha / 2.0))


@dataclass(frozen=True)
class Interval:
    """A ``1 - alpha`` interval estimate for the KG accuracy.

    Attributes
    ----------
    lower / upper:
        Interval bounds.  Frequentist intervals may overshoot ``[0, 1]``
        (a documented Wald pathology the paper discusses); use
        :meth:`clipped` for a presentation-safe version.
    alpha:
        The significance level the interval was built for.
    method:
        Human-readable method label (e.g. ``"HPD[Jeffreys]"``).
    """

    lower: float
    upper: float
    alpha: float
    method: str = ""

    def __post_init__(self) -> None:
        check_alpha(self.alpha)
        if not self.lower <= self.upper:
            raise ValidationError(
                f"interval bounds out of order: ({self.lower}, {self.upper})"
            )

    @property
    def width(self) -> float:
        """Interval width ``upper - lower``."""
        return self.upper - self.lower

    @property
    def moe(self) -> float:
        """Margin of Error — half the interval width (paper Sec. 2.2)."""
        return self.width / 2.0

    @property
    def midpoint(self) -> float:
        """Interval midpoint."""
        return (self.lower + self.upper) / 2.0

    @property
    def confidence(self) -> float:
        """The nominal level ``1 - alpha``."""
        return 1.0 - self.alpha

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the closed interval."""
        return self.lower <= value <= self.upper

    def clipped(self) -> "Interval":
        """The interval intersected with ``[0, 1]``.

        Wald intervals can overshoot the probability domain; clipping is
        presentation-only and never feeds back into the MoE stop rule,
        which must see the raw width to reproduce the paper's behaviour.
        """
        return Interval(
            lower=max(self.lower, 0.0),
            upper=min(self.upper, 1.0),
            alpha=self.alpha,
            method=self.method,
        )

    def __str__(self) -> str:
        label = f"{self.method} " if self.method else ""
        return f"{label}[{self.lower:.4f}, {self.upper:.4f}] (1-alpha={self.confidence:.2f})"


class IntervalMethod(ABC):
    """Builds ``1 - alpha`` intervals from sample evidence."""

    #: Method label used in reports and on produced intervals.
    name: str = "abstract"

    @abstractmethod
    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        """Build the ``1 - alpha`` interval for *evidence*."""

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> "BatchIntervals":
        """Build one interval per evidence, as a struct-of-arrays batch.

        The default is a per-element :meth:`compute` loop, so any
        subclass is batch-correct for free; every built-in method
        overrides it with the vectorised engine in
        :mod:`repro.intervals.batch`.  Results agree with the scalar
        path to ~1e-8 element-wise.
        """
        from .batch import BatchIntervals

        alpha = check_alpha(alpha)
        return BatchIntervals.from_intervals(
            (self.compute(evidence, alpha) for evidence in evidences),
            alpha=alpha,
            method=self.name,
        )

    def solve_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> "BatchIntervals":
        """The canonical batch-solve entry point for evaluation loops.

        Identical to :meth:`compute_batch` when no solve pool or table
        is installed; under :func:`use_solve_pool` the work is handed to
        the ambient pool, which may pool it with other callers' pending
        solves and flush them as one vectorised call.  Under
        :func:`use_solve_table` the ambient table is consulted first —
        integer-count evidences below the table's ``n`` cap are served
        from the precomputed (method, alpha, n) table without solving.
        Because every built-in batch kernel is row-independent, a
        pooled slice or a table slice is bit-identical to a direct
        :meth:`compute_batch` — routing changes wall-clock, never
        numbers.
        """
        pool = _SOLVE_POOL.get()
        table = _SOLVE_TABLE.get()
        if table is not None:
            # With a pool installed, only already-built tables may
            # short-circuit here (build=False): a cold build would
            # serialise callers behind table construction, whereas the
            # broker's flush builds once for every pooled caller.
            served = table.serve(self, evidences, alpha, build=pool is None)
            if served is not None:
                return served
        if pool is None:
            return self.compute_batch(evidences, alpha)
        return pool.solve(self, evidences, alpha)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
