"""The Beta posterior over KG accuracy (paper Sec. 4.1).

Conjugacy makes the update arithmetic: a prior ``Beta(a, b)`` and an
annotation outcome of ``tau`` correct out of ``n`` yield the posterior
``Beta(a + tau, b + n - tau)``.  Under complex sampling designs the
*effective* counts (design-effect corrected) play the role of ``tau``
and ``n`` (Algorithm 1, lines 11-14).

:class:`BetaPosterior` also classifies its own shape, which is what the
HPD solver dispatches on:

* ``interior`` — unimodal with an interior mode (``a, b > 1``);
* ``decreasing`` — highest density at 0 (``a <= 1 < b``; limiting case
  Eq. 11);
* ``increasing`` — highest density at 1 (``a > 1 >= b``; limiting case
  Eq. 10);
* ``flat`` — the uniform posterior (``a == b == 1``);
* ``bathtub`` — U-shaped (``a, b < 1``; only reachable with no data).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..estimators.base import Evidence
from ..exceptions import ValidationError
from ..stats.beta import (
    beta_cdf,
    beta_interval_mass,
    beta_mean,
    beta_mode,
    beta_pdf,
    beta_ppf,
    beta_skewness,
    beta_std,
)
from .priors import BetaPrior

__all__ = ["PosteriorShape", "BetaPosterior"]


class PosteriorShape(Enum):
    """Qualitative shape of a Beta density (drives HPD dispatch)."""

    INTERIOR = "interior"
    DECREASING = "decreasing"
    INCREASING = "increasing"
    FLAT = "flat"
    BATHTUB = "bathtub"


@dataclass(frozen=True)
class BetaPosterior:
    """An updated ``Beta(a, b)`` belief over the KG accuracy.

    Construct via :meth:`from_counts` or :meth:`from_evidence` rather
    than directly, so the conjugate-update arithmetic stays in one
    place.
    """

    a: float
    b: float
    prior: BetaPrior

    def __post_init__(self) -> None:
        if self.a <= 0.0 or self.b <= 0.0:
            raise ValidationError(
                f"posterior shapes must be positive, got Beta({self.a}, {self.b})"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_counts(cls, prior: BetaPrior, tau: float, n: float) -> "BetaPosterior":
        """Posterior after observing *tau* correct out of *n* triples.

        Counts may be fractional (effective counts under a complex
        design).
        """
        if n < 0 or not 0.0 <= tau <= n + 1e-9:
            raise ValidationError(
                f"invalid annotation outcome: tau={tau}, n={n}"
            )
        tau = min(max(tau, 0.0), n)
        return cls(a=prior.a + tau, b=prior.b + (n - tau), prior=prior)

    @classmethod
    def from_evidence(cls, prior: BetaPrior, evidence: Evidence) -> "BetaPosterior":
        """Posterior from design-aware sample evidence."""
        return cls.from_counts(prior, evidence.tau_effective, evidence.n_effective)

    # ------------------------------------------------------------------
    # Distribution functions
    # ------------------------------------------------------------------

    def pdf(self, x):
        """Posterior density at *x* (vectorised)."""
        return beta_pdf(x, self.a, self.b)

    def cdf(self, x):
        """Posterior CDF ``F(x | G_S)`` (vectorised)."""
        return beta_cdf(x, self.a, self.b)

    def ppf(self, q):
        """Posterior quantile function (vectorised)."""
        return beta_ppf(q, self.a, self.b)

    def interval_mass(self, lower: float, upper: float) -> float:
        """Posterior probability of ``[lower, upper]``."""
        return beta_interval_mass(lower, upper, self.a, self.b)

    # ------------------------------------------------------------------
    # Moments and shape
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Posterior mean."""
        return beta_mean(self.a, self.b)

    @property
    def std(self) -> float:
        """Posterior standard deviation."""
        return beta_std(self.a, self.b)

    @property
    def mode(self) -> float:
        """Posterior mode (see :func:`repro.stats.beta.beta_mode`)."""
        return beta_mode(self.a, self.b)

    @property
    def skewness(self) -> float:
        """Posterior skewness; negative for accurate KGs (left tail)."""
        return beta_skewness(self.a, self.b)

    @property
    def is_symmetric(self) -> bool:
        """Whether the posterior is symmetric about 1/2 (``a == b``)."""
        return self.a == self.b

    @property
    def shape(self) -> PosteriorShape:
        """Qualitative shape classification (drives HPD dispatch)."""
        a_gt1, b_gt1 = self.a > 1.0, self.b > 1.0
        if a_gt1 and b_gt1:
            return PosteriorShape.INTERIOR
        if a_gt1 and not b_gt1:
            return PosteriorShape.INCREASING
        if b_gt1 and not a_gt1:
            return PosteriorShape.DECREASING
        if self.a == 1.0 and self.b == 1.0:
            return PosteriorShape.FLAT
        return PosteriorShape.BATHTUB

    def __str__(self) -> str:
        return f"Beta({self.a:g}, {self.b:g}) [prior={self.prior.name}]"
