"""Highest Posterior Density credible intervals (paper Sec. 4.3).

The ``1 - alpha`` HPD interval is the *shortest* interval carrying
``1 - alpha`` posterior mass, and every point inside it has higher
density than any point outside (Theorems 1-2: minimal and unique for
unimodal posteriors; Corollaries 1-2 extend both properties to the
monotone limiting cases).

Shape dispatch
--------------

* **interior** (``a, b > 1``): constrained optimisation.  The paper uses
  SLSQP on the Lagrangian ``(u - l) + lambda (F(u) - F(l) - (1-alpha))``
  with the ET interval as the initial guess; that solver is implemented
  here verbatim (``solver="slsqp"``).  Two alternatives are provided:
  a damped Newton iteration on the optimality system ``f(l) = f(u)``,
  ``F(u) - F(l) = 1 - alpha`` (``solver="newton"``, ~10x faster, used as
  the default in the hot Monte-Carlo loops) and a bounded scalar
  minimisation of ``w(l) = F^{-1}(F(l) + 1 - alpha) - l``
  (``solver="scalar"``, the robust fallback).  The ablation benchmark
  confirms all three agree to ~1e-8.
* **increasing** (``tau = n`` under an uninformative prior — Eq. 10):
  ``[qBeta(alpha), 1]``.
* **decreasing** (``tau = 0`` — Eq. 11): ``[0, qBeta(1 - alpha)]``.
* **flat** (uniform posterior): every width-``(1-alpha)`` interval is
  an HPD; the central one is returned as the canonical choice.
* **bathtub** (no data, U-shaped prior): the HPD *region* is not an
  interval; an :class:`~repro.exceptions.IntervalError` is raised.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from .._validation import check_alpha
from ..estimators.base import Evidence
from ..exceptions import IntervalError, OptimizationError, ValidationError
from .base import Interval, IntervalMethod
from .batch import (
    _MASS_TOL,
    BatchIntervals,
    evidence_arrays,
    hpd_bounds_batch,
    posterior_shapes_batch,
)
from .et import et_bounds
from .kernels import NEWTON_MAX_ITER as _NEWTON_MAX_ITER
from .posterior import BetaPosterior, PosteriorShape
from .priors import BetaPrior, JEFFREYS

__all__ = ["hpd_bounds", "HPDCredibleInterval", "HPD_SOLVERS"]


def hpd_bounds(
    posterior: BetaPosterior,
    alpha: float,
    solver: str = "newton",
) -> tuple[float, float]:
    """Compute the ``1 - alpha`` HPD bounds of a Beta posterior.

    Parameters
    ----------
    posterior:
        The Beta posterior to summarise.
    alpha:
        Significance level in ``(0, 1)``.
    solver:
        ``"slsqp"`` (the paper's optimizer), ``"newton"`` (fast
        optimality-system iteration; default), or ``"scalar"``
        (bounded width minimisation; most robust).  All agree to within
        ~1e-8 on interior posteriors; monotone/flat shapes are closed
        form and ignore the solver choice.
    """
    alpha = check_alpha(alpha)
    if solver not in HPD_SOLVERS:
        known = ", ".join(sorted(HPD_SOLVERS))
        raise ValidationError(f"unknown HPD solver {solver!r}; expected one of: {known}")

    shape = posterior.shape
    if shape is PosteriorShape.INCREASING:
        # Limiting case Eq. (10): exponentially increasing posterior.
        return float(posterior.ppf(alpha)), 1.0
    if shape is PosteriorShape.DECREASING:
        # Limiting case Eq. (11): exponentially decreasing posterior.
        return 0.0, float(posterior.ppf(1.0 - alpha))
    if shape is PosteriorShape.FLAT:
        # Uniform posterior: all width-(1-alpha) intervals are HPD; the
        # central one is canonical (and coincides with ET).
        return alpha / 2.0, 1.0 - alpha / 2.0
    if shape is PosteriorShape.BATHTUB:
        raise IntervalError(
            "the HPD region of a U-shaped posterior is not an interval; "
            "this arises only with no data and a U-shaped prior"
        )

    try:
        lower, upper = HPD_SOLVERS[solver](posterior, alpha)
    except OptimizationError:
        if solver == "scalar":
            raise
        lower, upper = _solve_scalar(posterior, alpha)
        solver = "scalar"
    return _validate_bounds(posterior, alpha, lower, upper, solver)


def _validate_bounds(
    posterior: BetaPosterior,
    alpha: float,
    lower: float,
    upper: float,
    solver: str,
) -> tuple[float, float]:
    """Validate a solver's output, falling back to the scalar solver."""
    ok = (
        0.0 <= lower < upper <= 1.0
        and abs(posterior.interval_mass(lower, upper) - (1.0 - alpha)) <= _MASS_TOL
    )
    if ok:
        return lower, upper
    if solver == "scalar":
        raise OptimizationError(
            f"HPD solve failed for {posterior}: bounds=({lower}, {upper})"
        )
    lower, upper = _solve_scalar(posterior, alpha)
    return _validate_bounds(posterior, alpha, lower, upper, "scalar")


# ----------------------------------------------------------------------
# Solvers (interior-mode posteriors only)
# ----------------------------------------------------------------------


def _solve_slsqp(posterior: BetaPosterior, alpha: float) -> tuple[float, float]:
    """The paper's solver: SLSQP on width with an equality constraint.

    Objective ``u - l``; constraint ``F(u) - F(l) = 1 - alpha``; bounds
    ``[0, 1]`` for both variables; the ET interval as the initial guess
    (Sec. 4.3).  Analytic gradients are supplied for both the objective
    and the constraint (the constraint gradient is the posterior pdf).
    """
    target = 1.0 - alpha
    x0 = np.asarray(et_bounds(posterior, alpha), dtype=float)

    def objective(x: np.ndarray) -> float:
        return x[1] - x[0]

    def objective_jac(x: np.ndarray) -> np.ndarray:
        return np.array([-1.0, 1.0])

    def constraint(x: np.ndarray) -> float:
        return float(posterior.cdf(x[1]) - posterior.cdf(x[0]) - target)

    def constraint_jac(x: np.ndarray) -> np.ndarray:
        return np.array([-float(posterior.pdf(x[0])), float(posterior.pdf(x[1]))])

    result = optimize.minimize(
        objective,
        x0,
        jac=objective_jac,
        method="SLSQP",
        bounds=[(0.0, 1.0), (0.0, 1.0)],
        constraints=[{"type": "eq", "fun": constraint, "jac": constraint_jac}],
        options={"maxiter": 200, "ftol": 1e-12},
    )
    return float(result.x[0]), float(result.x[1])


def _solve_newton(posterior: BetaPosterior, alpha: float) -> tuple[float, float]:
    """Damped Newton iteration on the HPD optimality system.

    Theorem 1's first-order conditions give ``f(l) = f(u)`` together
    with the mass constraint; the 2x2 Jacobian is analytic, so each
    iteration costs four special-function evaluations.  Iterates are
    clamped to ``(0, mode)`` x ``(mode, 1)`` where the system is well
    conditioned.
    """
    target = 1.0 - alpha
    mode = posterior.mode
    a, b = posterior.a, posterior.b
    eps = 1e-12
    if mode <= 2 * eps or mode >= 1.0 - 2 * eps:
        # Mode numerically at a boundary: the two-sided bracketing
        # degenerates; let the scalar fallback handle it.
        raise OptimizationError("posterior mode too close to the boundary for Newton")
    lo, hi = et_bounds(posterior, alpha)
    # Keep iterates strictly on the correct side of the mode and
    # strictly inside (0, 1).
    lower = min(max(lo, eps), mode - eps)
    upper = min(max(min(hi, 1.0 - eps), mode + eps), 1.0 - eps)

    def pdf_derivative(x: float, fx: float) -> float:
        return fx * ((a - 1.0) / x - (b - 1.0) / (1.0 - x))

    for _ in range(_NEWTON_MAX_ITER):
        f_l = float(posterior.pdf(lower))
        f_u = float(posterior.pdf(upper))
        mass = posterior.interval_mass(lower, upper)
        r1 = f_l - f_u
        r2 = mass - target
        if abs(r1) <= 1e-12 * max(f_l, f_u, 1.0) and abs(r2) <= 1e-12:
            break
        j11 = pdf_derivative(lower, f_l)
        j12 = -pdf_derivative(upper, f_u)
        j21 = -f_l
        j22 = f_u
        det = j11 * j22 - j12 * j21
        if det == 0.0 or not math.isfinite(det):
            raise OptimizationError("singular Jacobian in HPD Newton solve")
        step_l = (r1 * j22 - r2 * j12) / det
        step_u = (r2 * j11 - r1 * j21) / det
        # Damp steps so iterates stay on their side of the mode.
        scale = 1.0
        new_l = lower - scale * step_l
        new_u = upper - scale * step_u
        while (new_l <= 0.0 or new_l >= mode or new_u <= mode or new_u >= 1.0) and scale > 1e-6:
            scale *= 0.5
            new_l = lower - scale * step_l
            new_u = upper - scale * step_u
        if scale <= 1e-6:
            raise OptimizationError("HPD Newton solve failed to stay in domain")
        lower, upper = new_l, new_u
    return lower, upper


def _solve_scalar(posterior: BetaPosterior, alpha: float) -> tuple[float, float]:
    """Bounded scalar minimisation of the interval width.

    For a fixed lower bound ``l`` the mass constraint pins the upper
    bound at ``u(l) = F^{-1}(F(l) + 1 - alpha)``; the width ``u(l) - l``
    is unimodal in ``l`` for interior-mode posteriors, so a bounded
    Brent search over ``l in [0, F^{-1}(alpha)]`` finds the optimum.
    """
    target = 1.0 - alpha

    def width(lower: float) -> float:
        mass_low = float(posterior.cdf(lower))
        return float(posterior.ppf(mass_low + target)) - lower

    max_lower = float(posterior.ppf(alpha))
    if max_lower <= 0.0:
        return 0.0, float(posterior.ppf(target))
    result = optimize.minimize_scalar(
        width,
        bounds=(0.0, max_lower),
        method="bounded",
        options={"xatol": 1e-12},
    )
    lower = float(result.x)
    upper = float(posterior.ppf(float(posterior.cdf(lower)) + target))
    return lower, upper


#: Registered interior-mode solvers, keyed by name.
HPD_SOLVERS: dict[str, Callable[[BetaPosterior, float], tuple[float, float]]] = {
    "slsqp": _solve_slsqp,
    "newton": _solve_newton,
    "scalar": _solve_scalar,
}


class HPDCredibleInterval(IntervalMethod):
    """HPD credible interval under a fixed Beta prior.

    Parameters
    ----------
    prior:
        The Beta prior to update; defaults to Jeffreys.
    solver:
        Interior-mode solver name (see :func:`hpd_bounds`).
    """

    def __init__(self, prior: BetaPrior = JEFFREYS, solver: str = "newton"):
        if solver not in HPD_SOLVERS:
            known = ", ".join(sorted(HPD_SOLVERS))
            raise ValidationError(
                f"unknown HPD solver {solver!r}; expected one of: {known}"
            )
        self.prior = prior
        self.solver = solver
        self.name = f"HPD[{prior.name}]"

    def posterior(self, evidence: Evidence) -> BetaPosterior:
        """The posterior this method would build for *evidence*."""
        return BetaPosterior.from_evidence(self.prior, evidence)

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        posterior = self.posterior(evidence)
        lower, upper = hpd_bounds(posterior, alpha, solver=self.solver)
        return Interval(lower=lower, upper=upper, alpha=alpha, method=self.name)

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        """Vectorised HPD solve over all evidences at once.

        Runs the batch damped-Newton engine regardless of the scalar
        ``solver`` choice — all interior solvers agree to ~1e-8, and the
        batch path falls back to the robust scalar solver row-wise.
        """
        alpha = check_alpha(alpha)
        _, _, n_eff, tau_eff = evidence_arrays(evidences)
        a, b = posterior_shapes_batch(self.prior, tau_eff, n_eff)
        lower, upper = hpd_bounds_batch(a, b, alpha)
        return BatchIntervals(lower=lower, upper=upper, alpha=alpha, method=self.name)
