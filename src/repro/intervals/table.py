"""Precomputed small-n interval tables: the memoised solve hot path.

The paper's Monte-Carlo loops draw ``tau ~ Bin(n, mu)`` and solve an
interval per draw — but a ``Bin(n, mu)`` outcome has only ``n + 1``
distinct values, so for any fixed ``(method, alpha, n)`` there are only
``n + 1`` distinct intervals *ever*.  A :class:`SolveTable` computes
that full ``n + 1``-row table once (one vectorised ``compute_batch``
over ``tau = 0 .. n``) and thereafter serves every solve against it by
indexing, which turns the dominant per-rep root-find into a gather.

Because the table rows *are* ``compute_batch`` outputs — built by the
very method instance being served, stored at full float64 — a served
batch is bit-identical to a freshly solved one.  Tables therefore sit
on the same side of the determinism line as the solve pool and the
kernels: they change wall-clock, never numbers, and never participate
in cache identity.

Serving is strict full-hit-or-``None``: a batch is served only when
*every* evidence row is table-eligible (an exact integer-count SRS
outcome with ``1 <= n <= cap`` whose derived columns match
:meth:`~repro.estimators.base.Evidence.from_counts` arithmetic
exactly).  Anything else — effective-sample designs, fractional
counts, out-of-cap ``n``, an unencodable method — falls through to the
normal solve path untouched.

Tables persist as memory-mapped ``.npy`` sidecars under
``<store root>/solvetable/`` (plus a ``.labels.json`` twin for
label-carrying selectors like aHPD), so a warm store serves even the
first solve of a new process without rebuilding.  Sidecars are written
atomically (tmp + ``os.replace``) and are invisible to the result
store itself, which only ever walks ``.pkl`` entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .batch import BatchIntervals, evidence_arrays
from .payloads import method_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..estimators.base import Evidence
    from .base import IntervalMethod

__all__ = [
    "DEFAULT_TABLE_CAP",
    "SolveTable",
    "TABLE_SCHEMA_VERSION",
    "default_table",
    "peek_tables",
    "reset_shared_tables",
    "shared_table",
    "sidecar_summary",
]

#: Bump when the sidecar layout or the digest recipe changes; the
#: version participates in the digest, so old sidecars are simply
#: never looked up again (and a ``cache vacuum`` sweeps them).
TABLE_SCHEMA_VERSION = 1

#: Default ``n`` cap — mirrors ``REPRO_SOLVE_TABLE``'s default.  A full
#: table at the cap is two float64 rows of ``n + 1`` entries (~32 KiB),
#: so even hundreds of (method, alpha, n) combinations stay tiny.
DEFAULT_TABLE_CAP = 2048

#: Subdirectory of the store root holding the ``.npy`` sidecars.
_SIDECAR_DIR = "solvetable"


def _entry_digest(payload: tuple, alpha: float, n: int) -> str:
    """Stable sidecar name for one (payload, alpha, n) table.

    ``repr`` over a primitives-only tuple is stable across processes
    (payloads are part of the cache contract; floats repr losslessly),
    and the schema version inside the tuple retires old layouts.
    """
    key = repr((TABLE_SCHEMA_VERSION, payload, float(alpha), int(n)))
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class SolveTable:
    """Process-wide memo of full (method, alpha, n) interval tables.

    Parameters
    ----------
    root:
        Store root to persist sidecars under (``<root>/solvetable/``),
        or ``None`` for a memory-only table.
    cap:
        Largest ``n`` tables are built for.  ``0`` disables serving
        entirely (every :meth:`serve` returns ``None``).

    Thread-safe: entry lookup/build runs under an internal lock that is
    recreated when the table crosses a ``fork`` (a worker forked while
    another thread held the lock must not inherit it locked).
    """

    def __init__(
        self, root: str | Path | None = None, cap: int = DEFAULT_TABLE_CAP
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.cap = int(cap)
        self._entries: dict[tuple, tuple] = {}
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._hits = 0
        self._misses = 0
        self._ineligible = 0
        self._builds = 0
        self._loads = 0
        self._build_seconds = 0.0
        self._rows_served = 0

    # -- fork safety ---------------------------------------------------

    def _checked_lock(self) -> threading.Lock:
        if os.getpid() != self._pid:
            # Forked child: the inherited lock may be held by a thread
            # that does not exist here.  Entries are plain arrays and
            # survive the fork; only the lock needs recreating.
            self._lock = threading.Lock()
            self._pid = os.getpid()
        return self._lock

    # -- eligibility ---------------------------------------------------

    def _eligible_taus(self, evidences: Sequence["Evidence"]) -> np.ndarray | None:
        """Per-row ``(tau, n)`` index pairs, or ``None`` if any row is not
        an exact integer-count SRS outcome within the cap.

        Eligibility is *exact float equality* of all four evidence
        columns against :meth:`Evidence.from_counts` arithmetic — the
        table stores ``compute_batch`` outputs for from_counts rows, so
        serving anything else (even a row differing in the last ulp of
        ``variance``) could change bits downstream.
        """
        if not evidences:
            return None
        mu, variance, n_eff, tau_eff = evidence_arrays(evidences)
        n_int = np.rint(n_eff)
        tau_int = np.rint(tau_eff)
        ok = (
            (n_eff == n_int)
            & (tau_eff == tau_int)
            & (n_eff >= 1.0)
            & (n_eff <= float(self.cap))
            & (tau_eff >= 0.0)
            & (tau_eff <= n_eff)
        )
        if not ok.all():
            return None
        # Derived columns must match from_counts bit-for-bit.
        n_i = n_int.astype(np.int64)
        tau_i = tau_int.astype(np.int64)
        expected_mu = tau_i / n_i
        if not (
            np.array_equal(mu, expected_mu)
            and np.array_equal(variance, expected_mu * (1.0 - expected_mu) / n_i)
        ):
            return None
        return np.stack([tau_i, n_i], axis=1)

    # -- persistence ---------------------------------------------------

    def _sidecar_paths(self, digest: str) -> tuple[Path, Path] | None:
        if self.root is None:
            return None
        base = self.root / _SIDECAR_DIR
        return base / f"{digest}.npy", base / f"{digest}.labels.json"

    def _load_sidecar(self, payload: tuple, alpha: float, n: int) -> tuple | None:
        paths = self._sidecar_paths(_entry_digest(payload, alpha, n))
        if paths is None:
            return None
        npy_path, labels_path = paths
        try:
            bounds = np.load(npy_path, mmap_mode="r")
        except (OSError, ValueError):
            return None  # absent, unreadable, or not an .npy — rebuild
        if bounds.ndim != 2 or bounds.shape != (2, n + 1):
            return None  # foreign or truncated sidecar: rebuild over it
        labels: tuple[str, ...] | None = None
        if labels_path.exists():
            try:
                raw = json.loads(labels_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                return None
            if not isinstance(raw, list) or len(raw) != n + 1:
                return None
            labels = tuple(str(label) for label in raw)
        return bounds[0], bounds[1], labels

    def _store_sidecar(
        self,
        payload: tuple,
        alpha: float,
        n: int,
        lower: np.ndarray,
        upper: np.ndarray,
        labels: tuple[str, ...] | None,
    ) -> None:
        paths = self._sidecar_paths(_entry_digest(payload, alpha, n))
        if paths is None:
            return
        npy_path, labels_path = paths
        try:
            npy_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = npy_path.with_suffix(f".tmp-{os.getpid()}")
            with open(tmp, "wb") as handle:
                np.save(handle, np.stack([lower, upper]))
            os.replace(tmp, npy_path)
            if labels is not None:
                tmp = labels_path.with_suffix(f".tmp-{os.getpid()}")
                tmp.write_text(json.dumps(list(labels)), encoding="utf-8")
                os.replace(tmp, labels_path)
        except OSError:
            # Persistence is an optimisation; a read-only or full disk
            # must not fail the solve that triggered the build.
            pass

    # -- build / lookup ------------------------------------------------

    def _build_entry(self, method: "IntervalMethod", alpha: float, n: int) -> tuple:
        """Compute the full n+1-row table via a direct ``compute_batch``.

        Never routes back through ``solve_batch`` — a build must not
        consult the table it is populating nor enqueue on a broker.
        """
        from ..estimators.base import Evidence

        start = time.perf_counter()
        grid = [Evidence.from_counts_fast(tau, n) for tau in range(n + 1)]
        batch = method.compute_batch(grid, alpha)
        elapsed = time.perf_counter() - start
        lower = np.ascontiguousarray(batch.lower, dtype=float)
        upper = np.ascontiguousarray(batch.upper, dtype=float)
        labels = batch.labels
        self._builds += 1
        self._build_seconds += elapsed
        return lower, upper, labels

    def _entry_for(
        self,
        payload: tuple,
        method: "IntervalMethod",
        alpha: float,
        n: int,
        build: bool,
    ) -> tuple | None:
        key = (payload, float(alpha), int(n))
        with self._checked_lock():
            entry = self._entries.get(key)
            if entry is not None:
                return entry
            entry = self._load_sidecar(payload, alpha, n)
            if entry is not None:
                self._loads += 1
                self._entries[key] = entry
                return entry
            if not build:
                return None
            lower, upper, labels = self._build_entry(method, alpha, n)
            self._store_sidecar(payload, alpha, n, lower, upper, labels)
            entry = (lower, upper, labels)
            self._entries[key] = entry
            return entry

    # -- the serving API ----------------------------------------------

    def serve(
        self,
        method: "IntervalMethod",
        evidences: Sequence["Evidence"],
        alpha: float,
        build: bool = True,
    ) -> BatchIntervals | None:
        """The table's answer for this solve, or ``None`` to fall through.

        ``None`` means "solve normally" — either the batch is not
        table-eligible, or (with ``build=False``) a needed table does
        not exist yet and building here would serialise pooled callers
        behind construction; the broker's flush builds it instead.

        A non-``None`` return is bit-identical to
        ``method.compute_batch(evidences, alpha)``.
        """
        if self.cap <= 0:
            return None
        payload = method_payload(method)
        if payload is None:
            self._ineligible += 1
            return None
        pairs = self._eligible_taus(evidences)
        if pairs is None:
            self._ineligible += 1
            return None
        entries: dict[int, tuple] = {}
        for n in sorted({int(n) for n in pairs[:, 1]}):
            entry = self._entry_for(payload, method, alpha, n, build)
            if entry is None:
                self._misses += 1
                return None
            entries[n] = entry
        count = pairs.shape[0]
        lower = np.empty(count, dtype=float)
        upper = np.empty(count, dtype=float)
        labelled = any(entry[2] is not None for entry in entries.values())
        labels: list[str] | None = [""] * count if labelled else None
        for n, entry in entries.items():
            rows = np.flatnonzero(pairs[:, 1] == n)
            taus = pairs[rows, 0]
            lower[rows] = np.asarray(entry[0])[taus]
            upper[rows] = np.asarray(entry[1])[taus]
            if labels is not None:
                entry_labels = entry[2]
                for row, tau in zip(rows, taus):
                    labels[row] = (
                        entry_labels[tau] if entry_labels is not None else method.name
                    )
        self._hits += 1
        self._rows_served += count
        return BatchIntervals(
            lower=lower,
            upper=upper,
            alpha=float(alpha),
            method=method.name,
            labels=tuple(labels) if labels is not None else None,
        )

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot for telemetry and service pings."""
        return {
            "cap": self.cap,
            "root": str(self.root) if self.root is not None else None,
            "entries": len(self._entries),
            "hits": self._hits,
            "misses": self._misses,
            "ineligible": self._ineligible,
            "builds": self._builds,
            "sidecar_loads": self._loads,
            "build_seconds": self._build_seconds,
            "rows_served": self._rows_served,
        }

    def __repr__(self) -> str:
        root = str(self.root) if self.root is not None else None
        return f"SolveTable(root={root!r}, cap={self.cap})"


# ----------------------------------------------------------------------
# Process-wide registry
# ----------------------------------------------------------------------

_REGISTRY: dict[tuple[str | None, int], SolveTable] = {}
_REGISTRY_LOCK = threading.Lock()
_REGISTRY_PID = os.getpid()


def _registry_lock() -> threading.Lock:
    global _REGISTRY_LOCK, _REGISTRY_PID
    if os.getpid() != _REGISTRY_PID:
        _REGISTRY_LOCK = threading.Lock()
        _REGISTRY_PID = os.getpid()
    return _REGISTRY_LOCK


def shared_table(
    root: str | Path | None = None, cap: int = DEFAULT_TABLE_CAP
) -> SolveTable:
    """The process-wide :class:`SolveTable` for (*root*, *cap*).

    Runs and service requests sharing a store root share one table, so
    tables built for one run serve every later run in the process.
    """
    key = (str(Path(root).resolve()) if root is not None else None, int(cap))
    with _registry_lock():
        table = _REGISTRY.get(key)
        if table is None:
            table = SolveTable(root=root, cap=cap)
            _REGISTRY[key] = table
        return table


def default_table() -> SolveTable | None:
    """The environment-resolved shared table, or ``None`` when disabled.

    The worker-side install: spawned pool workers and detached spool
    workers have no ambient context, so :func:`~repro.runtime.backends.
    base.run_task` falls back to this — ``REPRO_SOLVE_TABLE`` for the
    cap, ``REPRO_CACHE_DIR`` for sidecar persistence.
    """
    # Deferred: settings is a runtime-layer import leaf, same pattern
    # as kernels.active_kernel — keeps the intervals layer cycle-free.
    from ..runtime.settings import resolve_cache_dir, resolve_solve_table

    cap = resolve_solve_table(None)
    if cap <= 0:
        return None
    return shared_table(resolve_cache_dir(None), cap)


def peek_tables() -> list[dict]:
    """Stats of every registered table (service ping; never creates)."""
    with _registry_lock():
        tables = list(_REGISTRY.values())
    return [table.stats() for table in tables]


def reset_shared_tables() -> None:
    """Forget every registered table (test isolation hook)."""
    with _registry_lock():
        _REGISTRY.clear()


def sidecar_summary(root: str | Path) -> dict:
    """Sidecar inventory under *root* for ``cache info``.

    Returns ``{"path", "entries", "bytes", "rows"}`` where ``entries``
    counts ``.npy`` tables and ``rows`` their summed row counts (read
    from the headers via memory-mapped loads, so this stays cheap even
    for large inventories).
    """
    base = Path(root) / _SIDECAR_DIR
    entries = 0
    total_bytes = 0
    rows = 0
    if base.is_dir():
        for path in sorted(base.iterdir()):
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - raced a sweep
                continue
            total_bytes += size
            if path.suffix != ".npy":
                continue
            entries += 1
            try:
                rows += int(np.load(path, mmap_mode="r").shape[1])
            except (OSError, ValueError, IndexError):
                continue
    return {
        "path": str(base),
        "entries": entries,
        "bytes": total_bytes,
        "rows": rows,
    }
