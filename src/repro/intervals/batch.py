"""Vectorised batch interval engine.

The paper's headline experiments are Monte-Carlo loops that call an
interval solver thousands of times per cell — yet a ``Bin(n, mu)`` draw
has only ``n + 1`` distinct outcomes, and every interval family here is
either a closed form or a two-equation root-find.  This module moves
both observations to array level:

* :class:`BatchIntervals` — a struct-of-arrays interval container that
  mirrors :class:`~repro.intervals.base.Interval` element-wise;
* closed-form batch bounds for Wald, Wilson, Agresti-Coull,
  Clopper-Pearson, arcsine, logit, and ET;
* :func:`hpd_bounds_batch` — a vectorised damped-Newton HPD solver over
  arrays of ``(a, b)`` posterior shape parameters, with the same shape
  dispatch as the scalar :func:`~repro.intervals.hpd.hpd_bounds`
  (interior / increasing / decreasing / flat masks, bathtub rejection)
  and a per-row scalar fallback for the rare non-converged posterior.

Every concrete :class:`~repro.intervals.base.IntervalMethod` overrides
``compute_batch`` to land here; the abstract default falls back to a
per-element ``compute`` loop, so third-party methods stay correct
without opting in.  Batch and scalar paths agree to ~1e-8 (the property
tests in ``tests/test_intervals_batch.py`` enforce this), so consumers
may freely choose whichever shape fits their loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
from scipy import special

from .._validation import check_alpha
from ..exceptions import IntervalError, ValidationError
from ..stats.beta import (
    _beta_cdf_raw,
    _beta_ppf_raw,
    beta_ppf_batch,
)
from .base import Interval, critical_value
from .kernels import active_kernel
from .posterior import BetaPosterior
from .priors import BetaPrior

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..estimators.base import Evidence

__all__ = [
    "BatchIntervals",
    "compute_batch_pooled",
    "evidence_arrays",
    "posterior_shapes_batch",
    "wald_bounds_batch",
    "wilson_bounds_batch",
    "agresti_coull_bounds_batch",
    "clopper_pearson_bounds_batch",
    "arcsine_bounds_batch",
    "logit_bounds_batch",
    "et_bounds_batch",
    "hpd_bounds_batch",
]

#: Acceptable posterior-mass error for a solved HPD interval — shared
#: with the scalar solver in hpd.py (single source of truth; the
#: batch/scalar equivalence depends on the two validations agreeing).
#: The iteration cap lives with the kernels now
#: (:data:`repro.intervals.kernels.NEWTON_MAX_ITER`), imported by the
#: scalar solver in hpd.py directly.
_MASS_TOL = 1e-6
#: Display prior attached to posteriors rebuilt for the scalar fallback.
_FALLBACK_PRIOR = BetaPrior(1.0, 1.0, name="batch-fallback")


@dataclass(frozen=True)
class BatchIntervals:
    """A struct-of-arrays batch of ``1 - alpha`` intervals.

    Element ``i`` corresponds to the ``i``-th evidence (or posterior)
    passed to the producing batch call; ``batch[i]`` materialises it as
    a scalar :class:`~repro.intervals.base.Interval`.  ``labels``
    optionally carries per-element method labels for selectors whose
    scalar path annotates each result (e.g. aHPD's winning prior);
    when absent every element is labelled ``method``.
    """

    lower: np.ndarray
    upper: np.ndarray
    alpha: float
    method: str = ""
    labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        check_alpha(self.alpha)
        lower = np.atleast_1d(np.asarray(self.lower, dtype=float))
        upper = np.atleast_1d(np.asarray(self.upper, dtype=float))
        if lower.shape != upper.shape:
            raise ValidationError(
                f"bound arrays must share a shape, got {lower.shape} vs {upper.shape}"
            )
        # ~(l <= u) also catches NaN rows, matching the scalar Interval.
        if np.any(~(lower <= upper)):
            raise ValidationError("interval bounds out of order (or NaN) in batch")
        if self.labels is not None and len(self.labels) != lower.shape[0]:
            raise ValidationError(
                f"labels length {len(self.labels)} does not match "
                f"batch size {lower.shape[0]}"
            )
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @classmethod
    def from_intervals(
        cls, intervals: Iterable[Interval], alpha: float, method: str = ""
    ) -> "BatchIntervals":
        """Pack scalar intervals into a batch (the loop-fallback path).

        Per-interval method labels are preserved whenever any of them
        differs from *method*, so round-tripping through the batch
        container never loses scalar-path provenance.
        """
        intervals = list(intervals)
        pairs = [(interval.lower, interval.upper) for interval in intervals]
        arr = np.asarray(pairs, dtype=float).reshape(len(pairs), 2)
        labels = tuple(interval.method for interval in intervals)
        return cls(
            lower=arr[:, 0],
            upper=arr[:, 1],
            alpha=alpha,
            method=method,
            labels=None if all(label == method for label in labels) else labels,
        )

    def __len__(self) -> int:
        return int(self.lower.shape[0])

    def __getitem__(self, index: int) -> Interval:
        return Interval(
            lower=float(self.lower[index]),
            upper=float(self.upper[index]),
            alpha=self.alpha,
            method=self.labels[index] if self.labels is not None else self.method,
        )

    def to_intervals(self) -> list[Interval]:
        """Materialise the batch as scalar :class:`Interval` values."""
        return [self[i] for i in range(len(self))]

    @property
    def width(self) -> np.ndarray:
        """Element-wise interval widths ``upper - lower``."""
        return self.upper - self.lower

    @property
    def moe(self) -> np.ndarray:
        """Element-wise margins of error (half widths)."""
        return self.width / 2.0

    @property
    def midpoint(self) -> np.ndarray:
        """Element-wise interval midpoints."""
        return (self.lower + self.upper) / 2.0

    @property
    def confidence(self) -> float:
        """The nominal level ``1 - alpha``."""
        return 1.0 - self.alpha

    def contains(self, value: float) -> np.ndarray:
        """Boolean mask of intervals containing *value* (closed ends)."""
        return (self.lower <= value) & (value <= self.upper)

    def clipped(self) -> "BatchIntervals":
        """The batch intersected with ``[0, 1]`` (presentation only)."""
        return BatchIntervals(
            lower=np.maximum(self.lower, 0.0),
            upper=np.minimum(self.upper, 1.0),
            alpha=self.alpha,
            method=self.method,
            labels=self.labels,
        )


def compute_batch_pooled(
    method, segments: Sequence[Sequence["Evidence"]], alpha: float
) -> list[BatchIntervals]:
    """One vectorised solve over externally pooled evidence segments.

    Flattens *segments* (one per caller), runs a single
    ``method.compute_batch`` over the concatenation, and slices the
    result back into one :class:`BatchIntervals` per segment.  Because
    every batch kernel in this module is row-independent — each row's
    bounds depend only on that row's evidence — the slice a caller gets
    back is bit-identical to the ``compute_batch`` it would have run
    alone.  This is the solving end of the cross-request solve broker
    (:mod:`repro.runtime.solvebatch`): N overlapping requests pay one
    vectorised solve instead of N.
    """
    segments = [tuple(segment) for segment in segments]
    flat = [evidence for segment in segments for evidence in segment]
    batch = method.compute_batch(flat, alpha)
    slices: list[BatchIntervals] = []
    offset = 0
    for segment in segments:
        stop = offset + len(segment)
        labels = None if batch.labels is None else batch.labels[offset:stop]
        if labels and all(label == batch.method for label in labels):
            # Normalise all-default label runs to None, matching what a
            # standalone compute_batch of just this segment produces.
            labels = None
        slices.append(
            BatchIntervals(
                lower=batch.lower[offset:stop].copy(),
                upper=batch.upper[offset:stop].copy(),
                alpha=batch.alpha,
                method=batch.method,
                labels=labels,
            )
        )
        offset = stop
    return slices


def posterior_shapes_batch(
    prior: BetaPrior, tau_eff: np.ndarray, n_eff: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Conjugate-update arithmetic at array level.

    The single batch-side counterpart of
    :meth:`~repro.intervals.posterior.BetaPosterior.from_counts`: the
    same validation (so invalid counts fail identically on both paths)
    followed by the same float-noise clamp of ``tau`` into ``[0, n]``.
    """
    n = np.asarray(n_eff, dtype=float)
    tau = np.asarray(tau_eff, dtype=float)
    if np.any(n < 0.0) or np.any(tau < 0.0) or np.any(tau > n + 1e-9):
        raise ValidationError("invalid annotation outcome in batch (tau, n) arrays")
    tau = np.clip(tau, 0.0, n)
    return prior.a + tau, prior.b + (n - tau)


def evidence_arrays(
    evidences: Sequence["Evidence"],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Columns ``(mu_hat, variance, n_effective, tau_effective)``.

    The shared evidence-to-arrays gather used by every batch override.
    """
    count = len(evidences)
    mu = np.empty(count, dtype=float)
    variance = np.empty(count, dtype=float)
    n_eff = np.empty(count, dtype=float)
    tau_eff = np.empty(count, dtype=float)
    for i, evidence in enumerate(evidences):
        mu[i] = evidence.mu_hat
        variance[i] = evidence.variance
        n_eff[i] = evidence.n_effective
        tau_eff[i] = evidence.tau_effective
    return mu, variance, n_eff, tau_eff


# ----------------------------------------------------------------------
# Closed-form frequentist families
# ----------------------------------------------------------------------


def wald_bounds_batch(
    mu: np.ndarray, variance: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Wald bounds ``mu ± z sqrt(V)``."""
    z = critical_value(alpha)
    half = z * np.sqrt(np.asarray(variance, dtype=float))
    mu = np.asarray(mu, dtype=float)
    return mu - half, mu + half


def wilson_bounds_batch(
    mu: np.ndarray, n_eff: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Wilson score bounds on the (effective) sample."""
    z = critical_value(alpha)
    mu = np.asarray(mu, dtype=float)
    n = np.asarray(n_eff, dtype=float)
    z2_over_n = z * z / n
    denom = 1.0 + z2_over_n
    centre = (mu + z2_over_n / 2.0) / denom
    spread = (z / denom) * np.sqrt(mu * (1.0 - mu) / n + z * z / (4.0 * n * n))
    return np.maximum(centre - spread, 0.0), np.minimum(centre + spread, 1.0)


def agresti_coull_bounds_batch(
    tau_eff: np.ndarray, n_eff: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Agresti-Coull (adjusted-Wald) bounds."""
    z = critical_value(alpha)
    n_adj = np.asarray(n_eff, dtype=float) + z * z
    centre = (np.asarray(tau_eff, dtype=float) + z * z / 2.0) / n_adj
    half = z * np.sqrt(centre * (1.0 - centre) / n_adj)
    return centre - half, centre + half


def clopper_pearson_bounds_batch(
    tau_eff: np.ndarray, n_eff: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Clopper-Pearson tail-inversion bounds."""
    alpha = check_alpha(alpha)
    tau = np.asarray(tau_eff, dtype=float)
    n = np.asarray(n_eff, dtype=float)
    failures = n - tau
    # Guard each bound's Beta shape only where that bound is pinned at
    # the boundary and the betaincinv output is discarded.
    tau_safe = np.where(tau > 0.0, tau, 1.0)
    fail_safe = np.where(failures > 0.0, failures, 1.0)
    lower = np.where(
        tau > 0.0,
        special.betaincinv(tau_safe, failures + 1.0, alpha / 2.0),
        0.0,
    )
    upper = np.where(
        failures > 0.0,
        special.betaincinv(tau + 1.0, fail_safe, 1.0 - alpha / 2.0),
        1.0,
    )
    return np.asarray(lower, dtype=float), np.asarray(upper, dtype=float)


def arcsine_bounds_batch(
    mu: np.ndarray, n_eff: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised arcsine-square-root transformed bounds."""
    z = critical_value(alpha)
    mu = np.asarray(mu, dtype=float)
    n = np.asarray(n_eff, dtype=float)
    centre = np.arcsin(np.sqrt(mu))
    half = z / (2.0 * np.sqrt(n))
    lower = np.sin(np.maximum(centre - half, 0.0)) ** 2
    upper = np.sin(np.minimum(centre + half, np.pi / 2.0)) ** 2
    return lower, upper


def logit_bounds_batch(
    tau_eff: np.ndarray, n_eff: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised logit-scale Wald bounds with Anscombe correction."""
    z = critical_value(alpha)
    tau = np.asarray(tau_eff, dtype=float)
    n = np.asarray(n_eff, dtype=float)
    failures = n - tau
    unanimous = (tau <= 0.0) | (failures <= 0.0)
    tau = np.where(unanimous, tau + 0.5, tau)
    failures = np.where(unanimous, failures + 0.5, failures)
    n = np.where(unanimous, tau + failures, n)
    centre = np.log(tau / failures)
    spread = z * np.sqrt(n / (tau * failures))
    lower = special.expit(centre - spread)
    upper = special.expit(centre + spread)
    return np.asarray(lower, dtype=float), np.asarray(upper, dtype=float)


# ----------------------------------------------------------------------
# Credible families over arrays of Beta posteriors
# ----------------------------------------------------------------------


def et_bounds_batch(
    a: np.ndarray, b: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised equal-tailed bounds of ``Beta(a, b)`` posteriors."""
    alpha = check_alpha(alpha)
    lower = beta_ppf_batch(alpha / 2.0, a, b)
    upper = beta_ppf_batch(1.0 - alpha / 2.0, a, b)
    return lower, upper


def hpd_bounds_batch(
    a: np.ndarray, b: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised ``1 - alpha`` HPD bounds of ``Beta(a, b)`` posteriors.

    Shape dispatch follows the scalar solver exactly: monotone and flat
    posteriors use their closed forms (Eqs. 10-11), U-shaped posteriors
    raise :class:`~repro.exceptions.IntervalError`, and interior-mode
    rows run a damped-Newton iteration on the optimality system
    ``f(l) = f(u)``, ``F(u) - F(l) = 1 - alpha`` — all rows stepped
    together, each with its own feasibility-limited damping.  Rows that
    fail to converge (or fail the posterior-mass validation) are
    re-solved one at a time with the robust scalar solver, so the batch
    result is never worse than the scalar path.
    """
    alpha = check_alpha(alpha)
    a = np.atleast_1d(np.asarray(a, dtype=float))
    b = np.atleast_1d(np.asarray(b, dtype=float))
    a, b = np.broadcast_arrays(a, b)
    a = np.ascontiguousarray(a, dtype=float)
    b = np.ascontiguousarray(b, dtype=float)
    if a.ndim != 1:
        raise ValidationError(f"expected 1-D shape arrays, got shape {a.shape}")
    # Validate once here; the Newton loop below runs on the raw
    # (unvalidated) beta primitives, so this check is its only gate.
    if a.size and (
        not np.all(np.isfinite(a))
        or not np.all(np.isfinite(b))
        or np.any(a <= 0.0)
        or np.any(b <= 0.0)
    ):
        raise ValidationError("posterior shapes must be positive")

    a_gt1, b_gt1 = a > 1.0, b > 1.0
    interior = a_gt1 & b_gt1
    increasing = a_gt1 & ~b_gt1
    decreasing = b_gt1 & ~a_gt1
    flat = (a == 1.0) & (b == 1.0)
    bathtub = ~(interior | increasing | decreasing | flat)
    if bathtub.any():
        raise IntervalError(
            "the HPD region of a U-shaped posterior is not an interval; "
            f"{int(bathtub.sum())} batch row(s) have a, b < 1"
        )

    lower = np.zeros_like(a)
    upper = np.ones_like(a)
    if increasing.any():
        lower[increasing] = _beta_ppf_raw(alpha, a[increasing], b[increasing])
    if decreasing.any():
        upper[decreasing] = _beta_ppf_raw(1.0 - alpha, a[decreasing], b[decreasing])
    if flat.any():
        lower[flat] = alpha / 2.0
        upper[flat] = 1.0 - alpha / 2.0
    if interior.any():
        idx = np.flatnonzero(interior)
        lo, hi = _newton_batch(a[idx], b[idx], alpha)
        lower[idx] = lo
        upper[idx] = hi
    return lower, upper


def _newton_batch(
    a: np.ndarray, b: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Damped-Newton HPD solve over interior-mode posterior rows.

    The iteration itself is pluggable: the ambient
    :class:`~repro.intervals.kernels.SolverKernel` (NumPy oracle or the
    JIT-compiled native kernel, selected by ``REPRO_KERNEL`` /
    ``RunContext.kernel``) produces ``(lower, upper, failed)`` for the
    interior rows; the posterior-mass validation and the per-row
    scalar fallback below stay *here*, shared by every kernel, so a
    kernel only ever has to reproduce the happy path.  The kernels run
    on the raw (validation-free) beta primitives:
    ``hpd_bounds_batch`` validated the shapes already, and
    re-validating four times per iteration was the dominant cost of
    the small batches the memoised evaluator path produces.
    """
    target = 1.0 - alpha
    lower, upper, failed = active_kernel().newton_interior(a, b, alpha)

    # Validate every row exactly as the scalar path does; anything that
    # missed the mass tolerance joins the scalar-fallback set.
    mass = _beta_cdf_raw(upper, a, b) - _beta_cdf_raw(lower, a, b)
    bad = (
        failed
        | ~np.isfinite(lower)
        | ~np.isfinite(upper)
        | (lower < 0.0)
        | (upper > 1.0)
        | (lower >= upper)
        | (np.abs(mass - target) > _MASS_TOL)
    )
    if np.any(bad):
        # Deferred import: hpd.py overrides its compute_batch through
        # this module, so the dependency must stay one-way at load time.
        from .hpd import hpd_bounds

        for i in np.flatnonzero(bad):
            posterior = BetaPosterior(
                a=float(a[i]), b=float(b[i]), prior=_FALLBACK_PRIOR
            )
            lower[i], upper[i] = hpd_bounds(posterior, alpha, solver="scalar")
    return lower, upper
