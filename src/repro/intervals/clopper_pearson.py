"""The Clopper-Pearson "exact" interval — an extra frequentist baseline.

The tail-inversion interval built from Beta quantiles:

.. math::

    l = qBeta(\\alpha / 2;\\ \\tau,\\ n - \\tau + 1), \\qquad
    u = qBeta(1 - \\alpha / 2;\\ \\tau + 1,\\ n - \\tau)

Guaranteed to cover at *at least* the nominal level, at the price of
conservatism (wider intervals, slower convergence).  It completes the
CI family from Brown, Cai & DasGupta [8] for the coverage-audit
experiment and illustrates the efficiency gap that motivates credible
intervals.  Fractional effective counts (from design-effect correction)
are supported because Beta quantiles accept real-valued shapes.
"""

from __future__ import annotations

from typing import Sequence

from .._validation import check_alpha
from ..estimators.base import Evidence
from ..stats.beta import beta_ppf
from .base import Interval, IntervalMethod
from .batch import BatchIntervals, clopper_pearson_bounds_batch, evidence_arrays

__all__ = ["ClopperPearsonInterval"]


class ClopperPearsonInterval(IntervalMethod):
    """Exact tail-inversion interval on the (effective) binomial sample."""

    name = "Clopper-Pearson"

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        alpha = check_alpha(alpha)
        tau = evidence.tau_effective
        n = evidence.n_effective
        failures = n - tau
        lower = 0.0 if tau <= 0.0 else float(beta_ppf(alpha / 2.0, tau, failures + 1.0))
        upper = 1.0 if failures <= 0.0 else float(
            beta_ppf(1.0 - alpha / 2.0, tau + 1.0, failures)
        )
        return Interval(lower=lower, upper=upper, alpha=alpha, method=self.name)

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        alpha = check_alpha(alpha)
        _, _, n_eff, tau_eff = evidence_arrays(evidences)
        lower, upper = clopper_pearson_bounds_batch(tau_eff, n_eff, alpha)
        return BatchIntervals(lower=lower, upper=upper, alpha=alpha, method=self.name)
