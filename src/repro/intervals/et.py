"""Equal-Tailed credible intervals (paper Sec. 4.2, Eq. 9).

The central ``1 - alpha`` region of the posterior — ``alpha/2``
probability in each tail:

.. math::

    l = qBeta(\\alpha/2;\\ a + \\tau, b + n - \\tau), \\qquad
    u = qBeta(1 - \\alpha/2;\\ a + \\tau, b + n - \\tau)

Intuitive, cheap, and optimal for symmetric posteriors (Theorem 3), but
suboptimal for the skewed posteriors typical of real KGs — which is what
HPD intervals fix.
"""

from __future__ import annotations

from typing import Sequence

from .._validation import check_alpha
from ..estimators.base import Evidence
from .base import Interval, IntervalMethod
from .batch import (
    BatchIntervals,
    et_bounds_batch,
    evidence_arrays,
    posterior_shapes_batch,
)
from .posterior import BetaPosterior
from .priors import BetaPrior, JEFFREYS

__all__ = ["ETCredibleInterval", "et_bounds"]


def et_bounds(posterior: BetaPosterior, alpha: float) -> tuple[float, float]:
    """Equal-tailed ``1 - alpha`` bounds of *posterior*."""
    alpha = check_alpha(alpha)
    lower = float(posterior.ppf(alpha / 2.0))
    upper = float(posterior.ppf(1.0 - alpha / 2.0))
    return lower, upper


class ETCredibleInterval(IntervalMethod):
    """Equal-tailed credible interval under a fixed Beta prior.

    Parameters
    ----------
    prior:
        The Beta prior to update; defaults to Jeffreys, the common
        default for binomial proportion problems.
    """

    def __init__(self, prior: BetaPrior = JEFFREYS):
        self.prior = prior
        self.name = f"ET[{prior.name}]"

    def posterior(self, evidence: Evidence) -> BetaPosterior:
        """The posterior this method would build for *evidence*."""
        return BetaPosterior.from_evidence(self.prior, evidence)

    def compute(self, evidence: Evidence, alpha: float) -> Interval:
        posterior = self.posterior(evidence)
        lower, upper = et_bounds(posterior, alpha)
        return Interval(lower=lower, upper=upper, alpha=alpha, method=self.name)

    def compute_batch(
        self, evidences: Sequence[Evidence], alpha: float
    ) -> BatchIntervals:
        alpha = check_alpha(alpha)
        _, _, n_eff, tau_eff = evidence_arrays(evidences)
        a, b = posterior_shapes_batch(self.prior, tau_eff, n_eff)
        lower, upper = et_bounds_batch(a, b, alpha)
        return BatchIntervals(lower=lower, upper=upper, alpha=alpha, method=self.name)
