"""Annotation substrate: label sources, crowds, and the cost model."""

from .annotator import Annotator, NoisyAnnotator, OracleAnnotator
from .cost import DEFAULT_COST_MODEL, AnnotationCost, CostModel
from .ledger import AnnotationLedger, LedgerEntry
from .pool import AnnotatorPool, default_crowd, estimate_worker_quality

__all__ = [
    "Annotator",
    "OracleAnnotator",
    "NoisyAnnotator",
    "AnnotatorPool",
    "estimate_worker_quality",
    "default_crowd",
    "CostModel",
    "AnnotationCost",
    "DEFAULT_COST_MODEL",
    "AnnotationLedger",
    "LedgerEntry",
]
