"""Annotators: the sources of correctness labels.

The paper's experiments replay recorded gold labels (the datasets ship
with crowdsourced annotations); :class:`OracleAnnotator` models exactly
that.  :class:`NoisyAnnotator` adds a configurable error rate so the
multi-annotator aggregation workflow (DBPEDIA's quality-weighted
majority voting, paper Sec. 5) can be exercised end-to-end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from .._validation import check_probability
from ..kg.base import TripleStore
from ..stats.rng import RandomSource, spawn_rng

__all__ = ["Annotator", "OracleAnnotator", "NoisyAnnotator"]


class Annotator(ABC):
    """Produces correctness judgements for triples of a KG."""

    @abstractmethod
    def annotate(
        self,
        kg: TripleStore,
        indices: Sequence[int] | np.ndarray,
        rng: RandomSource = None,
    ) -> np.ndarray:
        """Return a boolean judgement per global triple index."""


class OracleAnnotator(Annotator):
    """Replays the KG's ground-truth labels — a perfect annotator.

    This is the annotator used by all paper-reproduction experiments:
    the evaluation framework pays the (modelled) annotation cost but the
    judgement itself is the recorded gold label.
    """

    def annotate(
        self,
        kg: TripleStore,
        indices: Sequence[int] | np.ndarray,
        rng: RandomSource = None,
    ) -> np.ndarray:
        return kg.labels(indices)

    def __repr__(self) -> str:
        return "OracleAnnotator()"


class NoisyAnnotator(Annotator):
    """An imperfect annotator that flips the gold label with fixed odds.

    Parameters
    ----------
    error_rate:
        Probability of reporting the wrong judgement for a triple.
        ``error_rate = 0`` reduces to :class:`OracleAnnotator`.
    seed:
        Default random source for the flips; an ``rng`` passed to
        :meth:`annotate` takes precedence.
    """

    def __init__(self, error_rate: float, seed: RandomSource = None):
        self.error_rate = check_probability(error_rate, "error_rate")
        self._rng = spawn_rng(seed)

    def annotate(
        self,
        kg: TripleStore,
        indices: Sequence[int] | np.ndarray,
        rng: RandomSource = None,
    ) -> np.ndarray:
        generator = spawn_rng(rng) if rng is not None else self._rng
        truth = kg.labels(indices)
        flips = generator.random(truth.shape) < self.error_rate
        return truth ^ flips

    @property
    def quality(self) -> float:
        """Probability of a correct judgement (``1 - error_rate``)."""
        return 1.0 - self.error_rate

    def __repr__(self) -> str:
        return f"NoisyAnnotator(error_rate={self.error_rate})"
