"""Annotation ledger: a durable record of human judgements.

Real audits are interruptible: annotation happens over days, possibly
across tools, and every judgement is money spent.  The ledger records
each judgement exactly once (re-annotation attempts are idempotent),
attributes entity-identification cost to the first fact of each entity,
and serialises to TSV so an audit can be suspended and resumed.

The evaluation framework accepts an optional ledger and records every
annotated batch into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence, Union

import numpy as np

from ..exceptions import AnnotationError, ValidationError
from .cost import DEFAULT_COST_MODEL, AnnotationCost, CostModel

__all__ = ["LedgerEntry", "AnnotationLedger"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded judgement."""

    triple_index: int
    entity_id: int
    label: bool
    #: Whether this judgement paid the entity-identification cost
    #: (first fact seen for its entity).
    new_entity: bool


class AnnotationLedger:
    """Append-only record of annotation judgements.

    Parameters
    ----------
    cost_model:
        Pricing used for incremental cost attribution.
    """

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL):
        self.cost_model = cost_model
        self._entries: list[LedgerEntry] = []
        self._by_triple: dict[int, int] = {}
        self._entities: set[int] = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, triple_index: int, entity_id: int, label: bool) -> bool:
        """Record one judgement; returns False if already recorded.

        A conflicting re-record (same triple, different label) raises —
        silent label drift would corrupt a resumed audit.
        """
        triple_index = int(triple_index)
        existing = self._by_triple.get(triple_index)
        if existing is not None:
            if self._entries[existing].label != bool(label):
                raise AnnotationError(
                    f"conflicting labels recorded for triple {triple_index}"
                )
            return False
        new_entity = int(entity_id) not in self._entities
        entry = LedgerEntry(
            triple_index=triple_index,
            entity_id=int(entity_id),
            label=bool(label),
            new_entity=new_entity,
        )
        self._by_triple[triple_index] = len(self._entries)
        self._entries.append(entry)
        self._entities.add(int(entity_id))
        return True

    def record_batch(
        self,
        triple_indices: Sequence[int] | np.ndarray,
        entity_ids: Sequence[int] | np.ndarray,
        labels: Sequence[bool] | np.ndarray,
    ) -> int:
        """Record a batch; returns how many entries were new."""
        triple_indices = np.asarray(triple_indices)
        entity_ids = np.asarray(entity_ids)
        labels = np.asarray(labels, dtype=bool)
        if not (triple_indices.shape == entity_ids.shape == labels.shape):
            raise ValidationError("batch arrays must share a shape")
        added = 0
        for t, e, lab in zip(triple_indices, entity_ids, labels):
            added += self.record(int(t), int(e), bool(lab))
        return added

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def num_triples(self) -> int:
        """Distinct annotated triples ``|T_S|``."""
        return len(self._entries)

    @property
    def num_entities(self) -> int:
        """Distinct identified entities ``|E_S|``."""
        return len(self._entities)

    @property
    def num_correct(self) -> int:
        """Judgements marked correct."""
        return sum(entry.label for entry in self._entries)

    @property
    def cost(self) -> AnnotationCost:
        """Total priced effort under the ledger's cost model."""
        return self.cost_model.price(self.num_entities, self.num_triples)

    def has_triple(self, triple_index: int) -> bool:
        """Whether a triple is already annotated."""
        return int(triple_index) in self._by_triple

    def label_of(self, triple_index: int) -> bool:
        """The recorded judgement for a triple."""
        position = self._by_triple.get(int(triple_index))
        if position is None:
            raise AnnotationError(f"triple {triple_index} is not in the ledger")
        return self._entries[position].label

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_tsv(self, path: PathLike) -> Path:
        """Write the ledger to a TSV file (suspend)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            handle.write("# triple_index\tentity_id\tlabel\n")
            for entry in self._entries:
                handle.write(
                    f"{entry.triple_index}\t{entry.entity_id}\t{int(entry.label)}\n"
                )
        return path

    @classmethod
    def from_tsv(
        cls, path: PathLike, cost_model: CostModel = DEFAULT_COST_MODEL
    ) -> "AnnotationLedger":
        """Load a ledger written by :meth:`to_tsv` (resume)."""
        path = Path(path)
        ledger = cls(cost_model=cost_model)
        with path.open("r", encoding="utf-8") as handle:
            for line_no, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split("\t")
                if len(parts) != 3 or parts[2] not in ("0", "1"):
                    raise ValidationError(f"{path}:{line_no}: malformed ledger line")
                ledger.record(int(parts[0]), int(parts[1]), parts[2] == "1")
        return ledger

    def __repr__(self) -> str:
        return (
            f"AnnotationLedger(triples={self.num_triples}, "
            f"entities={self.num_entities}, cost={self.cost.hours:.2f}h)"
        )
