"""Multi-annotator aggregation.

The DBPEDIA dataset in the paper was labelled by at least three layman
workers per fact, aggregated with *quality-weighted majority voting*
where each worker's quality was measured on an expert-supervised pool
(Sec. 5).  :class:`AnnotatorPool` reproduces that workflow: several
:class:`~repro.annotation.annotator.Annotator` instances vote on every
triple and the votes are combined by (optionally weighted) majority.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_not_empty
from ..exceptions import ValidationError
from ..kg.base import TripleStore
from ..stats.rng import RandomSource, spawn_rng
from .annotator import Annotator, NoisyAnnotator, OracleAnnotator

__all__ = ["AnnotatorPool", "estimate_worker_quality"]


class AnnotatorPool(Annotator):
    """Aggregates several annotators by weighted majority vote.

    Parameters
    ----------
    annotators:
        The voting workers; at least one required.
    weights:
        Optional per-worker vote weights (e.g. estimated worker
        quality).  Defaults to equal weights.  Ties break toward
        *correct*, matching the benefit-of-the-doubt convention used by
        crowdsourcing pipelines.
    """

    def __init__(
        self,
        annotators: Sequence[Annotator],
        weights: Sequence[float] | None = None,
    ):
        annotators = check_not_empty(list(annotators), "annotators")
        for worker in annotators:
            if not isinstance(worker, Annotator):
                raise ValidationError(
                    f"expected Annotator instances, got {type(worker)!r}"
                )
        self.annotators: tuple[Annotator, ...] = tuple(annotators)
        if weights is None:
            weight_arr = np.ones(len(self.annotators), dtype=float)
        else:
            weight_arr = np.asarray(list(weights), dtype=float)
            if weight_arr.shape != (len(self.annotators),):
                raise ValidationError(
                    f"expected {len(self.annotators)} weights, got {weight_arr.size}"
                )
            if np.any(weight_arr < 0) or not np.any(weight_arr > 0):
                raise ValidationError("weights must be non-negative with a positive sum")
        self.weights = weight_arr

    def annotate(
        self,
        kg: TripleStore,
        indices: Sequence[int] | np.ndarray,
        rng: RandomSource = None,
    ) -> np.ndarray:
        generator = spawn_rng(rng)
        votes = np.stack(
            [worker.annotate(kg, indices, rng=generator) for worker in self.annotators]
        ).astype(float)
        support_correct = self.weights @ votes
        return support_correct >= 0.5 * self.weights.sum()

    def __len__(self) -> int:
        return len(self.annotators)

    def __repr__(self) -> str:
        return f"AnnotatorPool(num_annotators={len(self.annotators)})"


def estimate_worker_quality(
    worker: Annotator,
    kg: TripleStore,
    gold_indices: Sequence[int] | np.ndarray,
    rng: RandomSource = None,
) -> float:
    """Estimate a worker's quality on an expert-supervised gold pool.

    Mirrors the paper's DBPEDIA annotation protocol: worker judgements
    on *gold_indices* are compared against ground truth; the agreement
    rate is the quality weight to use in :class:`AnnotatorPool`.
    """
    gold_indices = np.asarray(gold_indices, dtype=np.int64)
    if gold_indices.size == 0:
        raise ValidationError("gold_indices must not be empty")
    oracle = OracleAnnotator()
    truth = oracle.annotate(kg, gold_indices)
    judged = worker.annotate(kg, gold_indices, rng=rng)
    return float(np.mean(judged == truth))


def default_crowd(
    error_rates: Sequence[float] = (0.05, 0.10, 0.15),
    seed: RandomSource = None,
) -> AnnotatorPool:
    """A convenience 3-worker noisy crowd with plausible error rates."""
    rng = spawn_rng(seed)
    workers = [
        NoisyAnnotator(rate, seed=rng) for rate in error_rates
    ]
    return AnnotatorPool(workers)
