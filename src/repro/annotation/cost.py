"""The annotation cost model (paper Eq. 12).

Manual fact checking decomposes into *entity identification* (linking
the subject to its real-world concept; paid once per distinct entity in
the sample) and *fact verification* (paid once per triple):

.. math::

    cost(G_S) = |E_S| \\cdot c_1 + |T_S| \\cdot c_2

with the paper's defaults ``c1 = 45`` and ``c2 = 25`` seconds, following
Gao et al. [14].  Costs are reported in hours in the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_non_negative, check_non_negative_int

__all__ = ["CostModel", "AnnotationCost", "DEFAULT_COST_MODEL"]

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class AnnotationCost:
    """A priced annotation effort.

    Attributes
    ----------
    num_entities:
        Distinct entities identified (``|E_S|``).
    num_triples:
        Triples verified (``|T_S|``).
    seconds:
        Total modelled cost in seconds.
    """

    num_entities: int
    num_triples: int
    seconds: float

    @property
    def hours(self) -> float:
        """Cost in hours — the unit used by the paper's tables."""
        return self.seconds / _SECONDS_PER_HOUR

    def __add__(self, other: "AnnotationCost") -> "AnnotationCost":
        return AnnotationCost(
            num_entities=self.num_entities + other.num_entities,
            num_triples=self.num_triples + other.num_triples,
            seconds=self.seconds + other.seconds,
        )


@dataclass(frozen=True)
class CostModel:
    """Annotation cost parameters.

    Attributes
    ----------
    entity_cost:
        ``c1`` — average seconds to identify one entity (default 45).
    triple_cost:
        ``c2`` — average seconds to verify one fact (default 25).
    annotators_per_fact:
        Multiplier for multi-annotator processes (Sec. 6.5 notes 3-5
        annotators per fact in real deployments); defaults to 1 to match
        the paper's reported numbers.
    """

    entity_cost: float = 45.0
    triple_cost: float = 25.0
    annotators_per_fact: int = 1

    def __post_init__(self) -> None:
        check_non_negative(self.entity_cost, "entity_cost")
        check_non_negative(self.triple_cost, "triple_cost")
        check_non_negative_int(self.annotators_per_fact, "annotators_per_fact")

    def price(self, num_entities: int, num_triples: int) -> AnnotationCost:
        """Price an effort of *num_entities* / *num_triples* units."""
        num_entities = check_non_negative_int(num_entities, "num_entities")
        num_triples = check_non_negative_int(num_triples, "num_triples")
        seconds = self.annotators_per_fact * (
            num_entities * self.entity_cost + num_triples * self.triple_cost
        )
        return AnnotationCost(
            num_entities=num_entities, num_triples=num_triples, seconds=seconds
        )

    def seconds(self, num_entities: int, num_triples: int) -> float:
        """Shortcut for ``price(...).seconds``."""
        return self.price(num_entities, num_triples).seconds

    def hours(self, num_entities: int, num_triples: int) -> float:
        """Shortcut for ``price(...).hours``."""
        return self.price(num_entities, num_triples).hours


#: The paper's cost model: c1 = 45s, c2 = 25s, one annotator per fact.
DEFAULT_COST_MODEL = CostModel()
