"""Monte-Carlo study harness.

The paper repeats every (dataset, strategy, interval) configuration
1,000 times and reports ``mean ± std`` of the annotated triples and the
annotation cost.  :func:`run_study` reproduces that protocol with
deterministic per-repetition seeding, so any row of any table can be
regenerated bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_rep_range
from ..stats.describe import Summary, summarize
from ..stats.rng import derive_seed, spawn_rng
from .framework import EvaluationResult, KGAccuracyEvaluator

__all__ = ["StudyResult", "run_study"]


@dataclass(frozen=True)
class StudyResult:
    """Aggregated outcomes of repeated evaluation runs.

    Raw per-repetition arrays are retained so that significance tests
    (paper's t-tests) can run on exactly the numbers behind the
    summaries.
    """

    label: str
    triples: np.ndarray
    cost_hours: np.ndarray
    estimates: np.ndarray
    entities: np.ndarray
    converged: np.ndarray

    @property
    def repetitions(self) -> int:
        """Number of evaluation runs aggregated."""
        return int(self.triples.size)

    @property
    def triples_summary(self) -> Summary:
        """``mean ± std`` of annotated triples (paper "Triples")."""
        return summarize(self.triples)

    @property
    def cost_summary(self) -> Summary:
        """``mean ± std`` of annotation cost in hours (paper "Cost")."""
        return summarize(self.cost_hours)

    @property
    def estimate_summary(self) -> Summary:
        """``mean ± std`` of the accuracy estimates."""
        return summarize(self.estimates)

    @property
    def convergence_rate(self) -> float:
        """Fraction of runs that met the MoE threshold within budget."""
        return float(self.converged.mean())

    def estimate_bias(self, true_mu: float) -> float:
        """Mean deviation of the estimates from the true accuracy."""
        return float(self.estimates.mean() - true_mu)

    def __str__(self) -> str:
        return (
            f"{self.label}: triples={self.triples_summary.format(0)}, "
            f"cost={self.cost_summary.format(2)}h over {self.repetitions} reps"
        )


def run_study(
    evaluator: KGAccuracyEvaluator,
    repetitions: int = 1_000,
    seed: int = 0,
    label: str = "",
    rep_range: tuple[int, int] | None = None,
) -> StudyResult:
    """Repeat *evaluator* runs with independent derived seeds.

    Parameters
    ----------
    evaluator:
        The configured evaluation; its state is rebuilt per run.
    repetitions:
        Number of independent runs (paper uses 1,000).
    seed:
        Base seed; repetition ``i`` runs on ``derive_seed(seed, i)``.
    label:
        Display label stored on the result.
    rep_range:
        Optional half-open ``(start, stop)`` window of repetitions to
        execute.  Per-repetition seeds stay keyed on the *global*
        repetition index, so the windows of any partition concatenate to
        exactly the full run — the contract repetition sharding builds
        on.
    """
    repetitions = check_positive_int(repetitions, "repetitions")
    start, stop = check_rep_range(rep_range, repetitions)
    count = stop - start
    triples = np.empty(count, dtype=np.int64)
    cost_hours = np.empty(count, dtype=float)
    estimates = np.empty(count, dtype=float)
    entities = np.empty(count, dtype=np.int64)
    converged = np.empty(count, dtype=bool)
    for slot, i in enumerate(range(start, stop)):
        rng = spawn_rng(derive_seed(seed, i))
        result: EvaluationResult = evaluator.run(rng=rng)
        triples[slot] = result.n_triples
        cost_hours[slot] = result.cost_hours
        estimates[slot] = result.mu_hat
        entities[slot] = result.n_entities
        converged[slot] = result.converged
    if not label:
        label = f"{evaluator.strategy.name}/{evaluator.method.name}"
    return StudyResult(
        label=label,
        triples=triples,
        cost_hours=cost_hours,
        estimates=estimates,
        entities=entities,
        converged=converged,
    )
