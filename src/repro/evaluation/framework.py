"""The iterative KG accuracy evaluation framework (paper Fig. 1).

One evaluation run loops through the paper's four phases:

1. **sample** a batch of units via the chosen sampling strategy;
2. **annotate** the batch (oracle or noisy annotators);
3. **estimate** the accuracy and build the ``1 - alpha`` interval;
4. **quality-control**: stop as soon as ``MoE <= epsilon``.

Conventions the paper leaves implicit (calibrated against its Example 1,
where a Wald evaluation of NELL halts at exactly ``n = 30``):

* a minimum of 30 annotated triples before the stop rule is consulted
  (and at least ``strategy.min_units`` units, so the TWCS variance is
  defined);
* one unit per iteration afterwards — a triple for SRS, a cluster for
  TWCS — so halting sizes like 32 are representable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .._validation import check_alpha, check_positive, check_positive_int
from ..annotation.annotator import Annotator, OracleAnnotator
from ..annotation.cost import DEFAULT_COST_MODEL, AnnotationCost, CostModel
from ..annotation.ledger import AnnotationLedger
from ..exceptions import ConvergenceError, ValidationError
from ..intervals.base import Interval, IntervalMethod
from ..kg.base import TripleStore
from ..sampling.base import SamplingStrategy
from ..stats.rng import RandomSource, spawn_rng

__all__ = [
    "EvaluationConfig",
    "IterationRecord",
    "EvaluationResult",
    "IntervalMemo",
    "KGAccuracyEvaluator",
]


class IntervalMemo:
    """Evidence-state interval memoisation shared by the evaluators.

    Interval methods are deterministic functions of the evidence
    summary, and iterative stop rules (and Monte-Carlo replays of them)
    revisit the same evidence states constantly — so solves are memoised,
    keyed on the method instance plus everything the methods read: tau
    and n (effective), the design variance (Wald), and alpha.

    The cache persists across runs of the host evaluator.  Because the
    method instance is part of the key, *reassigning* ``self.method``
    never serves another method's intervals; mutating a method's
    configuration in place (e.g. swapping its ``prior`` attribute) is
    not detectable here and requires :meth:`clear_interval_cache`.
    """

    #: Entries kept before the interval memo resets (a full reset is
    #: cheaper and simpler than LRU bookkeeping at this hit rate).
    _CACHE_LIMIT = 100_000

    method: IntervalMethod

    def _init_interval_cache(self) -> None:
        self._interval_cache: dict[tuple, Interval] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _compute_interval(self, evidence, alpha: float) -> Interval:
        """Memoised ``method.solve_batch`` over already-seen evidence states.

        Misses go through the batch engine (as a batch of one) rather
        than the scalar path so that cached intervals are bit-identical
        to batch-solved ones everywhere — including when an ambient
        solve pool coalesces this miss with other callers' work.
        """
        key = (
            self.method,
            evidence.tau_effective,
            evidence.n_effective,
            evidence.variance,
            alpha,
        )
        interval = self._interval_cache.get(key)
        if interval is None:
            self.cache_misses += 1
            if len(self._interval_cache) >= self._CACHE_LIMIT:
                self._interval_cache.clear()
            interval = self.method.solve_batch((evidence,), alpha)[0]
            self._interval_cache[key] = interval
        else:
            self.cache_hits += 1
        return interval

    def clear_interval_cache(self) -> None:
        """Drop memoised solves (e.g. after mutating ``method``)."""
        self._interval_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0


@dataclass(frozen=True)
class EvaluationConfig:
    """Knobs of the iterative evaluation loop.

    Attributes
    ----------
    alpha:
        Significance level of the interval (paper default 0.05).
    epsilon:
        Upper bound for the MoE — the convergence threshold (0.05).
    min_triples:
        Annotated triples required before the stop rule is consulted.
    units_per_iteration:
        Sampling units added per loop iteration after the minimum.
    max_triples:
        Annotation budget; exceeding it raises
        :class:`~repro.exceptions.ConvergenceError` (or returns a
        non-converged result when ``raise_on_budget`` is off).
    raise_on_budget:
        Whether budget exhaustion raises (default) or returns.
    """

    alpha: float = 0.05
    epsilon: float = 0.05
    min_triples: int = 30
    units_per_iteration: int = 1
    max_triples: int = 100_000
    raise_on_budget: bool = True

    def __post_init__(self) -> None:
        check_alpha(self.alpha)
        check_positive(self.epsilon, "epsilon")
        check_positive_int(self.min_triples, "min_triples")
        check_positive_int(self.units_per_iteration, "units_per_iteration")
        check_positive_int(self.max_triples, "max_triples")
        if self.max_triples < self.min_triples:
            raise ValidationError(
                "max_triples must be >= min_triples "
                f"({self.max_triples} < {self.min_triples})"
            )


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one stop-rule consultation (for traces/plots)."""

    n_annotated: int
    mu_hat: float
    lower: float
    upper: float

    @property
    def moe(self) -> float:
        """Margin of error at this iteration."""
        return (self.upper - self.lower) / 2.0


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of one evaluation run.

    Attributes
    ----------
    mu_hat:
        Final accuracy estimate.
    interval:
        The ``1 - alpha`` interval that met (or last missed) the MoE
        threshold.
    n_annotated:
        Statistical sample size (annotation draws; re-draws of an
        already-annotated fact under with-replacement cluster sampling
        count here but not in the cost).
    n_triples:
        Distinct annotated triples ``|T_S|`` — the paper's "Triples"
        metric and the cost driver.
    n_entities:
        Distinct entities identified ``|E_S|``.
    n_units:
        Sampling units consumed (triples for SRS, clusters for TWCS).
    cost:
        Priced annotation effort.
    iterations:
        Stop-rule consultations performed.
    converged:
        Whether ``MoE <= epsilon`` was reached within budget.
    trace:
        Optional per-iteration records (``keep_trace=True``).
    """

    mu_hat: float
    interval: Interval
    n_annotated: int
    n_triples: int
    n_entities: int
    n_units: int
    cost: AnnotationCost
    iterations: int
    converged: bool
    trace: tuple[IterationRecord, ...] = field(default_factory=tuple)

    @property
    def moe(self) -> float:
        """Final margin of error."""
        return self.interval.moe

    @property
    def cost_hours(self) -> float:
        """Annotation cost in hours — the paper's "Cost" metric."""
        return self.cost.hours


class KGAccuracyEvaluator(IntervalMemo):
    """Runs the paper's iterative evaluation on one KG.

    Parameters
    ----------
    kg:
        The knowledge graph to audit.
    strategy:
        Sampling design (SRS, TWCS, ...).
    method:
        Interval method deciding convergence (Wald, Wilson, aHPD, ...).
    annotator:
        Label source; defaults to the gold-replaying oracle.
    cost_model:
        Pricing of the annotation effort; defaults to the paper's
        (45s + 25s) model.
    config:
        Loop parameters; defaults to the paper's (alpha=0.05,
        epsilon=0.05).
    """

    def __init__(
        self,
        kg: TripleStore,
        strategy: SamplingStrategy,
        method: IntervalMethod,
        annotator: Optional[Annotator] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        config: EvaluationConfig = EvaluationConfig(),
        ledger: Optional[AnnotationLedger] = None,
    ):
        self.kg = kg
        self.strategy = strategy
        self.method = method
        self.annotator = annotator if annotator is not None else OracleAnnotator()
        self.cost_model = cost_model
        self.config = config
        #: Optional durable judgement record; every annotated batch is
        #: appended, enabling suspend/resume of real audits.
        self.ledger = ledger
        self._init_interval_cache()

    def run(self, rng: RandomSource = None, keep_trace: bool = False) -> EvaluationResult:
        """Execute one full evaluation (phases 1-4 until convergence)."""
        rng = spawn_rng(rng)
        cfg = self.config
        strategy = self.strategy
        state = strategy.new_state()
        trace: list[IterationRecord] = []

        # Initial fill: reach the minimum sample before consulting the
        # stop rule (one unit at a time — units have variable triple
        # counts under cluster designs).
        while state.n_annotated < cfg.min_triples or state.n_units < strategy.min_units:
            self._ingest(state, cfg.units_per_iteration, rng)

        iterations = 0
        while True:
            iterations += 1
            evidence = strategy.evidence(state)
            interval = self._compute_interval(evidence, cfg.alpha)
            if keep_trace:
                trace.append(
                    IterationRecord(
                        n_annotated=state.n_annotated,
                        mu_hat=evidence.mu_hat,
                        lower=interval.lower,
                        upper=interval.upper,
                    )
                )
            if interval.moe <= cfg.epsilon:
                return self._result(state, evidence.mu_hat, interval, iterations, True, trace)
            if state.n_annotated >= cfg.max_triples:
                if cfg.raise_on_budget:
                    raise ConvergenceError(
                        f"annotation budget exhausted: {state.n_annotated} triples "
                        f"annotated, MoE={interval.moe:.4f} > epsilon={cfg.epsilon}"
                    )
                return self._result(state, evidence.mu_hat, interval, iterations, False, trace)
            self._ingest(state, cfg.units_per_iteration, rng)

    def _ingest(self, state, units: int, rng) -> None:
        batch = self.strategy.draw(self.kg, state, units, rng)
        labels = self.annotator.annotate(self.kg, batch.indices, rng=rng)
        if self.ledger is not None:
            self.ledger.record_batch(batch.indices, batch.subjects, labels)
        self.strategy.update(state, batch, labels)

    def _result(
        self,
        state,
        mu_hat: float,
        interval: Interval,
        iterations: int,
        converged: bool,
        trace: list[IterationRecord],
    ) -> EvaluationResult:
        cost = state.cost(self.cost_model)
        return EvaluationResult(
            mu_hat=mu_hat,
            interval=interval,
            n_annotated=state.n_annotated,
            n_triples=len(state.seen_triples),
            n_entities=len(state.seen_entities),
            n_units=state.n_units,
            cost=cost,
            iterations=iterations,
            converged=converged,
            trace=tuple(trace),
        )

    def __repr__(self) -> str:
        return (
            f"KGAccuracyEvaluator(strategy={self.strategy.name}, "
            f"method={self.method.name}, alpha={self.config.alpha}, "
            f"epsilon={self.config.epsilon})"
        )
