"""Cross-method metrics used in the paper's analysis."""

from __future__ import annotations

from ..exceptions import ValidationError
from .runner import StudyResult

__all__ = ["reduction_ratio", "cost_reduction", "triples_reduction"]


def reduction_ratio(baseline: float, candidate: float) -> float:
    """Relative reduction of *candidate* versus *baseline*.

    The paper's Figure 4 annotation: ``(candidate - baseline) /
    baseline``, so a value of ``-0.47`` reads "47% cheaper than the
    baseline".  Raises if the baseline is non-positive.
    """
    if baseline <= 0:
        raise ValidationError(f"baseline must be > 0, got {baseline}")
    return (candidate - baseline) / baseline


def cost_reduction(baseline: StudyResult, candidate: StudyResult) -> float:
    """Mean annotation-cost reduction of *candidate* vs *baseline*."""
    return reduction_ratio(
        float(baseline.cost_hours.mean()), float(candidate.cost_hours.mean())
    )


def triples_reduction(baseline: StudyResult, candidate: StudyResult) -> float:
    """Mean annotated-triples reduction of *candidate* vs *baseline*."""
    return reduction_ratio(
        float(baseline.triples.mean()), float(candidate.triples.mean())
    )
