"""Annotation budget planning (library extension).

Before launching an audit, an analyst wants to know: *roughly how many
annotations — and how many hours — will this cost?*  The beta-binomial
machinery behind Figure 3 answers that in closed form: for a
hypothesised accuracy ``mu`` and sample size ``n``, the expected MoE of
a method is half its expected width under the binomial outcome mixture.
The planner searches for the smallest ``n`` whose expected MoE meets the
threshold and prices it with the cost model.

Because the stop rule halts on the *realised* (noisy) MoE, which dips
below its expectation, planner predictions are a mild upper bound on
the average realised effort — exactly what a budget estimate should be.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import (
    check_alpha,
    check_positive,
    check_positive_int,
    check_probability,
)
from ..annotation.cost import DEFAULT_COST_MODEL, CostModel
from ..estimators.base import Evidence
from ..exceptions import ConvergenceError
from ..intervals.base import IntervalMethod
from ..stats.binomial import binomial_pmf
from .framework import EvaluationConfig

__all__ = ["AuditPlan", "SampleSizePlanner"]


@dataclass(frozen=True)
class AuditPlan:
    """A predicted audit budget.

    Attributes
    ----------
    method:
        Interval method the plan is for.
    mu_hypothesis:
        The accuracy the analyst expects.
    n_triples:
        Predicted annotations required for ``E[MoE] <= epsilon``.
    expected_moe:
        The expected MoE at ``n_triples``.
    cost_hours:
        Priced effort (entities approximated by
        ``entities_per_triple * n_triples``).
    """

    method: str
    mu_hypothesis: float
    n_triples: int
    expected_moe: float
    cost_hours: float


class SampleSizePlanner:
    """Predicts the annotation budget for an interval method.

    Parameters
    ----------
    config:
        Supplies ``alpha`` and ``epsilon`` (paper defaults).
    cost_model:
        Annotation pricing; defaults to the paper's model.
    entities_per_triple:
        Expected distinct-entity fraction of the sample — 1.0 models
        SRS on a KG with small clusters, ~``1/m`` models TWCS with a
        stage-2 cap of ``m``.
    """

    def __init__(
        self,
        config: EvaluationConfig = EvaluationConfig(),
        cost_model: CostModel = DEFAULT_COST_MODEL,
        entities_per_triple: float = 1.0,
    ):
        check_probability(entities_per_triple, "entities_per_triple")
        self.config = config
        self.cost_model = cost_model
        self.entities_per_triple = entities_per_triple

    def expected_moe(self, method: IntervalMethod, mu: float, n: int) -> float:
        """Expected MoE of *method* at sample size *n* under ``Bin(n, mu)``.

        All ``n + 1`` binomial outcomes are solved in one batch call.
        """
        mu = check_probability(mu, "mu")
        n = check_positive_int(n, "n")
        alpha = check_alpha(self.config.alpha)
        taus = np.arange(n + 1)
        weights = binomial_pmf(taus.astype(float), n, mu)
        evidences = [Evidence.from_counts_fast(int(tau), n) for tau in taus]
        batch = method.solve_batch(evidences, alpha)
        return float(weights @ batch.moe)

    def plan(
        self,
        method: IntervalMethod,
        mu: float,
        max_n: int = 20_000,
    ) -> AuditPlan:
        """Smallest ``n`` with ``E[MoE] <= epsilon``, priced.

        Uses geometric bracketing followed by bisection — ``E[MoE]`` is
        monotone decreasing in ``n`` for every method in the library.
        """
        check_positive(max_n, "max_n")
        epsilon = self.config.epsilon
        lo, hi = 1, self.config.min_triples
        # Bracket: grow until the expectation crosses the threshold.
        while self.expected_moe(method, mu, hi) > epsilon:
            lo = hi
            hi *= 2
            if hi > max_n:
                raise ConvergenceError(
                    f"{method.name} does not reach E[MoE] <= {epsilon} "
                    f"within {max_n} annotations at mu = {mu}"
                )
        # Bisect to the smallest satisfying n.
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.expected_moe(method, mu, mid) <= epsilon:
                hi = mid
            else:
                lo = mid
        n_required = max(hi, self.config.min_triples)
        entities = int(round(self.entities_per_triple * n_required))
        cost = self.cost_model.price(entities, n_required)
        return AuditPlan(
            method=method.name,
            mu_hypothesis=mu,
            n_triples=n_required,
            expected_moe=self.expected_moe(method, mu, n_required),
            cost_hours=cost.hours,
        )

    def compare(
        self,
        methods: dict[str, IntervalMethod],
        mu: float,
        max_n: int = 20_000,
    ) -> dict[str, AuditPlan]:
        """Plans for several methods at the same accuracy hypothesis."""
        return {name: self.plan(method, mu, max_n=max_n) for name, method in methods.items()}
