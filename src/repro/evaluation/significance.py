"""Significance testing between evaluation methods.

The paper marks a method's cell with dagger/double-dagger symbols when
its annotation cost differs significantly from a baseline's under a
standard independent t-test at ``p < 0.01`` (Tables 2-4).  This module
reproduces that comparison protocol on :class:`StudyResult` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..stats.ttest import TTestResult, independent_ttest
from .runner import StudyResult

__all__ = ["MethodComparison", "compare_costs", "compare_triples", "significance_markers"]

#: The significance level used throughout the paper's tables.
PAPER_SIGNIFICANCE_LEVEL = 0.01


@dataclass(frozen=True)
class MethodComparison:
    """A two-method cost comparison with its test outcome."""

    label_a: str
    label_b: str
    mean_a: float
    mean_b: float
    ttest: TTestResult

    @property
    def significant(self) -> bool:
        """Significant at the paper's ``p < 0.01`` level."""
        return self.ttest.significant(PAPER_SIGNIFICANCE_LEVEL)

    @property
    def better(self) -> str:
        """Label of the method with the lower mean cost."""
        return self.label_a if self.mean_a <= self.mean_b else self.label_b

    def __str__(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return (
            f"{self.label_a} ({self.mean_a:.3f}) vs {self.label_b} "
            f"({self.mean_b:.3f}): p={self.ttest.pvalue:.2e} ({verdict})"
        )


def compare_costs(study_a: StudyResult, study_b: StudyResult) -> MethodComparison:
    """Compare annotation cost (hours) between two studies."""
    return MethodComparison(
        label_a=study_a.label,
        label_b=study_b.label,
        mean_a=float(study_a.cost_hours.mean()),
        mean_b=float(study_b.cost_hours.mean()),
        ttest=independent_ttest(study_a.cost_hours, study_b.cost_hours),
    )


def compare_triples(study_a: StudyResult, study_b: StudyResult) -> MethodComparison:
    """Compare annotated-triple counts between two studies."""
    return MethodComparison(
        label_a=study_a.label,
        label_b=study_b.label,
        mean_a=float(study_a.triples.mean()),
        mean_b=float(study_b.triples.mean()),
        ttest=independent_ttest(
            study_a.triples.astype(float), study_b.triples.astype(float)
        ),
    )


def significance_markers(
    candidate: StudyResult,
    versus_wald: StudyResult | None = None,
    versus_wilson: StudyResult | None = None,
) -> str:
    """The paper's dagger notation for a candidate method's cell.

    ``†`` marks a significant cost difference versus Wald, ``‡`` versus
    Wilson (independent t-tests, ``p < 0.01``).
    """
    markers = ""
    if versus_wald is not None and compare_costs(candidate, versus_wald).significant:
        markers += "†"
    if versus_wilson is not None and compare_costs(candidate, versus_wilson).significant:
        markers += "‡"
    return markers
