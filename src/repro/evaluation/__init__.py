"""Evaluation framework: the iterative loop, studies, and audits."""

from .coverage import CoverageResult, coverage_profile, empirical_coverage
from .dynamic import DynamicAuditor, DynamicAuditRecord, DynamicAuditStudy
from .framework import (
    EvaluationConfig,
    EvaluationResult,
    IterationRecord,
    KGAccuracyEvaluator,
)
from .partitioned import (
    PartitionAudit,
    PartitionedAuditResult,
    PartitionTrajectory,
    audit_by_predicate,
)
from .planner import AuditPlan, SampleSizePlanner
from .sequential import SequentialCoverageResult, sequential_coverage
from .metrics import cost_reduction, reduction_ratio, triples_reduction
from .runner import StudyResult, run_study
from .significance import (
    MethodComparison,
    compare_costs,
    compare_triples,
    significance_markers,
)

__all__ = [
    "EvaluationConfig",
    "EvaluationResult",
    "IterationRecord",
    "KGAccuracyEvaluator",
    "StudyResult",
    "run_study",
    "MethodComparison",
    "compare_costs",
    "compare_triples",
    "significance_markers",
    "CoverageResult",
    "empirical_coverage",
    "coverage_profile",
    "reduction_ratio",
    "SampleSizePlanner",
    "AuditPlan",
    "sequential_coverage",
    "SequentialCoverageResult",
    "audit_by_predicate",
    "PartitionAudit",
    "PartitionedAuditResult",
    "PartitionTrajectory",
    "cost_reduction",
    "triples_reduction",
    "DynamicAuditor",
    "DynamicAuditRecord",
    "DynamicAuditStudy",
]
