"""Sequential-procedure coverage analysis (methodological extension).

The main coverage audit (:mod:`repro.evaluation.coverage`) measures
interval coverage at a *fixed* sample size.  The paper's framework,
however, stops at a *data-dependent* sample size — the first time the
MoE dips below ``epsilon`` — and optional stopping is known to erode
frequentist coverage: the procedure preferentially halts on samples
whose interval happens to be (too) narrow.

This module quantifies that erosion: it replays the full iterative
procedure against a synthetic KG of known accuracy and measures how
often the *final* reported interval contains the truth, alongside the
stopping-time distribution.  It gives the reproduction a principled
answer to "what guarantee survives the stopping rule?" — a question the
paper raises (Sec. 3.3) but does not measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_probability, check_rep_range
from ..intervals.base import IntervalMethod
from ..kg.synthetic import SyntheticKG
from ..sampling.srs import SimpleRandomSampling
from ..stats.rng import derive_seed, spawn_rng
from .framework import EvaluationConfig, KGAccuracyEvaluator

__all__ = [
    "SequentialCoverageResult",
    "sequential_coverage",
    "sequential_replays",
    "sequential_from_replays",
]

#: Size of the synthetic population used for the replays.  Large enough
#: that without-replacement effects are negligible at the stopping
#: times involved (hundreds of triples).
_POPULATION_SIZE = 200_000
_POPULATION_CLUSTERS = 20_000


@dataclass(frozen=True)
class SequentialCoverageResult:
    """Coverage of the sequential procedure for one configuration."""

    method: str
    mu: float
    alpha: float
    epsilon: float
    coverage: float
    mean_stopping_n: float
    std_stopping_n: float
    repetitions: int

    @property
    def nominal(self) -> float:
        """The per-interval nominal level ``1 - alpha``."""
        return 1.0 - self.alpha

    @property
    def shortfall(self) -> float:
        """Nominal minus sequential coverage (positive = erosion)."""
        return self.nominal - self.coverage


def sequential_replays(
    method: IntervalMethod,
    mu: float,
    config: EvaluationConfig = EvaluationConfig(),
    repetitions: int = 500,
    seed: int = 0,
    rep_range: tuple[int, int] | None = None,
) -> tuple[int, np.ndarray]:
    """Raw replay outcomes over a repetition window: ``(hits, stopping)``.

    Each replay ``i`` of the window runs the full procedure on the
    stream ``derive_seed(seed, i)`` — keyed on the *global* repetition
    index — against the same realised synthetic population (its seed is
    derived from *seed* alone), so the windows of any partition of
    ``[0, repetitions)`` are exactly the corresponding slice of the full
    run.  Hit counts are integers and stopping sizes are per-replay
    values, so partitions merge into the full run loss-free — the basis
    of repetition sharding for sequential-coverage cells.

    All replays of a window share one :class:`KGAccuracyEvaluator`,
    whose interval memo persists across runs: replays walk through
    largely overlapping ``(tau, n)`` evidence states, so most stop-rule
    consultations after the first few replays are cache hits rather than
    fresh solves (the memo is exact, so sharing it never changes a
    replay's outcome).
    """
    mu = check_probability(mu, "mu")
    repetitions = check_positive_int(repetitions, "repetitions")
    start, stop = check_rep_range(rep_range, repetitions)
    kg = SyntheticKG(
        num_triples=_POPULATION_SIZE,
        num_clusters=_POPULATION_CLUSTERS,
        accuracy=mu,
        seed=derive_seed(seed, 999),
    )
    # The hash-realised population proportion, not the nominal rate, is
    # the truth the intervals should cover.
    realised_mu = float(kg.labels(np.arange(kg.num_triples)).mean())
    evaluator = KGAccuracyEvaluator(
        kg=kg,
        strategy=SimpleRandomSampling(),
        method=method,
        config=config,
    )
    hits = 0
    stopping = np.empty(stop - start, dtype=float)
    for slot, i in enumerate(range(start, stop)):
        result = evaluator.run(rng=spawn_rng(derive_seed(seed, i)))
        hits += result.interval.contains(realised_mu)
        stopping[slot] = result.n_annotated
    return int(hits), stopping


def sequential_from_replays(
    method_name: str,
    mu: float,
    config: EvaluationConfig,
    hits: int,
    stopping: np.ndarray,
) -> SequentialCoverageResult:
    """Assemble the coverage result from raw replay outcomes."""
    stopping = np.asarray(stopping, dtype=float)
    repetitions = int(stopping.size)
    return SequentialCoverageResult(
        method=method_name,
        mu=mu,
        alpha=config.alpha,
        epsilon=config.epsilon,
        coverage=hits / repetitions,
        mean_stopping_n=float(stopping.mean()),
        std_stopping_n=float(stopping.std(ddof=1)) if repetitions > 1 else 0.0,
        repetitions=repetitions,
    )


def sequential_coverage(
    method: IntervalMethod,
    mu: float,
    config: EvaluationConfig = EvaluationConfig(),
    repetitions: int = 500,
    seed: int = 0,
    rep_range: tuple[int, int] | None = None,
) -> SequentialCoverageResult:
    """Coverage of the *stopped* interval under the full procedure.

    Parameters
    ----------
    method:
        Interval method driving the stop rule.
    mu:
        True accuracy of the synthetic population.
    config:
        Evaluation loop parameters (alpha, epsilon, minimum sample).
    repetitions:
        Independent full-procedure replays.
    seed:
        Base seed; replays derive independent streams.
    rep_range:
        Optional half-open replay window (see :func:`sequential_replays`).
    """
    hits, stopping = sequential_replays(
        method, mu, config=config, repetitions=repetitions, seed=seed,
        rep_range=rep_range,
    )
    return sequential_from_replays(method.name, mu, config, hits, stopping)
