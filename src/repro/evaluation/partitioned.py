"""Per-partition accuracy auditing (library extension).

KG quality management rarely stops at one global number: error rates
differ sharply by relation type, and curation teams need to know *which
predicates* drag the accuracy down.  This module audits every partition
(stratum) of a KG — by default its predicates — producing one credible
interval per partition plus the stratified global estimate, under a
shared annotation budget.

The per-partition intervals inherit everything from the global
machinery (aHPD by default), so each partition's audit individually
carries the paper's guarantees; partitions whose budget share is too
small for their own convergence are reported as non-converged rather
than silently dropped.

Execution is factored into three stages so the runtime layer can shard
the expensive one over worker processes:

1. :func:`partition_trajectories` — per partition, the (budget-
   independent) annotation outcome sequence and the sample size at
   which the partition's own stop rule fires.  This stage holds all the
   interval solves and parallelises over partitions.
2. :func:`allocate_budget` — a cheap, deterministic replay of the
   proportional round-robin allocation using only the integer stopping
   points, deciding how many annotations each partition actually
   receives under the shared budget.
3. :func:`finalize_audit` — the per-partition and stratified-global
   interval solves on the allocated integer evidence.

:func:`audit_by_predicate` composes the three serially; the runtime's
``PartitionedAuditCell`` runs stage 1 as partition shards and stages
2-3 in the shard reducer.  With the default (rng-free) oracle annotator
the two paths are bit-identical for any sharding — the guarantee the
hypothesis suite enforces.  Non-oracle annotators draw their label
noise per partition (in partition order) rather than interleaved
across partitions, which keeps the trajectory of each partition
independent of every other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .._validation import check_alpha, check_positive_int
from ..annotation.annotator import Annotator, OracleAnnotator
from ..annotation.cost import DEFAULT_COST_MODEL, AnnotationCost, CostModel
from ..estimators.base import Evidence
from ..exceptions import ValidationError
from ..intervals.ahpd import AdaptiveHPD
from ..intervals.base import Interval, IntervalMethod
from ..kg.graph import KnowledgeGraph
from ..kg.queries import TripleIndex
from ..stats.rng import RandomSource, spawn_rng

__all__ = [
    "PartitionAudit",
    "PartitionTrajectory",
    "PartitionedAuditResult",
    "allocate_budget",
    "allocation_stop_rule",
    "audit_by_predicate",
    "finalize_audit",
    "partition_order",
    "partition_trajectories",
]


@dataclass(frozen=True)
class PartitionAudit:
    """Audit outcome for one partition.

    Attributes
    ----------
    partition:
        Partition key (e.g. the predicate name).
    weight:
        Partition share of the KG, ``M_h / M``.
    n_annotated:
        Triples annotated inside the partition.
    mu_hat:
        Partition accuracy estimate.
    interval:
        The ``1 - alpha`` interval for the partition accuracy.
    converged:
        Whether the partition's own MoE met the threshold.
    """

    partition: str
    weight: float
    n_annotated: int
    mu_hat: float
    interval: Interval
    converged: bool


@dataclass(frozen=True)
class PartitionedAuditResult:
    """Joint outcome of a partitioned audit."""

    partitions: tuple[PartitionAudit, ...]
    global_mu_hat: float
    global_interval: Interval
    cost: AnnotationCost
    alpha: float
    epsilon: float

    @property
    def worst_partition(self) -> PartitionAudit:
        """The converged partition with the lowest estimated accuracy."""
        converged = [p for p in self.partitions if p.converged]
        pool = converged if converged else list(self.partitions)
        return min(pool, key=lambda p: p.mu_hat)

    def by_name(self) -> Mapping[str, PartitionAudit]:
        """Partition audits keyed by partition name."""
        return {p.partition: p for p in self.partitions}

    @property
    def cost_hours(self) -> float:
        """Total priced effort in hours."""
        return self.cost.hours


@dataclass(frozen=True)
class PartitionTrajectory:
    """Budget-independent annotation trajectory of one partition.

    Everything downstream of the trajectory is integer bookkeeping plus
    a handful of final interval solves, so trajectories are the natural
    shard payload: they pickle cheaply (integer tuples only) and
    partials from any partition sharding merge losslessly.

    Attributes
    ----------
    partition:
        Partition key (predicate name).
    size:
        Total triples in the partition, ``M_h``.
    weight:
        Partition share of the KG, ``M_h / M``.
    labels:
        Annotation outcomes in annotation order, truncated at
        ``n_stop`` (no later annotation can ever be requested — the
        allocator stops feeding a partition the moment its stop rule
        fires) or at the trajectory cap for never-stopping partitions.
    subjects:
        Subject entity ids aligned with ``labels`` (for the distinct-
        entity cost model).
    n_stop:
        Annotations at which the partition's own stop rule fires —
        exhaustion of the partition, or ``MoE <= epsilon`` at/after the
        calibrated floor; ``None`` when the rule cannot fire within the
        global budget cap.
    """

    partition: str
    size: int
    weight: float
    labels: tuple[int, ...]
    subjects: tuple[int, ...]
    n_stop: int | None


def partition_order(
    kg: KnowledgeGraph, rng: RandomSource = None
) -> tuple[list[str], dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Partition names, members, and annotation-order permutations.

    Permutations for **all** partitions are drawn from one generator in
    partition order, whatever subset a caller will actually process —
    that fixed consumption schedule is what lets partition shards on
    different workers replay exactly the draws the serial path makes.
    Annotation order within a partition is the *reversed* permutation,
    preserving the pre-runtime implementation (which popped candidates
    from the end of each partition's list).
    """
    index = TripleIndex(kg)
    names = list(index.predicates)
    members = {name: index.match(predicate=name) for name in names}
    generator = spawn_rng(rng)
    order = {name: generator.permutation(members[name])[::-1] for name in names}
    return names, members, order


def _stop_point(
    method: IntervalMethod,
    taus: np.ndarray,
    size: int,
    cap: int,
    floor: int,
    alpha: float,
    epsilon: float,
) -> int | None:
    """First ``n`` at which the partition's stop rule fires, if any.

    The rule mirrors the evaluation framework's: no decision before the
    calibrated floor, exhaustive annotation always stops (exact within
    the partition, no interval consulted), and otherwise the first
    ``MoE <= epsilon`` wins.
    """
    for n in range(floor, cap + 1):
        if n == size:
            return n
        evidence = Evidence.from_counts(int(taus[n - 1]), n)
        if method.compute(evidence, alpha).moe <= epsilon:
            return n
    return None


def partition_trajectories(
    kg: KnowledgeGraph,
    names: Sequence[str],
    members: Mapping[str, np.ndarray],
    order: Mapping[str, np.ndarray],
    method: IntervalMethod,
    alpha: float,
    epsilon: float,
    min_per_partition: int,
    max_triples: int,
    annotator: Annotator,
    rng: RandomSource = None,
    precompute_stops: bool = True,
) -> list[PartitionTrajectory]:
    """Stage 1: the annotation trajectory of each partition in *names*.

    With *precompute_stops* (the sharded path), this is the expensive
    stage — one interval solve per candidate stop point — and the one
    the runtime fans out: any split of the partition list produces
    trajectories that concatenate to the serial result, because each
    trajectory depends only on its own partition's permutation and
    labels.  ``precompute_stops=False`` skips the solve scan and keeps
    every label up to the trajectory cap (``n_stop`` stays ``None``);
    the serial path uses it together with
    :func:`allocation_stop_rule`, solving only at the sample sizes the
    budget actually reaches — the pre-refactor work profile.
    """
    total = kg.num_triples
    trajectories: list[PartitionTrajectory] = []
    for name in names:
        size = int(members[name].size)
        cap = min(size, max_triples)
        ordered = np.asarray(order[name][:cap])
        labels = np.asarray(
            annotator.annotate(kg, ordered, rng=rng), dtype=bool
        )
        subjects = kg.subjects(ordered)
        n_stop = None
        keep = cap
        if precompute_stops:
            floor = min(min_per_partition, size)
            taus = np.cumsum(labels, dtype=np.int64)
            n_stop = _stop_point(method, taus, size, cap, floor, alpha, epsilon)
            keep = cap if n_stop is None else n_stop
        trajectories.append(
            PartitionTrajectory(
                partition=name,
                size=size,
                weight=size / total,
                labels=tuple(int(v) for v in labels[:keep]),
                subjects=tuple(int(s) for s in subjects[:keep]),
                n_stop=n_stop,
            )
        )
    return trajectories


def allocation_stop_rule(
    trajectories: Sequence[PartitionTrajectory],
    method: IntervalMethod,
    alpha: float,
    epsilon: float,
    min_per_partition: int,
):
    """An on-demand ``is_done(name, n)`` for :func:`allocate_budget`.

    Evaluates the same predicate the precomputed ``n_stop`` scan uses —
    exhaustion, or ``MoE <= epsilon`` at/after the floor — but only at
    the sample sizes the allocation replay actually reaches, so a
    budget-starved audit performs no more interval solves than the
    pre-refactor interleaved loop did.
    """
    info = {t.partition: t for t in trajectories}
    taus = {
        t.partition: np.cumsum(np.asarray(t.labels, dtype=np.int64))
        for t in trajectories
    }

    def is_done(name: str, n: int) -> bool:
        trajectory = info[name]
        if n >= trajectory.size:
            return True
        if n < min(min_per_partition, trajectory.size):
            return False
        evidence = Evidence.from_counts(int(taus[name][n - 1]), n)
        return method.compute(evidence, alpha).moe <= epsilon

    return is_done


def allocate_budget(
    trajectories: Sequence[PartitionTrajectory],
    max_triples: int,
    is_done=None,
) -> tuple[dict[str, int], dict[str, bool], int]:
    """Stage 2: replay the proportional round-robin under the budget.

    Each step feeds the most under-allocated unfinished partition
    (``weight * (total + 1) - allocated``, ties to the earliest
    partition) and marks it done the moment its stop rule fires —
    exactly the decision sequence of the pre-runtime interleaved loop.
    *is_done* is a ``(name, n) -> bool`` predicate; the default reads
    the trajectories' precomputed ``n_stop``, which fires at identical
    sample sizes, so both variants replay the same allocation.
    """
    if is_done is None:
        stops = {t.partition: t.n_stop for t in trajectories}

        def is_done(name: str, n: int) -> bool:
            stop = stops[name]
            return stop is not None and n >= stop

    allocated = {t.partition: 0 for t in trajectories}
    done = {t.partition: False for t in trajectories}
    weights = {t.partition: t.weight for t in trajectories}
    names = [t.partition for t in trajectories]
    total = 0
    while total < max_triples:
        open_names = [n for n in names if not done[n]]
        if not open_names:
            break
        target = max(
            open_names,
            key=lambda n: weights[n] * (total + 1) - allocated[n],
        )
        allocated[target] += 1
        total += 1
        if is_done(target, allocated[target]):
            done[target] = True
    return allocated, done, total


def finalize_audit(
    trajectories: Sequence[PartitionTrajectory],
    allocated: Mapping[str, int],
    done: Mapping[str, bool],
    total: int,
    method: IntervalMethod,
    alpha: float,
    epsilon: float,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> PartitionedAuditResult:
    """Stage 3: interval solves on the allocated integer evidence."""
    audits = []
    entities: set[int] = set()
    global_mu = 0.0
    global_var = 0.0
    for trajectory in trajectories:
        name = trajectory.partition
        n_h = allocated[name]
        labels = trajectory.labels[:n_h]
        entities.update(trajectory.subjects[:n_h])
        if labels:
            evidence = Evidence.from_counts(int(sum(labels)), len(labels))
            interval = method.compute(evidence, alpha)
            mu_h = evidence.mu_hat
            var_h = mu_h * (1.0 - mu_h) / len(labels)
        else:
            # Budget ran out before the partition saw any annotation:
            # report total ignorance, not a fabricated estimate.
            interval = Interval(lower=0.0, upper=1.0, alpha=alpha, method="no-data")
            mu_h = 0.5
            var_h = 0.25
        audits.append(
            PartitionAudit(
                partition=name,
                weight=trajectory.weight,
                n_annotated=len(labels),
                mu_hat=mu_h,
                interval=interval,
                converged=done[name],
            )
        )
        global_mu += trajectory.weight * mu_h
        global_var += trajectory.weight ** 2 * var_h
    # Global stratified interval through the shared evidence machinery.
    global_mu = min(max(global_mu, 0.0), 1.0)
    srs_var = global_mu * (1.0 - global_mu) / max(total, 1)
    deff = max(global_var / srs_var, 1e-3) if srs_var > 0 else 1.0
    n_eff = max(total, 1) / deff
    global_evidence = Evidence(
        mu_hat=global_mu,
        variance=global_var,
        n_effective=n_eff,
        tau_effective=global_mu * n_eff,
        n_annotated=total,
    )
    global_interval = method.compute(global_evidence, alpha)
    cost = cost_model.price(len(entities), total)
    return PartitionedAuditResult(
        partitions=tuple(audits),
        global_mu_hat=global_mu,
        global_interval=global_interval,
        cost=cost,
        alpha=alpha,
        epsilon=epsilon,
    )


def audit_by_predicate(
    kg: KnowledgeGraph,
    alpha: float = 0.05,
    epsilon: float = 0.05,
    method: IntervalMethod | None = None,
    annotator: Annotator | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    min_per_partition: int = 30,
    max_triples: int = 50_000,
    rng: RandomSource = None,
    dataset: str | None = None,
    executor=None,
) -> PartitionedAuditResult:
    """Audit every predicate of *kg* plus the stratified global accuracy.

    The sampler round-robins over partitions proportionally to their
    size (each partition is an SRS within itself), annotating until
    **every** partition's interval meets ``epsilon`` or the budget is
    exhausted.  Small partitions are annotated exhaustively when that
    is cheaper than their convergence requirement.

    Parameters
    ----------
    kg:
        A materialised KG with predicates.
    alpha / epsilon:
        Per-partition interval level and MoE threshold.
    method:
        Interval method (default aHPD).
    min_per_partition:
        Annotations each partition receives before its stop rule is
        consulted (small partitions cap at their size).  Defaults to 30,
        the same calibrated floor the global framework uses — unanimous
        small samples would otherwise stop on overconfident
        limiting-case intervals.
    max_triples:
        Global annotation budget.
    annotator:
        Label source (default: the rng-free oracle, whose results are
        unchanged from the pre-trajectory implementation).  A *noisy*
        annotator now draws its label noise per partition, in partition
        order, rather than interleaved across partitions — seeded
        non-oracle results differ from releases before the trajectory
        refactor.
    dataset:
        Runtime KG spec string describing *kg* (a profile name,
        ``"SYN100M:<mu>"``, or ``"file:<path>"``) — required for the
        executor path, which rebuilds the KG inside worker processes.
    executor:
        A :class:`repro.runtime.ParallelExecutor`; when given (with
        *dataset*), the per-partition trajectory stage fans out over
        its workers and result store via a ``PartitionedAuditCell``,
        bit-identically to the serial path.  Methods that cannot be
        captured as a picklable runtime payload, or non-default
        annotators, fall back to the serial loop with an explicit
        :class:`RuntimeWarning` — never silently.
    """
    alpha = check_alpha(alpha)
    check_positive_int(min_per_partition, "min_per_partition")
    check_positive_int(max_triples, "max_triples")
    if not isinstance(kg, KnowledgeGraph):
        raise ValidationError("partitioned audits need a materialised KnowledgeGraph")
    method = method if method is not None else AdaptiveHPD()
    if executor is not None:
        routed = _audit_by_predicate_routed(
            kg, alpha, epsilon, method, annotator, cost_model,
            min_per_partition, max_triples, rng, dataset, executor,
        )
        if routed is not None:
            return routed
    annotator = annotator if annotator is not None else OracleAnnotator()
    generator = spawn_rng(rng)
    names, members, order = partition_order(kg, rng=generator)
    trajectories = partition_trajectories(
        kg, names, members, order, method, alpha, epsilon,
        min_per_partition, max_triples, annotator, rng=generator,
        precompute_stops=False,
    )
    allocated, done, total = allocate_budget(
        trajectories,
        max_triples,
        is_done=allocation_stop_rule(
            trajectories, method, alpha, epsilon, min_per_partition
        ),
    )
    return finalize_audit(
        trajectories, allocated, done, total, method, alpha, epsilon, cost_model
    )


def _audit_by_predicate_routed(
    kg, alpha, epsilon, method, annotator, cost_model,
    min_per_partition, max_triples, rng, dataset, executor,
) -> PartitionedAuditResult | None:
    """The executor path, or ``None`` (with a warning) when ineligible."""
    import warnings

    # Imported lazily: the runtime layer sits above the evaluators, so
    # a top-level import here would be circular.
    from ..runtime import PartitionedAuditCell, StudyPlan, execute, method_payload

    if dataset is None:
        raise ValidationError(
            "audit_by_predicate(executor=...) needs a `dataset` spec string "
            "so worker processes can rebuild the KG; pass e.g. "
            'dataset="NELL" or dataset="file:/path/to/kg.tsv"'
        )
    reasons = []
    if annotator is not None and not isinstance(annotator, OracleAnnotator):
        reasons.append(f"non-oracle annotator {annotator!r}")
    if cost_model is not DEFAULT_COST_MODEL:
        reasons.append("non-default cost model")
    if not isinstance(rng, (int, np.integer)):
        # None means fresh OS entropy on the serial path — a routed run
        # would have to pin some seed (and a store would then replay one
        # frozen result forever), so routing requires an explicit seed.
        reasons.append("rng must be an int seed so workers can replay it")
    payload = method_payload(method)
    if payload is None:
        reasons.append(
            f"method {method.name!r} has no picklable runtime payload"
        )
    from ..experiments.config import ExperimentSettings

    settings = None
    if not reasons:
        # A non-None payload implies a library method whose solver (if
        # any) is validated, so settings construction cannot raise here.
        seed = int(rng)
        settings = ExperimentSettings(
            seed=seed, solver=getattr(method, "solver", "newton")
        )
        # Workers rebuild the KG from the spec; refuse to route when
        # that rebuild would audit a *different* KG than the caller's.
        # The triple list covers predicates and subjects (the partition
        # structure and the entity-cost driver), not just size/labels.
        # build_kg memoises per process, so the comparison load is also
        # the one the serial-mode cell runner would perform.
        from ..runtime import build_kg

        rebuilt = build_kg(dataset, settings.dataset_seed)
        same = rebuilt is kg or (
            rebuilt.num_triples == kg.num_triples
            and np.array_equal(
                rebuilt.labels(np.arange(rebuilt.num_triples)),
                kg.labels(np.arange(kg.num_triples)),
            )
            and rebuilt.triples == kg.triples
        )
        if not same:
            reasons.append(
                f"dataset spec {dataset!r} rebuilds a different KG than "
                "the one passed in"
            )
    if reasons:
        warnings.warn(
            "audit_by_predicate: falling back to the serial loop "
            f"({'; '.join(reasons)})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    cell = PartitionedAuditCell(
        key=("partitioned", dataset),
        label=f"partitioned/{dataset}",
        method=method.name,
        method_payload=payload,
        alpha=alpha,
        dataset=dataset,
        epsilon=epsilon,
        min_per_partition=min_per_partition,
        max_triples=max_triples,
        seed=seed,
    )
    plan = StudyPlan(settings=settings, cells=(cell,), name="partitioned-audit")
    return execute(plan, executor=executor).results[cell.key]
