"""Per-partition accuracy auditing (library extension).

KG quality management rarely stops at one global number: error rates
differ sharply by relation type, and curation teams need to know *which
predicates* drag the accuracy down.  This module audits every partition
(stratum) of a KG — by default its predicates — producing one credible
interval per partition plus the stratified global estimate, under a
shared annotation budget.

The per-partition intervals inherit everything from the global
machinery (aHPD by default), so each partition's audit individually
carries the paper's guarantees; partitions whose budget share is too
small for their own convergence are reported as non-converged rather
than silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .._validation import check_alpha, check_positive_int
from ..annotation.annotator import Annotator, OracleAnnotator
from ..annotation.cost import DEFAULT_COST_MODEL, AnnotationCost, CostModel
from ..estimators.base import Evidence
from ..exceptions import ValidationError
from ..intervals.ahpd import AdaptiveHPD
from ..intervals.base import Interval, IntervalMethod
from ..kg.graph import KnowledgeGraph
from ..kg.queries import TripleIndex
from ..stats.rng import RandomSource, spawn_rng

__all__ = ["PartitionAudit", "PartitionedAuditResult", "audit_by_predicate"]


@dataclass(frozen=True)
class PartitionAudit:
    """Audit outcome for one partition.

    Attributes
    ----------
    partition:
        Partition key (e.g. the predicate name).
    weight:
        Partition share of the KG, ``M_h / M``.
    n_annotated:
        Triples annotated inside the partition.
    mu_hat:
        Partition accuracy estimate.
    interval:
        The ``1 - alpha`` interval for the partition accuracy.
    converged:
        Whether the partition's own MoE met the threshold.
    """

    partition: str
    weight: float
    n_annotated: int
    mu_hat: float
    interval: Interval
    converged: bool


@dataclass(frozen=True)
class PartitionedAuditResult:
    """Joint outcome of a partitioned audit."""

    partitions: tuple[PartitionAudit, ...]
    global_mu_hat: float
    global_interval: Interval
    cost: AnnotationCost
    alpha: float
    epsilon: float

    @property
    def worst_partition(self) -> PartitionAudit:
        """The converged partition with the lowest estimated accuracy."""
        converged = [p for p in self.partitions if p.converged]
        pool = converged if converged else list(self.partitions)
        return min(pool, key=lambda p: p.mu_hat)

    def by_name(self) -> Mapping[str, PartitionAudit]:
        """Partition audits keyed by partition name."""
        return {p.partition: p for p in self.partitions}

    @property
    def cost_hours(self) -> float:
        """Total priced effort in hours."""
        return self.cost.hours


def audit_by_predicate(
    kg: KnowledgeGraph,
    alpha: float = 0.05,
    epsilon: float = 0.05,
    method: IntervalMethod | None = None,
    annotator: Annotator | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    min_per_partition: int = 30,
    max_triples: int = 50_000,
    rng: RandomSource = None,
) -> PartitionedAuditResult:
    """Audit every predicate of *kg* plus the stratified global accuracy.

    The sampler round-robins over partitions proportionally to their
    size (each partition is an SRS within itself), annotating until
    **every** partition's interval meets ``epsilon`` or the budget is
    exhausted.  Small partitions are annotated exhaustively when that
    is cheaper than their convergence requirement.

    Parameters
    ----------
    kg:
        A materialised KG with predicates.
    alpha / epsilon:
        Per-partition interval level and MoE threshold.
    method:
        Interval method (default aHPD).
    min_per_partition:
        Annotations each partition receives before its stop rule is
        consulted (small partitions cap at their size).  Defaults to 30,
        the same calibrated floor the global framework uses — unanimous
        small samples would otherwise stop on overconfident
        limiting-case intervals.
    max_triples:
        Global annotation budget.
    """
    alpha = check_alpha(alpha)
    check_positive_int(min_per_partition, "min_per_partition")
    check_positive_int(max_triples, "max_triples")
    if not isinstance(kg, KnowledgeGraph):
        raise ValidationError("partitioned audits need a materialised KnowledgeGraph")
    method = method if method is not None else AdaptiveHPD()
    annotator = annotator if annotator is not None else OracleAnnotator()
    generator = spawn_rng(rng)

    index = TripleIndex(kg)
    names = list(index.predicates)
    members = {name: index.match(predicate=name) for name in names}
    weights = {name: members[name].size / kg.num_triples for name in names}

    remaining = {name: list(generator.permutation(members[name])) for name in names}
    annotated: dict[str, list[bool]] = {name: [] for name in names}
    done: dict[str, bool] = {name: False for name in names}
    entities: set[int] = set()
    total = 0

    def partition_interval(name: str) -> tuple[Evidence, Interval] | None:
        labels = annotated[name]
        if not labels:
            return None
        evidence = Evidence.from_counts(int(sum(labels)), len(labels))
        return evidence, method.compute(evidence, alpha)

    def is_done(name: str) -> bool:
        if not remaining[name]:
            return True  # exhaustively annotated: exact within partition
        labels = annotated[name]
        floor = min(min_per_partition, members[name].size)
        if len(labels) < floor:
            return False
        computed = partition_interval(name)
        assert computed is not None
        return computed[1].moe <= epsilon

    while total < max_triples:
        # Feed the most under-allocated unfinished partition.
        open_names = [n for n in names if not done[n]]
        if not open_names:
            break
        target = max(
            open_names,
            key=lambda n: weights[n] * (total + 1) - len(annotated[n]),
        )
        triple_idx = int(remaining[target].pop())
        label = bool(annotator.annotate(kg, np.asarray([triple_idx]), rng=generator)[0])
        annotated[target].append(label)
        entities.add(int(kg.subjects(np.asarray([triple_idx]))[0]))
        total += 1
        if is_done(target):
            done[target] = True

    audits = []
    global_mu = 0.0
    global_var = 0.0
    for name in names:
        labels = annotated[name]
        if labels:
            evidence = Evidence.from_counts(int(sum(labels)), len(labels))
            interval = method.compute(evidence, alpha)
            mu_h = evidence.mu_hat
            var_h = mu_h * (1.0 - mu_h) / len(labels)
        else:
            # Budget ran out before the partition saw any annotation:
            # report total ignorance, not a fabricated estimate.
            interval = Interval(lower=0.0, upper=1.0, alpha=alpha, method="no-data")
            mu_h = 0.5
            var_h = 0.25
        audits.append(
            PartitionAudit(
                partition=name,
                weight=weights[name],
                n_annotated=len(labels),
                mu_hat=mu_h,
                interval=interval,
                converged=done[name],
            )
        )
        global_mu += weights[name] * mu_h
        global_var += weights[name] ** 2 * var_h
    # Global stratified interval through the shared evidence machinery.
    global_mu = min(max(global_mu, 0.0), 1.0)
    srs_var = global_mu * (1.0 - global_mu) / max(total, 1)
    deff = max(global_var / srs_var, 1e-3) if srs_var > 0 else 1.0
    n_eff = max(total, 1) / deff
    global_evidence = Evidence(
        mu_hat=global_mu,
        variance=global_var,
        n_effective=n_eff,
        tau_effective=global_mu * n_eff,
        n_annotated=total,
    )
    global_interval = method.compute(global_evidence, alpha)
    cost = cost_model.price(len(entities), total)
    return PartitionedAuditResult(
        partitions=tuple(audits),
        global_mu_hat=global_mu,
        global_interval=global_interval,
        cost=cost,
        alpha=alpha,
        epsilon=epsilon,
    )
