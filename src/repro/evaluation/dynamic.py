"""Evolving-KG evaluation (paper Sec. 8, future work).

KG content arrives in batches; once enough new content accumulates, the
accuracy is re-audited.  The Bayesian framing makes the previous audit
reusable: its posterior becomes an *informative prior* for the next
round, which — when the accuracy has not drifted much — converges far
faster than uninformative priors (paper Example 2 quantifies the gain).

The paper also warns about the failure mode: a massive update with a
very different accuracy makes the carried prior deceptive.  Two guards
are provided here:

* ``carryover`` down-weights the carried pseudo-counts, limiting how
  much history one audit can impose on the next;
* the carried prior always competes *alongside* the uninformative trio
  inside aHPD, so a deceptive prior can lose the width race instead of
  dictating the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .._validation import (
    check_in_unit_interval,
    check_positive,
    check_positive_int,
    check_rep_range,
)
from ..annotation.annotator import Annotator, OracleAnnotator
from ..annotation.cost import DEFAULT_COST_MODEL, CostModel
from ..intervals.ahpd import AdaptiveHPD
from ..intervals.priors import UNINFORMATIVE_PRIORS, BetaPrior
from ..kg.base import TripleStore
from ..sampling.base import SamplingStrategy
from ..stats.rng import RandomSource, spawn_rng
from .framework import EvaluationConfig, EvaluationResult, KGAccuracyEvaluator

__all__ = ["DynamicAuditRecord", "DynamicAuditStudy", "DynamicAuditor"]


@dataclass(frozen=True)
class DynamicAuditRecord:
    """Outcome of one audit round over an evolving KG.

    Attributes
    ----------
    round_index:
        0-based audit round.
    result:
        The evaluation outcome for this round's KG snapshot.
    carried_prior:
        The informative prior carried *into* this round (``None`` for
        the first round).
    posterior_prior:
        The prior distilled from this round's outcome, to be carried
        into the next round.
    """

    round_index: int
    result: EvaluationResult
    carried_prior: BetaPrior | None
    posterior_prior: BetaPrior


@dataclass(frozen=True)
class DynamicAuditStudy:
    """Monte-Carlo replications of a full evolving-KG audit stream.

    ``streams[r]`` holds repetition *r*'s per-round records in round
    order, with the carried prior threaded through the rounds exactly
    as in a single :meth:`DynamicAuditor.audit_stream` run.  The raw
    records are retained (rather than summary arrays only) so the
    runtime layer can merge repetition shards losslessly and tests can
    check the carried-prior round boundary on the merged value.
    """

    label: str
    streams: tuple[tuple[DynamicAuditRecord, ...], ...]

    @property
    def repetitions(self) -> int:
        """Number of independent stream replays aggregated."""
        return len(self.streams)

    @property
    def rounds(self) -> int:
        """Audit rounds per stream (snapshots in the evolving KG)."""
        return len(self.streams[0]) if self.streams else 0

    def _field(self, getter, dtype) -> np.ndarray:
        return np.array(
            [[getter(rec) for rec in stream] for stream in self.streams],
            dtype=dtype,
        )

    @property
    def triples(self) -> np.ndarray:
        """``(repetitions, rounds)`` annotated-triples counts."""
        return self._field(lambda rec: rec.result.n_triples, np.int64)

    @property
    def cost_hours(self) -> np.ndarray:
        """``(repetitions, rounds)`` priced annotation effort."""
        return self._field(lambda rec: rec.result.cost_hours, float)

    @property
    def estimates(self) -> np.ndarray:
        """``(repetitions, rounds)`` accuracy estimates."""
        return self._field(lambda rec: rec.result.mu_hat, float)

    @property
    def converged(self) -> np.ndarray:
        """``(repetitions, rounds)`` convergence flags."""
        return self._field(lambda rec: rec.result.converged, bool)

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.repetitions} reps x {self.rounds} rounds, "
            f"mean triples/round={self.triples.mean():.1f}"
        )


class DynamicAuditor:
    """Audits a stream of KG snapshots with posterior carry-over.

    Parameters
    ----------
    strategy:
        Sampling design used in every round.
    config:
        Evaluation loop parameters (alpha, epsilon, ...).
    carryover:
        Fraction of the previous round's posterior pseudo-counts kept
        as the next round's informative prior (1.0 = full carry-over;
        0.0 disables carrying and reduces to independent audits).
    max_prior_strength:
        Cap on the carried prior's pseudo-annotation count, bounding the
        damage a stale prior can do after massive updates.
    annotator / cost_model:
        As in :class:`~repro.evaluation.framework.KGAccuracyEvaluator`.
    """

    def __init__(
        self,
        strategy: SamplingStrategy,
        config: EvaluationConfig = EvaluationConfig(),
        carryover: float = 1.0,
        max_prior_strength: float = 200.0,
        annotator: Annotator | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        solver: str = "newton",
    ):
        check_in_unit_interval(carryover, "carryover")
        check_positive(max_prior_strength, "max_prior_strength")
        self.strategy = strategy
        self.config = config
        self.carryover = carryover
        self.max_prior_strength = max_prior_strength
        self.annotator = annotator if annotator is not None else OracleAnnotator()
        self.cost_model = cost_model
        self.solver = solver

    def audit_round(
        self,
        kg: TripleStore,
        round_index: int = 0,
        carried_prior: BetaPrior | None = None,
        rng: RandomSource = None,
    ) -> DynamicAuditRecord:
        """Run one audit, optionally informed by a carried prior."""
        priors: tuple[BetaPrior, ...] = UNINFORMATIVE_PRIORS
        if carried_prior is not None:
            priors = priors + (carried_prior,)
        method = AdaptiveHPD(priors=priors, solver=self.solver)
        evaluator = KGAccuracyEvaluator(
            kg=kg,
            strategy=self.strategy,
            method=method,
            annotator=self.annotator,
            cost_model=self.cost_model,
            config=self.config,
        )
        result = evaluator.run(rng=rng)
        posterior_prior = self._distill_prior(result, round_index)
        return DynamicAuditRecord(
            round_index=round_index,
            result=result,
            carried_prior=carried_prior,
            posterior_prior=posterior_prior,
        )

    def audit_stream(
        self,
        snapshots: Iterable[TripleStore] | Sequence[TripleStore],
        seed: int = 0,
    ) -> list[DynamicAuditRecord]:
        """Audit every snapshot, carrying the posterior forward."""
        records: list[DynamicAuditRecord] = []
        carried: BetaPrior | None = None
        for i, kg in enumerate(snapshots):
            record = self.audit_round(
                kg, round_index=i, carried_prior=carried, rng=spawn_rng(seed + i)
            )
            records.append(record)
            carried = record.posterior_prior if self.carryover > 0.0 else None
        return records

    def audit_study(
        self,
        snapshots: Sequence[TripleStore],
        repetitions: int = 1,
        seed: int = 0,
        label: str = "",
        rep_range: tuple[int, int] | None = None,
    ) -> DynamicAuditStudy:
        """Monte-Carlo replications of :meth:`audit_stream`.

        Repetition ``r`` replays the whole stream on the seed window
        ``seed + r * len(snapshots)`` — round ``i`` of repetition ``r``
        audits under ``seed + r * len(snapshots) + i``, so the per-round
        seed windows of distinct repetitions never overlap and
        repetition 0 reproduces ``audit_stream(snapshots, seed)``
        exactly.

        *rep_range* executes a half-open window of the repetitions with
        seeds still keyed on the *global* repetition index, so the
        windows of any partition of ``[0, repetitions)`` concatenate to
        exactly the full study — the contract repetition sharding
        builds on.  The carried prior threads through the rounds
        *within* each repetition, so no window depends on another.
        """
        snapshots = list(snapshots)
        repetitions = check_positive_int(repetitions, "repetitions")
        start, stop = check_rep_range(rep_range, repetitions)
        stride = len(snapshots)
        streams = tuple(
            tuple(self.audit_stream(snapshots, seed=seed + rep * stride))
            for rep in range(start, stop)
        )
        return DynamicAuditStudy(label=label or "dynamic-audit", streams=streams)

    def _distill_prior(self, result: EvaluationResult, round_index: int) -> BetaPrior:
        """Turn an audit outcome into next round's informative prior.

        The observed ``(tau, n)`` are scaled by ``carryover`` and capped
        at ``max_prior_strength`` pseudo-annotations.
        """
        n = result.n_annotated * self.carryover
        strength = min(max(n, 2.0), self.max_prior_strength)
        mu = min(max(result.mu_hat, 1e-3), 1.0 - 1e-3)
        return BetaPrior.from_accuracy(
            mu, strength, name=f"Carried[r{round_index}]"
        )
