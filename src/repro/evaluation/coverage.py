"""Empirical coverage audit of interval methods.

The paper (Sec. 3.3) notes that the long-run properties of CIs require
*coverage probability* checks — repeated re-runs of the whole evaluation
— to validate their nominal guarantees, which is impractical in the
field but perfectly practical in simulation.  This module measures, for
a true accuracy ``mu`` and sample size ``n``, how often each method's
``1 - alpha`` interval actually contains ``mu``.

Wald's under-coverage near the accuracy boundaries and the credible
intervals' calibration are both visible here, complementing the
efficiency story of the main tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import (
    check_alpha,
    check_positive_int,
    check_probability,
    check_rep_range,
)
from ..estimators.base import Evidence
from ..intervals.base import IntervalMethod
from ..stats.rng import RandomSource, spawn_rng

__all__ = [
    "CoverageResult",
    "empirical_coverage",
    "coverage_profile",
    "tau_counts",
    "coverage_from_counts",
]


@dataclass(frozen=True)
class CoverageResult:
    """Coverage measurement for one (method, mu, n, alpha) cell."""

    method: str
    mu: float
    n: int
    alpha: float
    coverage: float
    mean_width: float
    repetitions: int

    @property
    def nominal(self) -> float:
        """The advertised coverage ``1 - alpha``."""
        return 1.0 - self.alpha

    @property
    def shortfall(self) -> float:
        """Nominal minus empirical coverage (positive = under-coverage)."""
        return self.nominal - self.coverage


def tau_counts(
    mu: float,
    n: int,
    repetitions: int,
    rng: RandomSource = None,
    rep_range: tuple[int, int] | None = None,
) -> np.ndarray:
    """Outcome histogram of ``tau ~ Bin(n, mu)`` over a repetition window.

    Always consumes the generator exactly as the full *repetitions*-draw
    run would (one ``binomial`` call of the full size) and then restricts
    to the ``rep_range`` window, so the histograms of any partition of
    ``[0, repetitions)`` sum — integer-exactly — to the full histogram.
    That property is what lets repetition shards of a coverage cell
    merge bit-identically.
    """
    mu = check_probability(mu, "mu")
    n = check_positive_int(n, "n")
    repetitions = check_positive_int(repetitions, "repetitions")
    start, stop = check_rep_range(rep_range, repetitions)
    generator = spawn_rng(rng)
    taus = generator.binomial(n, mu, size=repetitions)
    return np.bincount(taus[start:stop], minlength=n + 1)


def coverage_from_counts(
    method: IntervalMethod,
    mu: float,
    n: int,
    alpha: float,
    counts: np.ndarray,
    repetitions: int | None = None,
) -> CoverageResult:
    """Coverage result from an outcome histogram (the solve stage).

    Each observed outcome is solved exactly once through the method's
    batch engine and weighted by its count.  *repetitions* defaults to
    ``counts.sum()``; pass it explicitly when the histogram covers only
    part of a larger design.
    """
    mu = check_probability(mu, "mu")
    n = check_positive_int(n, "n")
    alpha = check_alpha(alpha)
    counts = np.asarray(counts, dtype=np.int64)
    if repetitions is None:
        repetitions = int(counts.sum())
    observed = np.flatnonzero(counts)
    weights = counts[observed]
    evidences = [Evidence.from_counts_fast(int(tau), n) for tau in observed]
    batch = method.solve_batch(evidences, alpha)
    hits = int(weights @ batch.contains(mu))
    total_width = float(weights @ batch.width)
    return CoverageResult(
        method=method.name,
        mu=mu,
        n=n,
        alpha=alpha,
        coverage=hits / repetitions,
        mean_width=total_width / repetitions,
        repetitions=repetitions,
    )


def empirical_coverage(
    method: IntervalMethod,
    mu: float,
    n: int,
    alpha: float = 0.05,
    repetitions: int = 2_000,
    rng: RandomSource = None,
    rep_range: tuple[int, int] | None = None,
) -> CoverageResult:
    """Monte-Carlo coverage of *method* under binomial sampling.

    Draws ``tau ~ Bin(n, mu)`` *repetitions* times and reports the
    fraction of intervals containing the true ``mu`` together with the
    mean interval width.

    A ``Bin(n, mu)`` draw has only ``n + 1`` distinct outcomes, so the
    repetitions are aggregated by unique ``tau`` (:func:`tau_counts`)
    and each observed outcome is solved exactly once through the
    method's batch engine (:func:`coverage_from_counts`) — at the
    paper's settings (n=30, 2,000 repetitions) that is at most 31
    interval solves per cell instead of 2,000, with bit-identical
    coverage counts.

    *rep_range* measures coverage over a half-open window of the same
    draw stream (the generator is consumed identically either way), as
    used by repetition sharding.
    """
    mu = check_probability(mu, "mu")
    n = check_positive_int(n, "n")
    alpha = check_alpha(alpha)
    repetitions = check_positive_int(repetitions, "repetitions")
    start, stop = check_rep_range(rep_range, repetitions)
    counts = tau_counts(mu, n, repetitions, rng=rng, rep_range=(start, stop))
    return coverage_from_counts(
        method, mu, n, alpha, counts, repetitions=stop - start
    )


def coverage_profile(
    method: IntervalMethod,
    mus: Sequence[float],
    n: int,
    alpha: float = 0.05,
    repetitions: int = 2_000,
    seed: int = 0,
    executor=None,
) -> list[CoverageResult]:
    """Coverage of *method* across an accuracy sweep (one seed per mu).

    With *executor* (a :class:`repro.runtime.ParallelExecutor`), the
    per-mu cells fan out over its workers and result store; the seeds
    are identical either way, so the two paths agree bit for bit.  The
    cells carry the method's *full* picklable payload (class, priors,
    solver — see :func:`repro.runtime.cells.method_payload`), so ad-hoc
    configurations such as informative-prior aHPD take the executor
    path too.  Only a method object the payload encoder does not know
    (e.g. a user-defined subclass) stays serial, and then with an
    explicit :class:`RuntimeWarning` — never silently.
    """
    if executor is not None:
        # Imported lazily: the runtime layer sits above the evaluators,
        # so a top-level import here would be circular.
        from ..runtime import method_payload

        payload = method_payload(method)
        if payload is None:
            import warnings

            warnings.warn(
                f"coverage_profile: method {method.name!r} has no picklable "
                "runtime payload; falling back to the serial loop",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            return _coverage_profile_cells(
                method, payload, mus, n, alpha, repetitions, seed, executor
            )
    results = []
    for i, mu in enumerate(mus):
        results.append(
            empirical_coverage(
                method,
                mu,
                n,
                alpha=alpha,
                repetitions=repetitions,
                rng=spawn_rng(seed + i),
            )
        )
    return results


def _coverage_profile_cells(
    method, payload, mus, n, alpha, repetitions, seed, executor
) -> list[CoverageResult]:
    from ..runtime import CoverageCell, StudyPlan, execute

    name = method.name
    cells = tuple(
        CoverageCell(
            key=(name, float(mu)),
            label=f"coverage-profile/{name}/mu={mu:g}",
            method=name,
            method_payload=payload,
            alpha=alpha,
            mu=float(mu),
            n=n,
            seed=seed + i,
            repetitions=repetitions,
        )
        for i, mu in enumerate(mus)
    )
    from ..experiments.config import ExperimentSettings

    settings = ExperimentSettings(
        repetitions=repetitions,
        seed=seed,
        solver=getattr(method, "solver", "newton"),
    )
    plan = StudyPlan(settings=settings, cells=cells, name="coverage-profile")
    results = execute(plan, executor=executor).results
    return [results[(name, float(mu))] for mu in mus]
