"""Empirical coverage audit of interval methods.

The paper (Sec. 3.3) notes that the long-run properties of CIs require
*coverage probability* checks — repeated re-runs of the whole evaluation
— to validate their nominal guarantees, which is impractical in the
field but perfectly practical in simulation.  This module measures, for
a true accuracy ``mu`` and sample size ``n``, how often each method's
``1 - alpha`` interval actually contains ``mu``.

Wald's under-coverage near the accuracy boundaries and the credible
intervals' calibration are both visible here, complementing the
efficiency story of the main tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_alpha, check_positive_int, check_probability
from ..estimators.base import Evidence
from ..intervals.base import IntervalMethod
from ..stats.rng import RandomSource, spawn_rng

__all__ = ["CoverageResult", "empirical_coverage", "coverage_profile"]


@dataclass(frozen=True)
class CoverageResult:
    """Coverage measurement for one (method, mu, n, alpha) cell."""

    method: str
    mu: float
    n: int
    alpha: float
    coverage: float
    mean_width: float
    repetitions: int

    @property
    def nominal(self) -> float:
        """The advertised coverage ``1 - alpha``."""
        return 1.0 - self.alpha

    @property
    def shortfall(self) -> float:
        """Nominal minus empirical coverage (positive = under-coverage)."""
        return self.nominal - self.coverage


def empirical_coverage(
    method: IntervalMethod,
    mu: float,
    n: int,
    alpha: float = 0.05,
    repetitions: int = 2_000,
    rng: RandomSource = None,
) -> CoverageResult:
    """Monte-Carlo coverage of *method* under binomial sampling.

    Draws ``tau ~ Bin(n, mu)`` *repetitions* times, builds the interval
    from each outcome, and reports the fraction of intervals containing
    the true ``mu`` together with the mean interval width.
    """
    mu = check_probability(mu, "mu")
    n = check_positive_int(n, "n")
    alpha = check_alpha(alpha)
    repetitions = check_positive_int(repetitions, "repetitions")
    generator = spawn_rng(rng)
    taus = generator.binomial(n, mu, size=repetitions)

    hits = 0
    widths = np.empty(repetitions, dtype=float)
    for i, tau in enumerate(taus):
        evidence = Evidence.from_counts(int(tau), n)
        interval = method.compute(evidence, alpha)
        hits += interval.contains(mu)
        widths[i] = interval.width
    return CoverageResult(
        method=method.name,
        mu=mu,
        n=n,
        alpha=alpha,
        coverage=hits / repetitions,
        mean_width=float(widths.mean()),
        repetitions=repetitions,
    )


def coverage_profile(
    method: IntervalMethod,
    mus: Sequence[float],
    n: int,
    alpha: float = 0.05,
    repetitions: int = 2_000,
    seed: int = 0,
) -> list[CoverageResult]:
    """Coverage of *method* across an accuracy sweep (one seed per mu)."""
    results = []
    for i, mu in enumerate(mus):
        results.append(
            empirical_coverage(
                method,
                mu,
                n,
                alpha=alpha,
                repetitions=repetitions,
                rng=spawn_rng(seed + i),
            )
        )
    return results
