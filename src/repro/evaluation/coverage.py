"""Empirical coverage audit of interval methods.

The paper (Sec. 3.3) notes that the long-run properties of CIs require
*coverage probability* checks — repeated re-runs of the whole evaluation
— to validate their nominal guarantees, which is impractical in the
field but perfectly practical in simulation.  This module measures, for
a true accuracy ``mu`` and sample size ``n``, how often each method's
``1 - alpha`` interval actually contains ``mu``.

Wald's under-coverage near the accuracy boundaries and the credible
intervals' calibration are both visible here, complementing the
efficiency story of the main tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_alpha, check_positive_int, check_probability
from ..estimators.base import Evidence
from ..intervals.base import IntervalMethod
from ..stats.rng import RandomSource, spawn_rng

__all__ = ["CoverageResult", "empirical_coverage", "coverage_profile"]


@dataclass(frozen=True)
class CoverageResult:
    """Coverage measurement for one (method, mu, n, alpha) cell."""

    method: str
    mu: float
    n: int
    alpha: float
    coverage: float
    mean_width: float
    repetitions: int

    @property
    def nominal(self) -> float:
        """The advertised coverage ``1 - alpha``."""
        return 1.0 - self.alpha

    @property
    def shortfall(self) -> float:
        """Nominal minus empirical coverage (positive = under-coverage)."""
        return self.nominal - self.coverage


def empirical_coverage(
    method: IntervalMethod,
    mu: float,
    n: int,
    alpha: float = 0.05,
    repetitions: int = 2_000,
    rng: RandomSource = None,
) -> CoverageResult:
    """Monte-Carlo coverage of *method* under binomial sampling.

    Draws ``tau ~ Bin(n, mu)`` *repetitions* times and reports the
    fraction of intervals containing the true ``mu`` together with the
    mean interval width.

    A ``Bin(n, mu)`` draw has only ``n + 1`` distinct outcomes, so the
    repetitions are aggregated by unique ``tau`` (``np.bincount``) and
    each observed outcome is solved exactly once through the method's
    batch engine — at the paper's settings (n=30, 2,000 repetitions)
    that is at most 31 interval solves per cell instead of 2,000, with
    bit-identical coverage counts.
    """
    mu = check_probability(mu, "mu")
    n = check_positive_int(n, "n")
    alpha = check_alpha(alpha)
    repetitions = check_positive_int(repetitions, "repetitions")
    generator = spawn_rng(rng)
    taus = generator.binomial(n, mu, size=repetitions)

    counts = np.bincount(taus, minlength=n + 1)
    observed = np.flatnonzero(counts)
    weights = counts[observed]
    evidences = [Evidence.from_counts_fast(int(tau), n) for tau in observed]
    batch = method.compute_batch(evidences, alpha)
    hits = int(weights @ batch.contains(mu))
    total_width = float(weights @ batch.width)
    return CoverageResult(
        method=method.name,
        mu=mu,
        n=n,
        alpha=alpha,
        coverage=hits / repetitions,
        mean_width=total_width / repetitions,
        repetitions=repetitions,
    )


def coverage_profile(
    method: IntervalMethod,
    mus: Sequence[float],
    n: int,
    alpha: float = 0.05,
    repetitions: int = 2_000,
    seed: int = 0,
) -> list[CoverageResult]:
    """Coverage of *method* across an accuracy sweep (one seed per mu)."""
    results = []
    for i, mu in enumerate(mus):
        results.append(
            empirical_coverage(
                method,
                mu,
                n,
                alpha=alpha,
                repetitions=repetitions,
                rng=spawn_rng(seed + i),
            )
        )
    return results
