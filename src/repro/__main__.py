"""``python -m repro`` — the audit command line (see :mod:`repro.cli`)."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
