"""Generation of KGs with inferable structure.

The inference rules only pay off on KGs whose facts are logically
connected.  :func:`generate_inferable_kg` builds one with three
components whose gold labels satisfy the rules *by construction*:

* **functional groups** — subjects with one correct object for a
  functional predicate plus, with some probability, competing incorrect
  candidates (the typical output of noisy extraction);
* **inverse pairs** — symmetric relation instances stated in both
  directions with one shared truth value;
* **filler facts** — unconstrained facts used to hit the requested
  global accuracy exactly without touching constrained labels.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int, check_probability
from ..exceptions import ValidationError
from ..kg.graph import KnowledgeGraph
from ..kg.triple import Triple
from ..stats.rng import RandomSource, spawn_rng
from .rules import FunctionalPredicateRule, InferenceRule, InversePredicateRule

__all__ = ["generate_inferable_kg", "default_rules"]

FUNCTIONAL_PREDICATE = "bornIn"
INVERSE_PREDICATE = "marriedTo"
FILLER_PREDICATE = "mentions"


def default_rules() -> list[InferenceRule]:
    """The rule set matching :func:`generate_inferable_kg`'s schema."""
    return [
        FunctionalPredicateRule(FUNCTIONAL_PREDICATE),
        InversePredicateRule(INVERSE_PREDICATE, INVERSE_PREDICATE),
    ]


def generate_inferable_kg(
    num_functional_groups: int = 600,
    distractor_rate: float = 0.15,
    num_inverse_pairs: int = 300,
    inverse_truth_rate: float = 0.9,
    num_filler: int = 1_600,
    accuracy: float = 0.85,
    seed: RandomSource = None,
) -> KnowledgeGraph:
    """A KG whose gold labels satisfy the default rule set.

    Parameters
    ----------
    num_functional_groups:
        Subjects carrying the functional predicate; every group has one
        correct object, and each of up to two extra candidate slots is
        filled (incorrectly) with probability *distractor_rate*.
    num_inverse_pairs:
        Symmetric-relation instances stated in both directions; each
        pair is jointly correct with probability *inverse_truth_rate*.
    num_filler:
        Unconstrained facts; their labels absorb the difference between
        the constrained components' accuracy and the requested global
        *accuracy* (must leave enough slack, or a
        :class:`~repro.exceptions.ValidationError` is raised).
    accuracy:
        Exact global proportion of correct facts.
    """
    check_positive_int(num_functional_groups, "num_functional_groups")
    check_probability(distractor_rate, "distractor_rate")
    check_positive_int(num_inverse_pairs, "num_inverse_pairs")
    check_probability(inverse_truth_rate, "inverse_truth_rate")
    check_positive_int(num_filler, "num_filler")
    check_probability(accuracy, "accuracy")
    rng = spawn_rng(seed)

    triples: list[Triple] = []
    labels: list[bool] = []

    # Functional groups: one correct candidate + 0-2 distractors.
    distractor_counts = rng.binomial(2, distractor_rate, size=num_functional_groups)
    for g in range(num_functional_groups):
        subject = f"person:{g:05d}"
        triples.append(Triple(subject, FUNCTIONAL_PREDICATE, f"city:{g:05d}x0"))
        labels.append(True)
        for slot in range(int(distractor_counts[g])):
            triples.append(
                Triple(subject, FUNCTIONAL_PREDICATE, f"city:{g:05d}x{slot + 1}")
            )
            labels.append(False)

    # Inverse pairs: both directions share one truth value.
    pair_truth = rng.random(num_inverse_pairs) < inverse_truth_rate
    for p in range(num_inverse_pairs):
        left = f"spouse:{p:05d}a"
        right = f"spouse:{p:05d}b"
        truth = bool(pair_truth[p])
        triples.append(Triple(left, INVERSE_PREDICATE, right))
        labels.append(truth)
        triples.append(Triple(right, INVERSE_PREDICATE, left))
        labels.append(truth)

    # Fillers absorb the accuracy target exactly.
    constrained_total = len(triples)
    constrained_correct = int(np.sum(labels))
    total = constrained_total + num_filler
    target_correct = int(round(accuracy * total))
    filler_correct = target_correct - constrained_correct
    if not 0 <= filler_correct <= num_filler:
        raise ValidationError(
            f"accuracy {accuracy} is unreachable: needs {filler_correct} correct "
            f"fillers out of {num_filler}; adjust the component sizes"
        )
    filler_labels = np.zeros(num_filler, dtype=bool)
    filler_labels[:filler_correct] = True
    rng.shuffle(filler_labels)
    for f in range(num_filler):
        triples.append(
            Triple(f"doc:{f % 300:05d}", FILLER_PREDICATE, f"thing:{f:05d}")
        )
        labels.append(bool(filler_labels[f]))

    return KnowledgeGraph(triples, labels)
