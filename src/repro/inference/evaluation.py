"""Inference-assisted accuracy evaluation.

The human-machine loop: sampled facts whose labels are already known —
verified earlier, or *derived by the inference engine* — cost nothing;
only genuinely unknown facts go to the human annotator, and every
manual verification is propagated through the rules, potentially
labelling further facts for free.

Statistically nothing changes: the labels entering the estimator are
correct regardless of their source (rules are sound), so the point
estimate stays unbiased and the interval machinery applies unchanged.
Only the *cost accounting* differs — which is precisely the efficiency
mechanism of Qi et al. [46] that the paper suggests aHPD slots into.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..annotation.annotator import Annotator, OracleAnnotator
from ..annotation.cost import DEFAULT_COST_MODEL, AnnotationCost, CostModel
from ..exceptions import ConvergenceError
from ..intervals.base import Interval, IntervalMethod
from ..kg.graph import KnowledgeGraph
from ..sampling.base import SamplingStrategy
from ..stats.rng import RandomSource, spawn_rng
from ..evaluation.framework import EvaluationConfig, IntervalMemo
from .engine import InferenceEngine

__all__ = ["AssistedEvaluationResult", "InferenceAssistedEvaluator"]


@dataclass(frozen=True)
class AssistedEvaluationResult:
    """Outcome of one inference-assisted evaluation run.

    The statistical fields mirror
    :class:`~repro.evaluation.framework.EvaluationResult`; the cost
    fields split effort into manual and inferred shares.
    """

    mu_hat: float
    interval: Interval
    n_annotated: int
    n_manual: int
    n_inferred_used: int
    n_entities_manual: int
    cost: AnnotationCost
    iterations: int
    converged: bool

    @property
    def moe(self) -> float:
        """Final margin of error."""
        return self.interval.moe

    @property
    def cost_hours(self) -> float:
        """Manual annotation cost in hours (inference is free)."""
        return self.cost.hours

    @property
    def inference_share(self) -> float:
        """Fraction of sampled labels that came from inference."""
        if self.n_annotated == 0:
            return 0.0
        return self.n_inferred_used / self.n_annotated


class InferenceAssistedEvaluator(IntervalMemo):
    """The Fig. 1 loop with a rule engine short-circuiting annotations.

    Parameters
    ----------
    kg / strategy / method / annotator / cost_model / config:
        As in :class:`~repro.evaluation.framework.KGAccuracyEvaluator`.
    engine:
        The inference engine (rules prepared over *kg*).  A fresh
        engine state is used per :meth:`run`.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        strategy: SamplingStrategy,
        method: IntervalMethod,
        engine_factory,
        annotator: Annotator | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        config: EvaluationConfig = EvaluationConfig(),
    ):
        self.kg = kg
        self.strategy = strategy
        self.method = method
        self.engine_factory = engine_factory
        self.annotator = annotator if annotator is not None else OracleAnnotator()
        self.cost_model = cost_model
        self.config = config
        # Same evidence-state interval memo as KGAccuracyEvaluator (the
        # shared IntervalMemo base): the stop rule and its Monte-Carlo
        # replays revisit the same (tau, n) states constantly.
        self._init_interval_cache()

    def run(self, rng: RandomSource = None) -> AssistedEvaluationResult:
        """Execute one inference-assisted evaluation."""
        rng = spawn_rng(rng)
        cfg = self.config
        strategy = self.strategy
        state = strategy.new_state()
        engine: InferenceEngine = self.engine_factory()

        manual_triples: set[int] = set()
        manual_entities: set[int] = set()
        inferred_used = 0

        def ingest(units: int) -> int:
            nonlocal inferred_used
            batch = strategy.draw(self.kg, state, units, rng)
            labels = np.empty(batch.indices.size, dtype=bool)
            # Sequential processing: a manual verification may infer the
            # labels of later facts in the *same* batch (e.g. verifying
            # the correct candidate of a functional group frees its
            # siblings drawn by the same cluster unit).
            for pos, idx in enumerate(batch.indices):
                idx = int(idx)
                known = engine.label_of(idx)
                if known is not None:
                    labels[pos] = known
                    inferred_used += 1
                    continue
                judged = bool(
                    self.annotator.annotate(self.kg, np.asarray([idx]), rng=rng)[0]
                )
                labels[pos] = judged
                engine.add_verification(idx, judged)
                manual_triples.add(idx)
                manual_entities.add(int(batch.subjects[pos]))
            strategy.update(state, batch, labels)
            return batch.num_triples

        while state.n_annotated < cfg.min_triples or state.n_units < strategy.min_units:
            ingest(cfg.units_per_iteration)

        iterations = 0
        while True:
            iterations += 1
            evidence = strategy.evidence(state)
            interval = self._compute_interval(evidence, cfg.alpha)
            if interval.moe <= cfg.epsilon:
                converged = True
                break
            if state.n_annotated >= cfg.max_triples:
                if cfg.raise_on_budget:
                    raise ConvergenceError(
                        f"annotation budget exhausted at {state.n_annotated} triples"
                    )
                converged = False
                break
            ingest(cfg.units_per_iteration)

        cost = self.cost_model.price(len(manual_entities), len(manual_triples))
        return AssistedEvaluationResult(
            mu_hat=evidence.mu_hat,
            interval=interval,
            n_annotated=state.n_annotated,
            n_manual=len(manual_triples),
            n_inferred_used=inferred_used,
            n_entities_manual=len(manual_entities),
            cost=cost,
            iterations=iterations,
            converged=converged,
        )
