"""Human-machine collaborative inference (paper Sec. 7, Qi et al. [46]).

Rule-based label propagation that lets verified judgements label
further facts at zero manual cost, and an evaluation loop that plugs
the mechanism into the paper's framework — demonstrating the
integration the paper proposes for aHPD.
"""

from .engine import InferenceEngine
from .evaluation import AssistedEvaluationResult, InferenceAssistedEvaluator
from .generators import default_rules, generate_inferable_kg
from .rules import (
    FunctionalPredicateRule,
    Inference,
    InferenceRule,
    InversePredicateRule,
)

__all__ = [
    "InferenceRule",
    "FunctionalPredicateRule",
    "InversePredicateRule",
    "Inference",
    "InferenceEngine",
    "generate_inferable_kg",
    "default_rules",
    "InferenceAssistedEvaluator",
    "AssistedEvaluationResult",
]
