"""The inference engine: fixpoint label propagation.

Maintains the pool of known labels (manually verified plus inferred)
and propagates every new verification through the rule set to a
fixpoint — an inverse-rule transfer can trigger a functional-rule
cascade and vice versa.  All inference is free: the evaluation layer
charges annotation cost only for manual verifications.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..exceptions import ValidationError
from ..kg.graph import KnowledgeGraph
from .rules import Inference, InferenceRule

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """Propagates verified judgements through logical rules.

    Parameters
    ----------
    kg:
        The graph under audit (rules index it once at construction).
    rules:
        The rule set; order is irrelevant (propagation runs to
        fixpoint).
    """

    def __init__(self, kg: KnowledgeGraph, rules: Sequence[InferenceRule]):
        if not isinstance(kg, KnowledgeGraph):
            raise ValidationError("inference needs a materialised KnowledgeGraph")
        self.kg = kg
        self.rules = tuple(rules)
        for rule in self.rules:
            rule.prepare(kg)
        self._known: dict[int, bool] = {}
        self._inferred: dict[int, Inference] = {}
        self._manual: set[int] = set()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def known(self) -> Mapping[int, bool]:
        """All labels known so far (manual + inferred)."""
        return self._known

    @property
    def num_manual(self) -> int:
        """Manually verified facts."""
        return len(self._manual)

    @property
    def num_inferred(self) -> int:
        """Facts labelled by inference (zero annotation cost)."""
        return len(self._inferred)

    def label_of(self, triple_index: int) -> bool | None:
        """The known label of a triple, or ``None`` if unknown."""
        return self._known.get(int(triple_index))

    def provenance(self, triple_index: int) -> Inference | None:
        """How an inferred label was derived (``None`` for manual)."""
        return self._inferred.get(int(triple_index))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_verification(self, triple_index: int, label: bool) -> list[Inference]:
        """Record a manual judgement and propagate to fixpoint.

        Returns the (possibly empty) list of new inferences.  A
        verification that contradicts an existing known label raises —
        that means either an annotation error or an unsound rule, and
        silently keeping both would corrupt the estimate.
        """
        triple_index = int(triple_index)
        label = bool(label)
        existing = self._known.get(triple_index)
        if existing is not None and existing != label:
            raise ValidationError(
                f"verification of triple {triple_index} ({label}) contradicts "
                f"the known label ({existing})"
            )
        self._manual.add(triple_index)
        self._inferred.pop(triple_index, None)
        if existing is None:
            self._known[triple_index] = label
        return self._propagate([(triple_index, label)])

    def _propagate(self, frontier: list[tuple[int, bool]]) -> list[Inference]:
        produced: list[Inference] = []
        while frontier:
            index, label = frontier.pop()
            for rule in self.rules:
                for inference in rule.infer(index, label, self._known):
                    target = inference.triple_index
                    if target in self._known:
                        if self._known[target] != inference.label:
                            raise ValidationError(
                                f"rule {inference.rule} contradicts the known "
                                f"label of triple {target}"
                            )
                        continue
                    self._known[target] = inference.label
                    self._inferred[target] = inference
                    produced.append(inference)
                    frontier.append((target, inference.label))
        return produced

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def check_soundness(self) -> int:
        """Verify every inferred label against the KG's gold labels.

        Returns the number of inferred labels checked; raises if any
        disagrees with ground truth (an unsound rule for this KG).
        Intended for oracle/simulation settings.
        """
        import numpy as np

        if not self._inferred:
            return 0
        indices = np.asarray(sorted(self._inferred), dtype=np.int64)
        truth = self.kg.labels(indices)
        for index, actual in zip(indices, truth):
            inferred = self._known[int(index)]
            if inferred != bool(actual):
                inference = self._inferred[int(index)]
                raise ValidationError(
                    f"unsound inference: rule {inference.rule} labelled triple "
                    f"{int(index)} as {inferred} but gold is {bool(actual)}"
                )
        return int(indices.size)

    def __repr__(self) -> str:
        return (
            f"InferenceEngine(manual={self.num_manual}, "
            f"inferred={self.num_inferred}, rules={len(self.rules)})"
        )
