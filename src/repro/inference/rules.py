"""Inference rules over verified judgements.

The human-machine collaborative evaluation of Qi et al. [46] — which
the paper names as the framework aHPD "can be integrated into to
enhance efficiency" (Sec. 7) — combines manual annotation with
automatic inference: once some facts are verified, logical constraints
label further facts for free.  This module provides the two rule
families that drive most such inference in practice:

* **Functional predicates** (`FunctionalPredicateRule`): a subject can
  have at most one correct object for a functional relation (a person
  has one birthplace).  A verified-*correct* fact therefore labels all
  sibling facts (same subject, same predicate, different object)
  *incorrect*.
* **Inverse predicates** (`InversePredicateRule`): `(s, p, o)` is
  correct iff `(o, q, s)` is (marriedTo/marriedTo,
  hasCapital/isCapitalOf).  A verified label transfers to the inverse
  fact, in either direction, with the same polarity.

Rules are *sound* with respect to a KG whose gold labels satisfy the
constraints; the engine (:mod:`repro.inference.engine`) checks
soundness in oracle settings and the generator
(:func:`repro.inference.generators.generate_inferable_kg`) produces
KGs where the constraints hold by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..exceptions import ValidationError
from ..kg.graph import KnowledgeGraph

__all__ = ["InferenceRule", "FunctionalPredicateRule", "InversePredicateRule", "Inference"]


@dataclass(frozen=True)
class Inference:
    """One inferred judgement with provenance."""

    triple_index: int
    label: bool
    rule: str
    source_index: int


class InferenceRule(ABC):
    """Derives labels for unverified triples from verified ones."""

    #: Display name used in provenance records.
    name: str = "rule"

    @abstractmethod
    def prepare(self, kg: KnowledgeGraph) -> None:
        """Build whatever index the rule needs over *kg* (called once)."""

    @abstractmethod
    def infer(
        self, triple_index: int, label: bool, known: Mapping[int, bool]
    ) -> Iterator[Inference]:
        """Yield inferences triggered by learning ``triple_index -> label``.

        *known* maps already-labelled triple indices (verified or
        previously inferred); implementations must not re-yield those.
        """


class FunctionalPredicateRule(InferenceRule):
    """At most one correct object per (subject, functional predicate).

    Parameters
    ----------
    predicate:
        The functional relation this rule instance governs.
    """

    def __init__(self, predicate: str):
        if not predicate:
            raise ValidationError("predicate must be non-empty")
        self.predicate = predicate
        self.name = f"functional({predicate})"
        self._siblings: dict[int, tuple[int, ...]] = {}

    def prepare(self, kg: KnowledgeGraph) -> None:
        groups: dict[str, list[int]] = {}
        for index, triple in enumerate(kg.triples):
            if triple.predicate == self.predicate:
                groups.setdefault(triple.subject, []).append(index)
        self._siblings = {}
        for indices in groups.values():
            if len(indices) < 2:
                continue
            group = tuple(indices)
            for index in indices:
                self._siblings[index] = group

    def infer(
        self, triple_index: int, label: bool, known: Mapping[int, bool]
    ) -> Iterator[Inference]:
        if not label:
            # A verified-incorrect fact says nothing about its siblings.
            return
        for sibling in self._siblings.get(triple_index, ()):
            if sibling != triple_index and sibling not in known:
                yield Inference(
                    triple_index=sibling,
                    label=False,
                    rule=self.name,
                    source_index=triple_index,
                )


class InversePredicateRule(InferenceRule):
    """Label transfer between a fact and its inverse fact.

    Parameters
    ----------
    predicate / inverse:
        The relation pair: ``(s, predicate, o)`` holds iff
        ``(o, inverse, s)`` holds.  A symmetric relation passes the same
        name twice.
    """

    def __init__(self, predicate: str, inverse: str):
        if not predicate or not inverse:
            raise ValidationError("predicate names must be non-empty")
        self.predicate = predicate
        self.inverse = inverse
        self.name = f"inverse({predicate},{inverse})"
        self._partner: dict[int, int] = {}

    def prepare(self, kg: KnowledgeGraph) -> None:
        forward: dict[tuple[str, str], int] = {}
        backward: dict[tuple[str, str], int] = {}
        for index, triple in enumerate(kg.triples):
            if triple.predicate == self.predicate:
                forward[(triple.subject, triple.object)] = index
            if triple.predicate == self.inverse:
                backward[(triple.subject, triple.object)] = index
        self._partner = {}
        for (subject, obj), index in forward.items():
            partner = backward.get((obj, subject))
            if partner is not None and partner != index:
                self._partner[index] = partner
                self._partner[partner] = index

    def infer(
        self, triple_index: int, label: bool, known: Mapping[int, bool]
    ) -> Iterator[Inference]:
        partner = self._partner.get(triple_index)
        if partner is not None and partner not in known:
            yield Inference(
                triple_index=partner,
                label=label,
                rule=self.name,
                source_index=triple_index,
            )
