"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The subclasses
are organised by subsystem so that tests and downstream code can make
fine-grained assertions about failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "KGError",
    "EmptyGraphError",
    "UnknownEntityError",
    "UnknownTripleError",
    "AnnotationError",
    "MissingLabelError",
    "SamplingError",
    "InsufficientSampleError",
    "EstimationError",
    "IntervalError",
    "PriorError",
    "OptimizationError",
    "EvaluationError",
    "ConvergenceError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, type, or shape)."""


class KGError(ReproError):
    """Base class for knowledge-graph data-model errors."""


class EmptyGraphError(KGError):
    """An operation required a non-empty knowledge graph."""


class UnknownEntityError(KGError, KeyError):
    """A referenced entity does not exist in the graph."""


class UnknownTripleError(KGError, KeyError):
    """A referenced triple does not exist in the graph."""


class AnnotationError(ReproError):
    """Base class for annotation-subsystem errors."""


class MissingLabelError(AnnotationError, KeyError):
    """A ground-truth correctness label was requested but not available."""


class SamplingError(ReproError):
    """Base class for sampling-strategy errors."""


class InsufficientSampleError(SamplingError):
    """A sample was too small for the requested computation."""


class EstimationError(ReproError):
    """Base class for point-estimation errors."""


class IntervalError(ReproError):
    """Base class for interval-estimation errors."""


class PriorError(IntervalError):
    """An invalid Beta prior was supplied."""


class OptimizationError(IntervalError):
    """A numerical optimizer failed to produce a valid interval."""


class EvaluationError(ReproError):
    """Base class for evaluation-framework errors."""


class ConvergenceError(EvaluationError):
    """The iterative evaluation failed to converge within its budget."""


class ExperimentError(ReproError):
    """An experiment configuration or reproduction step failed."""
