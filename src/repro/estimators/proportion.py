"""The SRS sample-proportion estimator (paper Eq. 2).

Under simple random sampling the estimator of the KG accuracy is the
sample proportion ``mu_hat = tau_S / n_S`` with estimation variance
``mu_hat (1 - mu_hat) / n_S``.  The estimator is unbiased under SRS
(Cochran [10]); the test suite checks this empirically.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_counts
from ..exceptions import ValidationError
from .base import Evidence

__all__ = ["srs_evidence", "srs_evidence_from_labels"]


def srs_evidence(successes: int, trials: int) -> Evidence:
    """Evidence from SRS annotation counts ``(tau_S, n_S)``."""
    successes, trials = check_counts(successes, trials)
    return Evidence.from_counts(successes, trials)


def srs_evidence_from_labels(labels: Sequence[bool] | np.ndarray) -> Evidence:
    """Evidence from a vector of SRS annotation outcomes."""
    arr = np.asarray(labels)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("labels must be a non-empty one-dimensional array")
    if arr.dtype != bool:
        unique = np.unique(arr)
        if not np.all(np.isin(unique, (0, 1))):
            raise ValidationError("labels must be boolean or 0/1 values")
        arr = arr.astype(bool)
    return srs_evidence(int(arr.sum()), int(arr.size))
