"""The TWCS estimator (paper Eq. 3) and its design-effect adjustment.

Under Two-stage Weighted Cluster Sampling the estimator of the KG
accuracy is the unweighted mean of the per-cluster accuracies (clusters
are drawn with probability proportional to size, which makes the plain
mean unbiased), with between-cluster estimation variance

.. math::

    V(\\hat\\mu_{TWCS}) = \\frac{1}{n_C (n_C - 1)}
        \\sum_{i=1}^{n_C} (\\hat\\mu_i - \\hat\\mu_{TWCS})^2

Interval methods that assume binomial sampling (Wilson, and the Beta
posterior behind every credible interval) receive a *design-effect
corrected* effective sample size instead of the raw annotation count
(paper Algorithm 1 lines 11-13, following Kish [25, 26] and [31]).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import InsufficientSampleError, ValidationError
from .base import Evidence

__all__ = [
    "twcs_point_estimate",
    "twcs_evidence",
    "kish_design_effect",
]

#: Guard rails for the estimated design effect.  The estimator
#: ``deff = V_cluster / (mu (1 - mu) / n)`` is noisy for small cluster
#: counts; values outside this band are numerically meaningless and are
#: clipped rather than propagated into the Beta posterior.
_DEFF_MIN = 1e-3
_DEFF_MAX = 1e3


def twcs_point_estimate(cluster_means: Sequence[float] | np.ndarray) -> tuple[float, float]:
    """Point estimate and variance from per-cluster accuracies.

    Returns ``(mu_hat, variance)``.  Requires at least two clusters —
    the between-cluster variance is undefined otherwise.
    """
    means = np.asarray(cluster_means, dtype=float)
    if means.ndim != 1:
        raise ValidationError("cluster_means must be one-dimensional")
    if means.size < 2:
        raise InsufficientSampleError(
            "TWCS variance needs at least 2 sampled clusters, got "
            f"{means.size}"
        )
    if np.any((means < 0.0) | (means > 1.0)):
        raise ValidationError("cluster means must lie in [0, 1]")
    n_c = means.size
    mu_hat = float(means.mean())
    variance = float(np.sum((means - mu_hat) ** 2) / (n_c * (n_c - 1)))
    return mu_hat, variance


def kish_design_effect(mu_hat: float, variance: float, n_annotated: int) -> float:
    """Kish design effect of a clustered sample.

    ``deff = V_design / V_SRS`` where ``V_SRS = mu (1 - mu) / n`` is the
    variance an SRS sample of the same size would have.  Degenerate
    outcomes (``mu_hat`` at a boundary, or zero estimated variance)
    return 1.0 — the limiting-case interval formulas take over there.
    The result is clipped to a wide sanity band to keep downstream
    posterior parameters finite.
    """
    if n_annotated <= 0:
        raise ValidationError(f"n_annotated must be > 0, got {n_annotated}")
    if mu_hat <= 0.0 or mu_hat >= 1.0:
        return 1.0
    srs_variance = mu_hat * (1.0 - mu_hat) / n_annotated
    if variance <= 0.0:
        # All cluster means identical: the estimated deff collapses to 0.
        # Return the floor rather than 0 so n_eff stays finite.
        return _DEFF_MIN
    return float(np.clip(variance / srs_variance, _DEFF_MIN, _DEFF_MAX))


def twcs_evidence(
    cluster_means: Sequence[float] | np.ndarray,
    n_annotated: int,
) -> Evidence:
    """Design-effect adjusted :class:`~repro.estimators.base.Evidence`.

    Parameters
    ----------
    cluster_means:
        Estimated accuracy of each sampled cluster (stage-2 SRS means).
    n_annotated:
        Total number of annotated triples across all clusters.
    """
    if n_annotated <= 0:
        raise ValidationError(f"n_annotated must be > 0, got {n_annotated}")
    mu_hat, variance = twcs_point_estimate(cluster_means)
    deff = kish_design_effect(mu_hat, variance, n_annotated)
    n_effective = n_annotated / deff
    # Keep the corrected posterior parameters consistent: the effective
    # "correct" count preserves the unbiased point estimate.
    tau_effective = mu_hat * n_effective
    return Evidence(
        mu_hat=mu_hat,
        variance=variance,
        n_effective=float(n_effective),
        tau_effective=float(tau_effective),
        n_annotated=int(n_annotated),
    )
