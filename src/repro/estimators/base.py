"""Evidence: the bridge between sampling and interval estimation.

Every interval method in the library consumes the same summary of the
annotated sample — an :class:`Evidence` value.  Sampling strategies know
how to compute it (including design-effect adjustment for clustered
samples, paper Algorithm 1 lines 10-14), and interval methods never see
raw samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_non_negative, check_probability
from ..exceptions import ValidationError

__all__ = ["Evidence"]


@dataclass(frozen=True)
class Evidence:
    """Design-aware summary of an annotated sample.

    Attributes
    ----------
    mu_hat:
        The unbiased point estimate of the KG accuracy.
    variance:
        The estimated variance of ``mu_hat`` under the sampling design
        (used directly by the Wald interval).
    n_effective:
        Effective sample size after design-effect correction; equals the
        raw count under SRS.  May be fractional under complex designs.
    tau_effective:
        Effective number of correct triples, ``mu_hat * n_effective``.
    n_annotated:
        Raw number of annotated triples (used for reporting).
    """

    mu_hat: float
    variance: float
    n_effective: float
    tau_effective: float
    n_annotated: int

    def __post_init__(self) -> None:
        check_probability(self.mu_hat, "mu_hat")
        check_non_negative(self.variance, "variance")
        if self.n_effective <= 0:
            raise ValidationError(
                f"n_effective must be > 0, got {self.n_effective!r}"
            )
        if not 0.0 <= self.tau_effective <= self.n_effective + 1e-9:
            raise ValidationError(
                "tau_effective must lie in [0, n_effective], got "
                f"{self.tau_effective!r} with n_effective={self.n_effective!r}"
            )
        if self.n_annotated < 0:
            raise ValidationError(
                f"n_annotated must be >= 0, got {self.n_annotated!r}"
            )

    @property
    def all_correct(self) -> bool:
        """Whether the annotation outcome was unanimously correct."""
        return self.mu_hat >= 1.0

    @property
    def all_incorrect(self) -> bool:
        """Whether the annotation outcome was unanimously incorrect."""
        return self.mu_hat <= 0.0

    @classmethod
    def from_counts(cls, successes: int, trials: int) -> "Evidence":
        """Evidence for a plain SRS outcome of *successes* / *trials*."""
        if trials <= 0:
            raise ValidationError(f"trials must be > 0, got {trials}")
        if not 0 <= successes <= trials:
            raise ValidationError(
                f"successes must be in [0, trials], got {successes}/{trials}"
            )
        mu_hat = successes / trials
        return cls(
            mu_hat=mu_hat,
            variance=mu_hat * (1.0 - mu_hat) / trials,
            n_effective=float(trials),
            tau_effective=float(successes),
            n_annotated=trials,
        )

    @classmethod
    def from_counts_fast(cls, successes: int, trials: int) -> "Evidence":
        """Non-validating :meth:`from_counts` for trusted hot loops.

        Skips ``__post_init__``'s range checks entirely; Monte-Carlo
        loops that draw ``successes ~ Bin(trials, mu)`` construct
        millions of evidences whose invariants hold by construction.
        Callers with untrusted inputs must use :meth:`from_counts`, the
        public default.
        """
        mu_hat = successes / trials
        evidence = object.__new__(cls)
        object.__setattr__(evidence, "mu_hat", mu_hat)
        object.__setattr__(evidence, "variance", mu_hat * (1.0 - mu_hat) / trials)
        object.__setattr__(evidence, "n_effective", float(trials))
        object.__setattr__(evidence, "tau_effective", float(successes))
        object.__setattr__(evidence, "n_annotated", trials)
        return evidence
