"""Unbiased point estimators for KG accuracy (paper Sec. 2.4)."""

from .base import Evidence
from .bootstrap import bootstrap_cluster_variance
from .cluster import kish_design_effect, twcs_evidence, twcs_point_estimate
from .proportion import srs_evidence, srs_evidence_from_labels

__all__ = [
    "Evidence",
    "srs_evidence",
    "srs_evidence_from_labels",
    "twcs_evidence",
    "twcs_point_estimate",
    "kish_design_effect",
    "bootstrap_cluster_variance",
]
