"""Cluster-bootstrap variance estimation (methodological extension).

The closed-form TWCS variance (paper Eq. 3) is exact for the
mean-of-cluster-means estimator, but survey practice often prefers the
*cluster bootstrap* — resample whole clusters with replacement and take
the variance of the resampled estimator — because it extends unchanged
to estimators without closed forms (ratio estimators, calibrated
weights, ...).  This module provides that alternative so users can
cross-check the design-effect machinery or plug in custom estimators.

For the plain mean the two agree up to the `(n_C - 1) / n_C` bootstrap
bias factor, which `bootstrap_cluster_variance` rescales away by
default; the tests verify the agreement.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InsufficientSampleError, ValidationError
from ..stats.rng import RandomSource, spawn_rng

__all__ = ["bootstrap_cluster_variance"]


def bootstrap_cluster_variance(
    cluster_means: Sequence[float] | np.ndarray,
    replicates: int = 1_000,
    rng: RandomSource = None,
    estimator: Callable[[np.ndarray], float] | None = None,
    rescale: bool = True,
) -> float:
    """Bootstrap variance of a cluster-level estimator.

    Parameters
    ----------
    cluster_means:
        Stage-2 accuracy of each sampled cluster.
    replicates:
        Bootstrap replicates ``B``.
    estimator:
        Statistic computed on each resample; defaults to the mean (the
        TWCS estimator).
    rescale:
        Multiply by ``n_C / (n_C - 1)`` so the plain-mean case is an
        unbiased match for the closed-form Eq. 3 variance (the naive
        bootstrap variance of a mean is biased low by that factor).
    """
    means = np.asarray(cluster_means, dtype=float)
    if means.ndim != 1:
        raise ValidationError("cluster_means must be one-dimensional")
    if means.size < 2:
        raise InsufficientSampleError(
            "cluster bootstrap needs at least 2 sampled clusters"
        )
    replicates = check_positive_int(replicates, "replicates")
    generator = spawn_rng(rng)
    n_c = means.size

    if estimator is None:
        # Vectorised fast path for the default mean estimator.
        draws = generator.integers(0, n_c, size=(replicates, n_c))
        stats = means[draws].mean(axis=1)
    else:
        stats = np.empty(replicates, dtype=float)
        for b in range(replicates):
            resample = means[generator.integers(0, n_c, size=n_c)]
            stats[b] = float(estimator(resample))
    variance = float(stats.var(ddof=1))
    if rescale:
        variance *= n_c / (n_c - 1)
    return variance
