"""Profiled KG generators.

The paper's real datasets (YAGO, NELL, DBPEDIA, FACTBENCH samples) carry
manual crowdsourced annotations and are only partially public.  The
estimation machinery, however, only observes *structure*: cluster sizes,
which entity a sampled triple belongs to, and the correctness label.  So
we regenerate datasets from their published statistics (Table 1):

* exact fact count, cluster count, and ground-truth accuracy;
* skewed cluster sizes with the published mean;
* correctness labels with a configurable intra-cluster correlation
  (errors in real KGs concentrate on problematic entities, which is what
  makes cluster sampling interesting).

See DESIGN.md, "Substitutions", for why this preserves the behaviour the
paper measures.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_positive_int,
    check_probability,
)
from ..exceptions import ValidationError
from ..stats.rng import RandomSource, spawn_rng
from .graph import KnowledgeGraph
from .synthetic import draw_cluster_sizes
from .triple import Triple

__all__ = ["generate_profiled_kg", "generate_labels"]

#: Predicate vocabulary used for generated facts; purely cosmetic but it
#: keeps examples and serialized dumps readable.
_PREDICATES = (
    "bornIn",
    "worksFor",
    "locatedIn",
    "playsFor",
    "directedBy",
    "marriedTo",
    "capitalOf",
    "hasGenre",
    "foundedIn",
    "memberOf",
)


def generate_labels(
    cluster_sizes: np.ndarray,
    accuracy: float,
    rng: RandomSource = None,
    intra_cluster_correlation: float = 0.3,
) -> np.ndarray:
    """Generate correctness labels over clustered triples.

    *intra_cluster_correlation* ``rho`` controls how labels co-vary
    within an entity cluster:

    * ``rho > 0`` — errors concentrate on problematic entities: per-
      cluster accuracies are drawn from a Beta distribution centred on
      *accuracy* with concentration ``kappa = (1 - rho) / rho``.  This is
      the regime of curated KGs (YAGO, NELL, DBPEDIA), where a bad
      extraction pollutes a whole entity.
    * ``rho = 0`` — i.i.d. labels.
    * ``rho < 0`` — labels are *balanced within clusters*: each cluster
      receives as close to ``accuracy * size`` correct triples as
      integer rounding allows.  This models benchmarks like FACTBENCH,
      whose incorrect facts are corrupted variants of each entity's
      correct facts, making cluster means hug the global accuracy (a
      design effect below 1 under cluster sampling).  The magnitude of
      a negative ``rho`` is ignored; only the regime matters.

    After the draw, labels are flipped (uniformly at random) until the
    global count of correct triples equals ``round(accuracy * M)``, so
    the generated KG matches the published ground-truth accuracy
    exactly.
    """
    accuracy = check_probability(accuracy, "accuracy")
    if not -1.0 <= intra_cluster_correlation < 1.0:
        raise ValidationError(
            "intra_cluster_correlation must be in [-1, 1), got "
            f"{intra_cluster_correlation}"
        )
    sizes = np.asarray(cluster_sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.size == 0 or np.any(sizes < 1):
        raise ValidationError("cluster_sizes must be a non-empty array of positive ints")
    rng = spawn_rng(rng)
    total = int(sizes.sum())

    if intra_cluster_correlation < 0.0 and 0.0 < accuracy < 1.0:
        labels = _balanced_cluster_labels(sizes, accuracy, rng)
    elif intra_cluster_correlation == 0.0 or accuracy in (0.0, 1.0):
        labels = rng.random(total) < accuracy
    else:
        kappa = (1.0 - intra_cluster_correlation) / intra_cluster_correlation
        a = max(accuracy * kappa, 1e-9)
        b = max((1.0 - accuracy) * kappa, 1e-9)
        cluster_acc = rng.beta(a, b, size=sizes.size)
        labels = rng.random(total) < np.repeat(cluster_acc, sizes)

    target_correct = int(round(accuracy * total))
    labels = _retarget_labels(labels, target_correct, rng)
    return labels


def _balanced_cluster_labels(
    sizes: np.ndarray, accuracy: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-cluster label allocation as close to *accuracy* as possible.

    Each cluster of size ``s`` gets ``floor(s * accuracy)`` correct
    triples plus one more with probability equal to the fractional part
    (stochastic rounding keeps the expectation exact); the correct
    triples are placed at random positions inside the cluster.
    """
    exact = sizes * accuracy
    counts = np.floor(exact).astype(np.int64)
    counts += rng.random(sizes.size) < (exact - counts)
    labels = np.zeros(int(sizes.sum()), dtype=bool)
    offset = 0
    for size, count in zip(sizes, counts):
        if count > 0:
            chosen = offset + rng.choice(int(size), size=int(count), replace=False)
            labels[chosen] = True
        offset += int(size)
    return labels


def _retarget_labels(labels: np.ndarray, target_correct: int, rng: np.random.Generator) -> np.ndarray:
    """Flip uniformly-chosen labels until exactly *target_correct* are True."""
    labels = labels.copy()
    current = int(labels.sum())
    if current > target_correct:
        flippable = np.flatnonzero(labels)
        chosen = rng.choice(flippable, size=current - target_correct, replace=False)
        labels[chosen] = False
    elif current < target_correct:
        flippable = np.flatnonzero(~labels)
        chosen = rng.choice(flippable, size=target_correct - current, replace=False)
        labels[chosen] = True
    return labels


def generate_profiled_kg(
    name: str,
    num_facts: int,
    num_clusters: int,
    accuracy: float,
    seed: RandomSource = None,
    intra_cluster_correlation: float = 0.3,
    size_dispersion: float = 1.0,
) -> KnowledgeGraph:
    """Generate an in-memory KG matching a published dataset profile.

    Parameters
    ----------
    name:
        Dataset name; used to prefix generated entity identifiers.
    num_facts / num_clusters / accuracy:
        The Table 1 statistics to reproduce exactly.
    seed:
        Random source for sizes, labels, and fact text.
    intra_cluster_correlation:
        Within-cluster label correlation (see :func:`generate_labels`).
    size_dispersion:
        Cluster-size dispersion (see
        :func:`repro.kg.synthetic.draw_cluster_sizes`).
    """
    num_facts = check_positive_int(num_facts, "num_facts")
    num_clusters = check_positive_int(num_clusters, "num_clusters")
    accuracy = check_probability(accuracy, "accuracy")
    rng = spawn_rng(seed)

    sizes = draw_cluster_sizes(num_clusters, num_facts, rng=rng, dispersion=size_dispersion)
    labels = generate_labels(
        sizes, accuracy, rng=rng, intra_cluster_correlation=intra_cluster_correlation
    )

    prefix = name.lower().replace(" ", "_")
    triples: list[Triple] = []
    predicate_ids = rng.integers(0, len(_PREDICATES), size=num_facts)
    object_ids = rng.integers(0, max(4 * num_clusters, 10), size=num_facts)
    fact_idx = 0
    for cluster_id, size in enumerate(sizes):
        subject = f"{prefix}:e{cluster_id:06d}"
        for _ in range(int(size)):
            triples.append(
                Triple(
                    subject=subject,
                    predicate=_PREDICATES[int(predicate_ids[fact_idx])],
                    object=f"{prefix}:v{int(object_ids[fact_idx]):06d}",
                )
            )
            fact_idx += 1
    return KnowledgeGraph(triples, labels)
