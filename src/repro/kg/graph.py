"""In-memory knowledge graph with ground-truth labels.

:class:`KnowledgeGraph` is the concrete backend used for the paper's
small real-world datasets (YAGO, NELL, DBPEDIA, FACTBENCH profiles).
Triples are stored column-wise, sorted by subject so that every entity
cluster owns a contiguous range of the global index space (see
:class:`repro.kg.base.TripleStore`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import EmptyGraphError, UnknownEntityError, ValidationError
from .base import TripleStore
from .triple import Triple

__all__ = ["KnowledgeGraph"]


class KnowledgeGraph(TripleStore):
    """An immutable, fully materialised KG with correctness labels.

    Parameters
    ----------
    triples:
        The facts of the graph.  They are re-ordered internally so that
        triples sharing a subject are contiguous; iteration order
        therefore groups by entity cluster.
    labels:
        Ground-truth correctness flags, aligned with *triples* **as
        given** (the constructor re-orders both consistently).

    Notes
    -----
    The graph is immutable after construction.  Use :meth:`merge` to
    combine graphs (e.g. when modelling evolving KGs).
    """

    def __init__(self, triples: Iterable[Triple], labels: Sequence[bool] | np.ndarray):
        triples = list(triples)
        label_arr = np.asarray(labels, dtype=bool)
        if label_arr.ndim != 1:
            raise ValidationError("labels must be one-dimensional")
        if len(triples) != label_arr.size:
            raise ValidationError(
                f"got {len(triples)} triples but {label_arr.size} labels"
            )
        if not triples:
            raise EmptyGraphError("a KnowledgeGraph requires at least one triple")
        for item in triples:
            if not isinstance(item, Triple):
                raise ValidationError(f"expected Triple instances, got {type(item)!r}")

        # Sort by subject (stable) so clusters are contiguous ranges.
        order = sorted(range(len(triples)), key=lambda i: triples[i].subject)
        self._triples: tuple[Triple, ...] = tuple(triples[i] for i in order)
        self._labels = label_arr[order]
        self._labels.setflags(write=False)

        subjects = [t.subject for t in self._triples]
        names: list[str] = []
        sizes: list[int] = []
        for subject in subjects:
            if names and names[-1] == subject:
                sizes[-1] += 1
            else:
                names.append(subject)
                sizes.append(1)
        self._entity_names: tuple[str, ...] = tuple(names)
        self._sizes = np.asarray(sizes, dtype=np.int64)
        self._sizes.setflags(write=False)
        self._offsets = np.concatenate(([0], np.cumsum(self._sizes)))
        self._offsets.setflags(write=False)
        self._entity_index = {name: i for i, name in enumerate(names)}

    # ------------------------------------------------------------------
    # TripleStore interface
    # ------------------------------------------------------------------

    @property
    def num_triples(self) -> int:
        return len(self._triples)

    @property
    def num_clusters(self) -> int:
        return len(self._entity_names)

    @property
    def cluster_sizes(self) -> np.ndarray:
        return self._sizes

    @property
    def cluster_offsets(self) -> np.ndarray:
        return self._offsets

    def labels(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        idx = self._check_indices(indices)
        return self._labels[idx]

    @property
    def accuracy(self) -> float:
        return float(self._labels.mean())

    # ------------------------------------------------------------------
    # Materialised-graph extras
    # ------------------------------------------------------------------

    @property
    def triples(self) -> tuple[Triple, ...]:
        """All triples, grouped by entity cluster."""
        return self._triples

    @property
    def all_labels(self) -> np.ndarray:
        """Read-only view of every ground-truth label."""
        return self._labels

    @property
    def entity_names(self) -> tuple[str, ...]:
        """Cluster subjects, in cluster-id order."""
        return self._entity_names

    def entity_id(self, subject: str) -> int:
        """Cluster id of *subject*; raises for unknown entities."""
        try:
            return self._entity_index[subject]
        except KeyError:
            raise UnknownEntityError(subject) from None

    def triple(self, index: int) -> Triple:
        """The triple at global *index*."""
        idx = self._check_indices([index])
        return self._triples[int(idx[0])]

    def entity_cluster(self, subject: str) -> tuple[Triple, ...]:
        """The entity cluster ``C_e`` of *subject*, as triples."""
        cluster_id = self.entity_id(subject)
        lo, hi = self._offsets[cluster_id], self._offsets[cluster_id + 1]
        return self._triples[lo:hi]

    def merge(self, other: "KnowledgeGraph") -> "KnowledgeGraph":
        """Return a new graph containing the triples of both graphs.

        Used by the evolving-KG workflow: batches of new content are
        merged into the audited graph before re-evaluation.
        """
        if not isinstance(other, KnowledgeGraph):
            raise ValidationError("can only merge with another KnowledgeGraph")
        triples = list(self._triples) + list(other._triples)
        labels = np.concatenate([self._labels, other._labels])
        return KnowledgeGraph(triples, labels)

    def __len__(self) -> int:
        return self.num_triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(num_triples={self.num_triples}, "
            f"num_clusters={self.num_clusters}, accuracy={self.accuracy:.4f})"
        )
