"""Serialisation of labelled knowledge graphs.

A minimal tab-separated format — one fact per line with its ground-truth
label — so that generated datasets can be persisted, inspected, and
reloaded deterministically:

.. code-block:: text

    # subject<TAB>predicate<TAB>object<TAB>label
    yago:e000001	bornIn	yago:v000042	1

Lines starting with ``#`` are comments.  Labels are ``1`` (correct) or
``0`` (incorrect).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

import numpy as np

from ..exceptions import ValidationError
from .graph import KnowledgeGraph
from .triple import Triple

__all__ = ["save_kg", "load_kg"]

PathLike = Union[str, Path]


def save_kg(kg: KnowledgeGraph, path: PathLike) -> int:
    """Write *kg* to *path* in the labelled-TSV format.

    Returns the number of facts written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    labels = kg.all_labels
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# subject\tpredicate\tobject\tlabel\n")
        for triple, label in zip(kg.triples, labels):
            _check_field(triple.subject)
            _check_field(triple.predicate)
            _check_field(triple.object)
            handle.write(
                f"{triple.subject}\t{triple.predicate}\t{triple.object}\t{int(label)}\n"
            )
    return kg.num_triples


def load_kg(path: PathLike) -> KnowledgeGraph:
    """Load a labelled-TSV file written by :func:`save_kg`."""
    path = Path(path)
    triples: list[Triple] = []
    labels: list[bool] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise ValidationError(
                    f"{path}:{line_no}: expected 4 tab-separated fields, got {len(parts)}"
                )
            subject, predicate, obj, label = parts
            if label not in ("0", "1"):
                raise ValidationError(
                    f"{path}:{line_no}: label must be 0 or 1, got {label!r}"
                )
            triples.append(Triple(subject=subject, predicate=predicate, object=obj))
            labels.append(label == "1")
    if not triples:
        raise ValidationError(f"{path}: no facts found")
    return KnowledgeGraph(triples, np.asarray(labels, dtype=bool))


def _check_field(value: str) -> None:
    if "\t" in value or "\n" in value:
        raise ValidationError(
            f"field {value!r} contains a tab or newline and cannot be serialised"
        )
