"""Abstract triple-store interface shared by all KG backends.

Both the in-memory :class:`~repro.kg.graph.KnowledgeGraph` and the lazy
:class:`~repro.kg.synthetic.SyntheticKG` expose the same *columnar*
view that the sampling layer needs:

* a global triple index space ``0 .. num_triples - 1``;
* entity clusters with contiguous index ranges, described by a
  ``cluster_offsets`` prefix-sum array (cluster ``i`` owns indices
  ``[offsets[i], offsets[i + 1])``);
* vectorised ground-truth labels and subject lookups by index.

Keeping the interface columnar means simple random sampling is a single
``rng.integers`` call and cluster sampling is a single weighted
``rng.choice`` call, even for the 101M-triple synthetic KG.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..exceptions import EmptyGraphError, ValidationError

__all__ = ["TripleStore"]


class TripleStore(ABC):
    """Common interface over concrete KG backends."""

    # ------------------------------------------------------------------
    # Size and structure
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def num_triples(self) -> int:
        """Total number of triples ``M = |T|``."""

    @property
    @abstractmethod
    def num_clusters(self) -> int:
        """Number of entity clusters (distinct subjects)."""

    @property
    @abstractmethod
    def cluster_sizes(self) -> np.ndarray:
        """Integer array of per-cluster triple counts ``M_i``."""

    @property
    @abstractmethod
    def cluster_offsets(self) -> np.ndarray:
        """Prefix sums of :attr:`cluster_sizes` with a leading zero.

        Length is ``num_clusters + 1``; cluster ``i`` owns the global
        triple indices ``[offsets[i], offsets[i + 1])``.
        """

    # ------------------------------------------------------------------
    # Per-triple lookups (vectorised)
    # ------------------------------------------------------------------

    @abstractmethod
    def labels(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Ground-truth correctness labels for *indices* (bool array).

        Only the oracle annotator should consult this; the estimation
        machinery never sees ground truth directly.
        """

    def subjects(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Cluster ids (entity ids) owning each global triple index."""
        idx = self._check_indices(indices)
        # Right-side search maps index offsets[i] .. offsets[i+1]-1 -> i.
        return np.searchsorted(self.cluster_offsets, idx, side="right") - 1

    def cluster_triples(self, cluster_id: int) -> np.ndarray:
        """Global triple indices owned by *cluster_id*."""
        offsets = self.cluster_offsets
        if not 0 <= cluster_id < self.num_clusters:
            raise ValidationError(
                f"cluster_id must be in [0, {self.num_clusters}), got {cluster_id}"
            )
        return np.arange(offsets[cluster_id], offsets[cluster_id + 1], dtype=np.int64)

    def cluster_size(self, cluster_id: int) -> int:
        """Number of triples ``M_i`` in *cluster_id*."""
        if not 0 <= cluster_id < self.num_clusters:
            raise ValidationError(
                f"cluster_id must be in [0, {self.num_clusters}), got {cluster_id}"
            )
        return int(self.cluster_sizes[cluster_id])

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def accuracy(self) -> float:
        """The true accuracy ``mu`` — the proportion of correct triples."""

    @property
    def avg_cluster_size(self) -> float:
        """Mean triples per entity cluster."""
        if self.num_clusters == 0:
            raise EmptyGraphError("graph has no clusters")
        return self.num_triples / self.num_clusters

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _check_indices(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1:
            raise ValidationError("triple indices must be one-dimensional")
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_triples):
            raise ValidationError(
                f"triple indices must be in [0, {self.num_triples}); "
                f"got range [{idx.min()}, {idx.max()}]"
            )
        return idx

    def _require_non_empty(self) -> None:
        if self.num_triples == 0:
            raise EmptyGraphError("operation requires a non-empty graph")
