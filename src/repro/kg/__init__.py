"""Knowledge-graph substrate: data model, generators, and datasets.

The sampling / estimation layers only ever talk to the abstract
:class:`~repro.kg.base.TripleStore` interface; the two concrete backends
are the fully-materialised :class:`~repro.kg.graph.KnowledgeGraph` and
the lazy, 100M-triple-capable :class:`~repro.kg.synthetic.SyntheticKG`.
"""

from .base import TripleStore
from .datasets import (
    PROFILES,
    SYN100M_ACCURACIES,
    DatasetProfile,
    load_dataset,
    load_dbpedia,
    load_factbench,
    load_nell,
    load_syn100m,
    load_yago,
)
from .evolution import UpdateBatchSpec, build_evolving_kg
from .generators import generate_labels, generate_profiled_kg
from .graph import KnowledgeGraph
from .io import load_kg, save_kg
from .queries import PredicateProfile, TripleIndex
from .stats import KGStatistics, describe_kg
from .synthetic import SyntheticKG, draw_cluster_sizes
from .triple import Triple

__all__ = [
    "TripleStore",
    "KnowledgeGraph",
    "SyntheticKG",
    "Triple",
    "DatasetProfile",
    "PROFILES",
    "SYN100M_ACCURACIES",
    "load_dataset",
    "load_yago",
    "load_nell",
    "load_dbpedia",
    "load_factbench",
    "load_syn100m",
    "generate_profiled_kg",
    "generate_labels",
    "draw_cluster_sizes",
    "describe_kg",
    "KGStatistics",
    "save_kg",
    "load_kg",
    "TripleIndex",
    "PredicateProfile",
    "build_evolving_kg",
    "UpdateBatchSpec",
]
