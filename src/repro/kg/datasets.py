"""Paper dataset profiles and loaders (Table 1).

The five evaluation datasets are reproduced from their published
statistics:

=============  ==========  ============  ===============  ========
Dataset        Num. facts  Num. clusters Avg cluster size Accuracy
=============  ==========  ============  ===============  ========
YAGO                1,386           822             1.69      0.99
NELL                1,860           817             2.28      0.91
DBPEDIA             9,344         2,936             3.18      0.85
FACTBENCH           2,800         1,157             2.42      0.54
SYN 100M      101,415,011     5,000,000            20.28  0.9/0.5/0.1
=============  ==========  ============  ===============  ========

The small datasets are materialised by
:func:`repro.kg.generators.generate_profiled_kg`; SYN 100M is served by
the lazy :class:`repro.kg.synthetic.SyntheticKG`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..exceptions import ValidationError
from ..stats.rng import RandomSource
from .generators import generate_profiled_kg
from .graph import KnowledgeGraph
from .synthetic import SyntheticKG

__all__ = [
    "DatasetProfile",
    "PROFILES",
    "SYN100M_ACCURACIES",
    "load_dataset",
    "load_yago",
    "load_nell",
    "load_dbpedia",
    "load_factbench",
    "load_syn100m",
]


@dataclass(frozen=True)
class DatasetProfile:
    """Published statistics of an evaluation dataset (paper Table 1)."""

    name: str
    num_facts: int
    num_clusters: int
    accuracy: float
    #: Within-cluster label correlation used when regenerating the
    #: dataset.  Real KG errors cluster on problematic entities (positive
    #: correlation, default 0.3); FACTBENCH's synthetic incorrect facts
    #: are corrupted variants of each entity's correct facts, which
    #: *balances* labels within clusters (negative correlation) and is
    #: what makes TWCS beat SRS there in the paper's Table 3.
    intra_cluster_correlation: float = 0.3

    @property
    def avg_cluster_size(self) -> float:
        """Mean cluster size implied by the fact/cluster counts."""
        return self.num_facts / self.num_clusters


#: The four small, manually-annotated dataset profiles of Table 1.
PROFILES: Mapping[str, DatasetProfile] = {
    "YAGO": DatasetProfile("YAGO", num_facts=1_386, num_clusters=822, accuracy=0.99),
    "NELL": DatasetProfile("NELL", num_facts=1_860, num_clusters=817, accuracy=0.91),
    "DBPEDIA": DatasetProfile("DBPEDIA", num_facts=9_344, num_clusters=2_936, accuracy=0.85),
    "FACTBENCH": DatasetProfile(
        "FACTBENCH",
        num_facts=2_800,
        num_clusters=1_157,
        accuracy=0.54,
        intra_cluster_correlation=-0.5,
    ),
}

#: Ground-truth accuracies evaluated on SYN 100M in the paper.
SYN100M_ACCURACIES: tuple[float, ...] = (0.9, 0.5, 0.1)

_SYN100M_FACTS = 101_415_011
_SYN100M_CLUSTERS = 5_000_000


def load_dataset(name: str, seed: RandomSource = 0) -> KnowledgeGraph:
    """Load one of the four small profiled datasets by *name*.

    *name* is case-insensitive and must be one of ``YAGO``, ``NELL``,
    ``DBPEDIA``, ``FACTBENCH``.
    """
    key = name.strip().upper()
    if key not in PROFILES:
        known = ", ".join(sorted(PROFILES))
        raise ValidationError(f"unknown dataset {name!r}; expected one of: {known}")
    profile = PROFILES[key]
    return generate_profiled_kg(
        name=profile.name,
        num_facts=profile.num_facts,
        num_clusters=profile.num_clusters,
        accuracy=profile.accuracy,
        seed=seed,
        intra_cluster_correlation=profile.intra_cluster_correlation,
    )


def load_yago(seed: RandomSource = 0) -> KnowledgeGraph:
    """The YAGO sample profile (1,386 facts, mu = 0.99)."""
    return load_dataset("YAGO", seed=seed)


def load_nell(seed: RandomSource = 0) -> KnowledgeGraph:
    """The NELL sample profile (1,860 facts, mu = 0.91)."""
    return load_dataset("NELL", seed=seed)


def load_dbpedia(seed: RandomSource = 0) -> KnowledgeGraph:
    """The DBPEDIA sample profile (9,344 facts, mu = 0.85)."""
    return load_dataset("DBPEDIA", seed=seed)


def load_factbench(seed: RandomSource = 0) -> KnowledgeGraph:
    """The FACTBENCH benchmark profile (2,800 facts, mu = 0.54)."""
    return load_dataset("FACTBENCH", seed=seed)


def load_syn100m(accuracy: float = 0.9, seed: int = 0) -> SyntheticKG:
    """The SYN 100M synthetic KG at the requested ground-truth accuracy.

    101,415,011 triples over 5,000,000 clusters (avg size 20.28), with
    labels generated lazily at the fixed rate *accuracy* — the paper's
    large-scale configuration.
    """
    if accuracy not in SYN100M_ACCURACIES:
        # Allow other rates, but flag the paper's configurations.
        if not 0.0 <= accuracy <= 1.0:
            raise ValidationError(f"accuracy must be in [0, 1], got {accuracy}")
    return SyntheticKG(
        num_triples=_SYN100M_FACTS,
        num_clusters=_SYN100M_CLUSTERS,
        accuracy=accuracy,
        seed=seed,
    )
