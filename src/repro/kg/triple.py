"""Triple-level data model.

Following the paper (Sec. 2.1) we treat triples as first-class citizens
of a KG: a fact is an ``(s, p, o)`` triple whose subject belongs to the
entity set.  :class:`Triple` is deliberately a small immutable value type
— the heavy lifting (cluster indexing, label storage) lives in
:class:`repro.kg.graph.KnowledgeGraph`, which stores triples column-wise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ValidationError

__all__ = ["Triple"]


@dataclass(frozen=True, slots=True)
class Triple:
    """An ``(s, p, o)`` fact.

    Attributes
    ----------
    subject:
        The entity identifier ``s``; determines the entity cluster the
        triple belongs to.
    predicate:
        The relationship identifier ``p``.
    object:
        The object ``o`` — an entity or attribute identifier.
    """

    subject: str
    predicate: str
    object: str

    def __post_init__(self) -> None:
        for field_name in ("subject", "predicate", "object"):
            value = getattr(self, field_name)
            if not isinstance(value, str) or not value:
                raise ValidationError(
                    f"Triple.{field_name} must be a non-empty string, got {value!r}"
                )

    def as_tuple(self) -> tuple[str, str, str]:
        """Return the ``(s, p, o)`` tuple form."""
        return (self.subject, self.predicate, self.object)

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"
