"""Triple-pattern queries over a materialised KG.

A light query layer on :class:`~repro.kg.graph.KnowledgeGraph`: hash
indexes per position, ``(s, p, o)`` pattern matching with ``None`` as a
wildcard, and per-predicate quality profiles.  The stratified sampler
and the examples use it; it also gives downstream users the entity /
relation navigation the paper's graph model (Sec. 2.1) implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

import numpy as np

from ..exceptions import ValidationError
from .graph import KnowledgeGraph
from .triple import Triple

__all__ = ["PredicateProfile", "TripleIndex"]


@dataclass(frozen=True)
class PredicateProfile:
    """Quality profile of one predicate (relation type)."""

    predicate: str
    num_facts: int
    num_subjects: int
    accuracy: float


class TripleIndex:
    """Positional hash indexes over a knowledge graph.

    Parameters
    ----------
    kg:
        The graph to index.  Indexes are built eagerly (one pass per
        position) and the graph is immutable, so the index never goes
        stale.
    """

    def __init__(self, kg: KnowledgeGraph):
        if not isinstance(kg, KnowledgeGraph):
            raise ValidationError("TripleIndex requires a materialised KnowledgeGraph")
        self.kg = kg
        self._by_subject: dict[str, list[int]] = {}
        self._by_predicate: dict[str, list[int]] = {}
        self._by_object: dict[str, list[int]] = {}
        for index, triple in enumerate(kg.triples):
            self._by_subject.setdefault(triple.subject, []).append(index)
            self._by_predicate.setdefault(triple.predicate, []).append(index)
            self._by_object.setdefault(triple.object, []).append(index)

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------

    def match(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        object: Optional[str] = None,
    ) -> np.ndarray:
        """Global indices of triples matching the ``(s, p, o)`` pattern.

        ``None`` is a wildcard.  The most selective bound position is
        scanned; the others filter.
        """
        candidate_lists = []
        if subject is not None:
            candidate_lists.append(self._by_subject.get(subject, []))
        if predicate is not None:
            candidate_lists.append(self._by_predicate.get(predicate, []))
        if object is not None:
            candidate_lists.append(self._by_object.get(object, []))
        if not candidate_lists:
            return np.arange(self.kg.num_triples, dtype=np.int64)
        # Intersect starting from the smallest posting list.
        candidate_lists.sort(key=len)
        result = set(candidate_lists[0])
        for other in candidate_lists[1:]:
            result &= set(other)
        return np.asarray(sorted(result), dtype=np.int64)

    def triples(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        object: Optional[str] = None,
    ) -> Iterator[Triple]:
        """Matching triples, in global-index order."""
        for index in self.match(subject, predicate, object):
            yield self.kg.triples[int(index)]

    def count(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        object: Optional[str] = None,
    ) -> int:
        """Number of triples matching the pattern."""
        return int(self.match(subject, predicate, object).size)

    # ------------------------------------------------------------------
    # Vocabulary and profiles
    # ------------------------------------------------------------------

    @property
    def predicates(self) -> tuple[str, ...]:
        """All predicates, sorted."""
        return tuple(sorted(self._by_predicate))

    @property
    def objects(self) -> tuple[str, ...]:
        """All object values, sorted."""
        return tuple(sorted(self._by_object))

    def predicate_profile(self, predicate: str) -> PredicateProfile:
        """Fact count, subject fan-out, and gold accuracy of a predicate."""
        indices = self._by_predicate.get(predicate)
        if not indices:
            raise ValidationError(f"unknown predicate {predicate!r}")
        arr = np.asarray(indices, dtype=np.int64)
        subjects = {self.kg.triples[int(i)].subject for i in arr}
        return PredicateProfile(
            predicate=predicate,
            num_facts=arr.size,
            num_subjects=len(subjects),
            accuracy=float(self.kg.labels(arr).mean()),
        )

    def predicate_profiles(self) -> Mapping[str, PredicateProfile]:
        """Profiles for every predicate, keyed by name."""
        return {p: self.predicate_profile(p) for p in self.predicates}

    def __repr__(self) -> str:
        return (
            f"TripleIndex(num_triples={self.kg.num_triples}, "
            f"num_predicates={len(self._by_predicate)})"
        )
