"""Evolving-KG stream construction.

Builds the growing-KG scenarios used by the dynamic-audit workflow
(paper Sec. 8): a base snapshot followed by cumulative content batches,
each with its own accuracy.  Promoted into the library so applications
(and the examples / experiments) share one tested implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .._validation import check_positive_int, check_probability
from ..stats.rng import derive_seed
from .generators import generate_profiled_kg
from .graph import KnowledgeGraph

__all__ = ["UpdateBatchSpec", "build_evolving_kg"]


@dataclass(frozen=True)
class UpdateBatchSpec:
    """One content batch arriving on an evolving KG."""

    num_facts: int
    accuracy: float
    #: Intra-cluster label correlation of the batch (see
    #: :func:`repro.kg.generators.generate_labels`).
    intra_cluster_correlation: float = 0.3

    def __post_init__(self) -> None:
        check_positive_int(self.num_facts, "num_facts")
        check_probability(self.accuracy, "accuracy")


def build_evolving_kg(
    base_facts: int,
    base_accuracy: float,
    updates: Sequence[UpdateBatchSpec],
    seed: int = 0,
    avg_cluster_size: float = 3.0,
) -> list[KnowledgeGraph]:
    """Snapshots of a KG growing through *updates*.

    Returns ``len(updates) + 1`` snapshots: the base KG, then one
    snapshot per cumulative batch merge.  Each batch introduces fresh
    entities (real update streams are dominated by new subjects).

    Parameters
    ----------
    base_facts / base_accuracy:
        The initial KG's size and ground-truth accuracy.
    updates:
        Batch specifications, applied in order.
    seed:
        Deterministic seed; batch ``i`` derives an independent stream.
    avg_cluster_size:
        Mean entity-cluster size used for every generated component.
    """
    check_positive_int(base_facts, "base_facts")
    check_probability(base_accuracy, "base_accuracy")
    if avg_cluster_size < 1.0:
        raise ValueError("avg_cluster_size must be >= 1")

    def clusters_for(facts: int) -> int:
        return max(1, round(facts / avg_cluster_size))

    snapshots: list[KnowledgeGraph] = []
    current = generate_profiled_kg(
        "evo-base",
        num_facts=base_facts,
        num_clusters=clusters_for(base_facts),
        accuracy=base_accuracy,
        seed=derive_seed(seed, 0),
    )
    snapshots.append(current)
    for i, spec in enumerate(updates):
        batch = generate_profiled_kg(
            f"evo-upd{i}",
            num_facts=spec.num_facts,
            num_clusters=clusters_for(spec.num_facts),
            accuracy=spec.accuracy,
            seed=derive_seed(seed, i + 1),
            intra_cluster_correlation=spec.intra_cluster_correlation,
        )
        current = current.merge(batch)
        snapshots.append(current)
    return snapshots
