"""Descriptive statistics of a triple store (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import TripleStore

__all__ = ["KGStatistics", "describe_kg"]


@dataclass(frozen=True)
class KGStatistics:
    """The Table 1 statistics of a KG plus a few structural extras.

    Attributes
    ----------
    name:
        A display label for the graph.
    num_facts / num_clusters / avg_cluster_size / accuracy:
        The columns of the paper's Table 1.
    max_cluster_size / min_cluster_size:
        Cluster-size range, useful when choosing the TWCS second-stage
        cap ``m``.
    cluster_size_std:
        Cluster-size dispersion.
    """

    name: str
    num_facts: int
    num_clusters: int
    avg_cluster_size: float
    accuracy: float
    max_cluster_size: int
    min_cluster_size: int
    cluster_size_std: float

    def as_row(self) -> dict[str, object]:
        """Dictionary form used by the Table 1 reproduction."""
        return {
            "dataset": self.name,
            "num_facts": self.num_facts,
            "num_clusters": self.num_clusters,
            "avg_cluster_size": round(self.avg_cluster_size, 2),
            "accuracy": round(self.accuracy, 2),
        }


def describe_kg(kg: TripleStore, name: str = "KG") -> KGStatistics:
    """Compute :class:`KGStatistics` for *kg*."""
    sizes = np.asarray(kg.cluster_sizes)
    return KGStatistics(
        name=name,
        num_facts=kg.num_triples,
        num_clusters=kg.num_clusters,
        avg_cluster_size=kg.avg_cluster_size,
        accuracy=kg.accuracy,
        max_cluster_size=int(sizes.max()),
        min_cluster_size=int(sizes.min()),
        cluster_size_std=float(sizes.std()),
    )
