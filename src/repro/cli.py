"""User-facing command line: audit, inspect, generate, plan, and study.

Subcommands::

    python -m repro stats <kg.tsv>                 describe a labelled KG
    python -m repro generate --dataset NELL -o f.tsv   write a profiled KG
    python -m repro audit <kg.tsv> [options]       run one accuracy audit
    python -m repro partition-audit <kg.tsv> [options]  per-predicate audit
    python -m repro plan --mu 0.9 [options]        predict the budget
    python -m repro study [options]                Monte-Carlo study grid
    python -m repro worker <spool-dir>             serve a spool backend
    python -m repro serve [--socket|--port]        audit-as-a-service daemon
    python -m repro submit [options]               send a study to a service
    python -m repro status [--connect ADDR]        list a service's requests
    python -m repro trace summarize <journal>      digest a trace journal
    python -m repro trace check <journal>          validate journal schema
    python -m repro cache info [--group PREFIX]    inspect a result store

The audit subcommand reads the labelled-TSV format of
:mod:`repro.kg.io`, treats the recorded labels as the (oracle)
annotator, and reports the estimate, interval, and modelled cost; an
optional ledger file records every judgement for suspend/resume.

The partition-audit and study subcommands run through the runtime
layer: ``--workers`` fans work out over processes with bit-identical
results, ``--cache-dir`` persists completed cells so re-runs are
served from disk and interrupted runs resume, ``--chunk-size`` /
``--chunk-seconds`` shard within cells (fixed reps-per-shard vs a
pilot-calibrated seconds-per-shard target), and ``--backend`` picks
where units of work execute (``serial``, ``process``, ``spool[:dir]``
— a file-based work queue — or ``chaos[:inner]`` for fault
injection).  A partition-audit shards over the KG's predicates; a
study cell shards over its repetitions.  ``--max-retries`` /
``--on-error`` control the fault model: how often a failed unit is
resubmitted, and whether an exhausted unit aborts the run or is
quarantined while the rest completes.

The worker subcommand is the other half of the spool backend: it
leases task files from a spool directory (claimed by atomic rename, so
any number of workers can serve one directory — from other terminals,
containers, or hosts sharing a filesystem), executes them, and writes
result files the scheduling run collects.  Unless ``--quiet``, each
executed task logs one attributable line (id, label, seconds,
delivery count) to stderr.

The serve subcommand keeps all of that resident: a long-lived asyncio
service that accepts concurrent study requests over newline-delimited
JSON (unix socket or TCP), builds an immutable per-request
:class:`~repro.runtime.settings.RunContext` for each one, and executes
them over one shared result store — so overlapping requests share
cache hits, and a grid submitted through ``submit`` renders the same
table, byte for byte, as the equivalent ``study`` run.  ``submit``
streams the request's progress events; ``status`` lists every request
the service has seen.

Observability: ``--trace FILE`` (or ``REPRO_TRACE_FILE``) makes any
runtime-routed run append its structured lifecycle events to a JSONL
journal; ``trace summarize`` digests a journal into slowest-cell,
queue-wait, cache, and fault tables (``--format json`` for machines);
``trace check`` validates that every line parses and every event type
is known; ``cache info`` prints entry counts and byte totals of a
result store.
"""

from __future__ import annotations

import argparse
import sys

from .annotation.ledger import AnnotationLedger
from .evaluation.framework import EvaluationConfig, KGAccuracyEvaluator
from .evaluation.planner import SampleSizePlanner
from .exceptions import ReproError
from .intervals.ahpd import AdaptiveHPD
from .intervals.wald import WaldInterval
from .intervals.wilson import WilsonInterval
from .kg.datasets import PROFILES, load_dataset
from .kg.io import load_kg, save_kg
from .kg.stats import describe_kg
from .runtime import ParallelExecutor, RunContext
from .sampling.srs import SimpleRandomSampling
from .sampling.stratified import StratifiedPredicateSampling
from .sampling.twcs import TwoStageWeightedClusterSampling
from .sampling.wcs import WeightedClusterSampling

__all__ = ["main"]

_METHODS = {
    "ahpd": lambda: AdaptiveHPD(),
    "wilson": lambda: WilsonInterval(),
    "wald": lambda: WaldInterval(),
}


def _make_strategy(name: str, m: int):
    name = name.lower()
    if name == "srs":
        return SimpleRandomSampling()
    if name == "twcs":
        return TwoStageWeightedClusterSampling(m=m)
    if name == "wcs":
        return WeightedClusterSampling()
    if name == "strat":
        return StratifiedPredicateSampling()
    raise ReproError(f"unknown strategy {name!r}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Knowledge-graph accuracy auditing with credible intervals.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="describe a labelled KG file")
    stats.add_argument("kg", help="labelled-TSV knowledge graph file")

    gen = sub.add_parser("generate", help="write a profiled dataset to TSV")
    gen.add_argument(
        "--dataset", required=True, choices=sorted(PROFILES), help="profile name"
    )
    gen.add_argument("--out", "-o", required=True, help="output TSV path")
    gen.add_argument("--seed", type=int, default=0)

    audit = sub.add_parser("audit", help="audit the accuracy of a KG file")
    audit.add_argument("kg", help="labelled-TSV knowledge graph file")
    audit.add_argument(
        "--strategy",
        default="twcs",
        choices=("srs", "twcs", "wcs", "strat"),
        help="sampling strategy (default: twcs, the paper's recommendation)",
    )
    audit.add_argument("--m", type=int, default=3, help="TWCS stage-2 cap")
    audit.add_argument(
        "--method",
        default="ahpd",
        choices=sorted(_METHODS),
        help="interval method (default: ahpd)",
    )
    audit.add_argument("--alpha", type=float, default=0.05)
    audit.add_argument("--epsilon", type=float, default=0.05)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument(
        "--ledger", help="TSV file recording every judgement (suspend/resume)"
    )

    partition = sub.add_parser(
        "partition-audit",
        help="audit every predicate of a KG file (parallel, cached)",
    )
    partition.add_argument("kg", help="labelled-TSV knowledge graph file")
    partition.add_argument("--alpha", type=float, default=0.05)
    partition.add_argument(
        "--epsilon", type=float, default=0.05, help="per-partition MoE threshold"
    )
    partition.add_argument(
        "--min-per-partition",
        type=int,
        default=30,
        help="stop-rule floor per partition (default: 30)",
    )
    partition.add_argument(
        "--max-triples",
        type=int,
        default=50_000,
        help="global annotation budget (default: 50000)",
    )
    partition.add_argument("--seed", type=int, default=0)
    _add_runtime_options(partition)

    plan = sub.add_parser("plan", help="predict the annotation budget")
    plan.add_argument("--mu", type=float, required=True, help="expected accuracy")
    plan.add_argument("--alpha", type=float, default=0.05)
    plan.add_argument("--epsilon", type=float, default=0.05)
    plan.add_argument(
        "--entities-per-triple",
        type=float,
        default=1.0,
        help="distinct-entity fraction of the sample (1.0 ~ SRS, 1/m ~ TWCS)",
    )

    study = sub.add_parser(
        "study", help="run a Monte-Carlo study grid (parallel, cached, resumable)"
    )
    study.add_argument(
        "--datasets",
        default="NELL",
        help="comma-separated profile names (default: NELL); "
        f"known: {', '.join(sorted(PROFILES))}",
    )
    study.add_argument(
        "--strategies",
        default="srs,twcs",
        help="comma-separated strategies from srs,twcs,wcs,strat (default: srs,twcs)",
    )
    study.add_argument(
        "--methods",
        default="wald,wilson,ahpd",
        help="comma-separated interval methods (default: wald,wilson,ahpd)",
    )
    study.add_argument("--reps", type=int, default=100, help="repetitions per cell")
    study.add_argument("--m", type=int, default=3, help="TWCS stage-2 cap")
    study.add_argument("--alpha", type=float, default=0.05)
    study.add_argument("--epsilon", type=float, default=0.05)
    study.add_argument("--seed", type=int, default=0)
    _add_runtime_options(study)

    worker = sub.add_parser(
        "worker",
        help="serve a spool directory: lease, execute, and answer tasks",
    )
    worker.add_argument(
        "spool",
        nargs="?",
        default=None,
        help="spool directory (default: $REPRO_SPOOL_DIR)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="queue polling interval while idle (default: 0.1)",
    )
    worker.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N tasks (default: run until stopped)",
    )
    worker.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit once the queue has stayed empty this long "
        "(default: run until stopped)",
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease-heartbeat interval while executing a task; keep it "
        "well below the scheduler's reclaim age (default: 20)",
    )
    worker.add_argument(
        "--redeliver-cap",
        type=int,
        default=None,
        metavar="N",
        help="deliveries before a repeatedly-requeued task is buried "
        "in dead/ (default: 5)",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-task lines"
    )

    serve = sub.add_parser(
        "serve",
        help="run the audit service: concurrent study requests over "
        "newline-delimited JSON, one shared result store",
    )
    endpoint = serve.add_mutually_exclusive_group()
    endpoint.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="listen on a unix socket at PATH (default: TCP)",
    )
    endpoint.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default: 0, pick a free port)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write one JSONL trace journal per request under DIR "
        "(default: journal only if --trace/$REPRO_TRACE_FILE is set)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        metavar="N",
        help="requests executing simultaneously (default: 8)",
    )
    serve.add_argument(
        "--solve-batch-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="coalescing window for cross-request interval-solve "
        "batching; 0 disables it (default: "
        "$REPRO_SOLVE_BATCH_WINDOW or 0.005; never changes results)",
    )
    serve.add_argument(
        "--solve-batch-max",
        type=int,
        default=None,
        metavar="N",
        help="max coalesced callers per solve-batch flush "
        "(default: $REPRO_SOLVE_BATCH_MAX or 64)",
    )
    _add_runtime_options(serve)

    submit = sub.add_parser(
        "submit",
        help="submit one study grid to a running audit service",
    )
    submit.add_argument(
        "--connect",
        default=None,
        metavar="ADDR",
        help="service endpoint: unix-socket path or host:port "
        "(default: $REPRO_SERVICE)",
    )
    for grid_arg in (
        ("--datasets", dict(default="NELL")),
        ("--strategies", dict(default="srs,twcs")),
        ("--methods", dict(default="wald,wilson,ahpd")),
        ("--reps", dict(type=int, default=100)),
        ("--m", dict(type=int, default=3)),
        ("--alpha", dict(type=float, default=0.05)),
        ("--epsilon", dict(type=float, default=0.05)),
        ("--seed", dict(type=int, default=0)),
    ):
        submit.add_argument(grid_arg[0], **grid_arg[1])
    # Per-request context overrides: the subset of runtime knobs a
    # client may set (the store is the service's, and trace journals
    # are assigned per request by the service).
    submit.add_argument("--workers", type=int, default=None)
    submit.add_argument("--backend", default=None)
    submit.add_argument("--chunk-size", type=int, default=None)
    submit.add_argument("--chunk-seconds", type=float, default=None)
    submit.add_argument("--max-retries", type=int, default=None, metavar="N")
    submit.add_argument("--on-error", default=None, choices=("raise", "continue"))
    submit.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    status = sub.add_parser(
        "status", help="list every request a running audit service has seen"
    )
    status.add_argument(
        "--connect",
        default=None,
        metavar="ADDR",
        help="service endpoint: unix-socket path or host:port "
        "(default: $REPRO_SERVICE)",
    )
    status.add_argument(
        "--ping",
        action="store_true",
        help="print the liveness summary instead of the request list",
    )
    status.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the service to finish in-flight requests and exit",
    )

    trace = sub.add_parser(
        "trace", help="inspect a JSONL trace journal written via --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="digest a journal: slowest cells, queue-wait, cache/fault tables",
    )
    summarize.add_argument("journal", help="JSONL trace journal file")
    summarize.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="output format (default: text)",
    )
    summarize.add_argument(
        "--run-id",
        default=None,
        help="restrict the aggregate to one run of an interleaved journal",
    )
    summarize.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="slowest units to list (default: 10)",
    )
    check = trace_sub.add_parser(
        "check",
        help="validate a journal: every line parses, every event type known",
    )
    check.add_argument("journal", help="JSONL trace journal file")

    cache = sub.add_parser(
        "cache", help="inspect a result-store cache directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    info = cache_sub.add_parser(
        "info", help="entry counts, byte totals, and per-group breakdown"
    )
    info.add_argument(
        "--cache-dir",
        default=None,
        help="result-store directory (default: $REPRO_CACHE_DIR)",
    )
    info.add_argument(
        "--group",
        default=None,
        metavar="PREFIX",
        help="only show shard-resume groups whose token starts with PREFIX",
    )
    return parser


def _add_runtime_options(parser: argparse.ArgumentParser) -> None:
    """The runtime-layer knobs shared by the parallel subcommands."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-store directory for caching / resume "
        "(default: $REPRO_CACHE_DIR or no cache)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="within-cell sharding granularity: split each cell's work "
        "units into chunks of at most this many and fan the chunks out "
        "over the workers, merging bit-identically "
        "(default: $REPRO_CHUNK_SIZE or no sharding)",
    )
    parser.add_argument(
        "--chunk-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="adaptive sharding: target this many wall-clock seconds "
        "per chunk, calibrated from a timed pilot shard; mutually "
        "exclusive with --chunk-size "
        "(default: $REPRO_CHUNK_SECONDS or off)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execution backend: serial, process, spool[:dir] "
        "(a spool-directory work queue served by 'python -m repro "
        "worker' processes), or chaos[:inner] for fault injection "
        "(default: $REPRO_BACKEND or automatic)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="resubmissions allowed per failed unit of work, on a "
        "deterministic backoff schedule "
        "(default: $REPRO_MAX_RETRIES or 0, fail fast)",
    )
    parser.add_argument(
        "--on-error",
        default=None,
        choices=("raise", "continue"),
        help="after retries run out: 'raise' aborts the run, "
        "'continue' quarantines the failed cell and keeps going "
        "(default: $REPRO_ON_ERROR or raise)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="append structured lifecycle events (JSONL) to this journal; "
        "digest it later with 'python -m repro trace summarize' "
        "(default: $REPRO_TRACE_FILE or off)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=("auto", "numpy", "native"),
        help="interval solver kernel: the numpy reference, the "
        "JIT-compiled native kernel, or auto (native when numba is "
        "available, loud fallback otherwise); results are identical "
        "either way (default: $REPRO_KERNEL or numpy)",
    )
    parser.add_argument(
        "--solve-table",
        type=int,
        default=None,
        metavar="N",
        help="serve integer-count interval solves with n <= N from a "
        "precomputed table persisted beside the result store; 0 "
        "disables (default: $REPRO_SOLVE_TABLE or 2048)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )


def _context_from(args: argparse.Namespace, progress: bool = True) -> RunContext:
    """Resolve the :class:`RunContext` a parallel subcommand asked for."""
    return RunContext(
        workers=args.workers,
        store=args.cache_dir,
        progress=progress and not args.quiet,
        chunk_size=args.chunk_size,
        chunk_seconds=args.chunk_seconds,
        backend=args.backend,
        max_retries=args.max_retries,
        on_error=args.on_error,
        trace=args.trace,
        kernel=args.kernel,
        solve_table=args.solve_table,
    )


def _executor_from(args: argparse.Namespace) -> ParallelExecutor:
    """Build the runtime executor a parallel subcommand asked for."""
    return ParallelExecutor.from_context(_context_from(args))


def _cmd_stats(args: argparse.Namespace) -> int:
    kg = load_kg(args.kg)
    stats = describe_kg(kg, name=args.kg)
    print(f"facts            : {stats.num_facts}")
    print(f"entity clusters  : {stats.num_clusters}")
    print(f"avg cluster size : {stats.avg_cluster_size:.2f}")
    print(f"max cluster size : {stats.max_cluster_size}")
    print(f"gold accuracy    : {stats.accuracy:.4f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    kg = load_dataset(args.dataset, seed=args.seed)
    written = save_kg(kg, args.out)
    print(f"wrote {written} labelled facts to {args.out}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    kg = load_kg(args.kg)
    ledger = AnnotationLedger() if args.ledger else None
    evaluator = KGAccuracyEvaluator(
        kg=kg,
        strategy=_make_strategy(args.strategy, args.m),
        method=_METHODS[args.method](),
        config=EvaluationConfig(alpha=args.alpha, epsilon=args.epsilon),
        ledger=ledger,
    )
    result = evaluator.run(rng=args.seed)
    print(f"estimated accuracy : {result.mu_hat:.4f}")
    print(f"interval           : {result.interval}")
    print(f"margin of error    : {result.moe:.4f} (threshold {args.epsilon})")
    print(f"annotated triples  : {result.n_triples}")
    print(f"distinct entities  : {result.n_entities}")
    print(f"annotation cost    : {result.cost_hours:.2f} hours")
    if ledger is not None:
        path = ledger.to_tsv(args.ledger)
        print(f"judgement ledger   : {path} ({len(ledger)} entries)")
    return 0


def _cmd_partition_audit(args: argparse.Namespace) -> int:
    from .evaluation.partitioned import audit_by_predicate

    kg = load_kg(args.kg)
    result = audit_by_predicate(
        kg,
        alpha=args.alpha,
        epsilon=args.epsilon,
        min_per_partition=args.min_per_partition,
        max_triples=args.max_triples,
        rng=args.seed,
        dataset=f"file:{args.kg}",
        executor=_executor_from(args),
    )
    print(
        f"{'predicate':<20} {'share':>7} {'annotated':>9} {'estimate':>9} "
        f"{'interval':<18} {'converged':>9}"
    )
    for audit in sorted(result.partitions, key=lambda p: p.mu_hat):
        cell = f"[{audit.interval.lower:.3f}, {audit.interval.upper:.3f}]"
        print(
            f"{audit.partition:<20} {audit.weight:>7.1%} "
            f"{audit.n_annotated:>9} {audit.mu_hat:>9.3f} {cell:<18} "
            f"{'yes' if audit.converged else 'no':>9}"
        )
    print(
        f"\nglobal accuracy    : {result.global_mu_hat:.4f} "
        f"(interval {result.global_interval})"
    )
    print(f"annotated triples  : {result.cost.num_triples}")
    print(f"annotation cost    : {result.cost_hours:.2f} hours")
    worst = result.worst_partition
    print(
        f"curation priority  : '{worst.partition}' — estimated "
        f"{worst.mu_hat:.0%} accurate, {worst.weight:.0%} of the KG"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    planner = SampleSizePlanner(
        config=EvaluationConfig(alpha=args.alpha, epsilon=args.epsilon),
        entities_per_triple=args.entities_per_triple,
    )
    plans = planner.compare(
        {"Wald": WaldInterval(), "Wilson": WilsonInterval(), "aHPD": AdaptiveHPD()},
        mu=args.mu,
    )
    print(f"predicted budget for mu ~ {args.mu}, alpha={args.alpha}, eps={args.epsilon}:")
    for name in ("Wald", "Wilson", "aHPD"):
        plan = plans[name]
        print(
            f"  {name:<8} {plan.n_triples:>6} triples  "
            f"~{plan.cost_hours:6.2f} annotation hours"
        )
    return 0


def _study_request(args: argparse.Namespace) -> "StudyRequest":
    """The :class:`StudyRequest` of a ``study``/``submit`` invocation."""
    from .runtime.service import StudyRequest

    return StudyRequest(
        datasets=args.datasets,
        strategies=args.strategies,
        methods=args.methods,
        repetitions=args.reps,
        m=args.m,
        alpha=args.alpha,
        epsilon=args.epsilon,
        seed=args.seed,
    )


def _cmd_study(args: argparse.Namespace) -> int:
    # The plan and table come from the same StudyRequest code path the
    # audit service uses, so a grid run here is byte-identical to the
    # same grid submitted over `python -m repro submit`.
    from .runtime.service import render_study_table

    request = _study_request(args)
    plan = request.build_plan()
    outcome = _executor_from(args).run(plan)
    print(render_study_table(plan, outcome))
    for failure in outcome.failures:
        print(f"FAILED {failure.summary()}", file=sys.stderr)
    print(outcome.summary())
    return 1 if outcome.failures else 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .runtime.backends.spool import (
        _DEFAULT_HEARTBEAT,
        _DEFAULT_REDELIVER_CAP,
        run_worker,
    )

    def log(message: str) -> None:
        print(f"[worker] {message}", file=sys.stderr, flush=True)

    try:
        executed = run_worker(
            args.spool,
            poll_interval=args.poll,
            max_tasks=args.max_tasks,
            idle_timeout=args.idle_timeout,
            log=None if args.quiet else log,
            heartbeat_seconds=(
                _DEFAULT_HEARTBEAT if args.heartbeat is None else args.heartbeat
            ),
            redeliver_cap=(
                _DEFAULT_REDELIVER_CAP
                if args.redeliver_cap is None
                else args.redeliver_cap
            ),
        )
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print(f"executed {executed} task(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .runtime.service import AuditService

    service = AuditService(
        defaults=_context_from(args, progress=False),
        trace_dir=args.trace_dir,
        max_concurrent=args.max_concurrent,
        solve_batch_window=args.solve_batch_window,
        solve_batch_max=args.solve_batch_max,
        quiet=args.quiet,
    )
    try:
        if args.socket is not None:
            service.run(socket_path=args.socket)
        else:
            service.run(host=args.host, port=args.port)
    except KeyboardInterrupt:
        print("serve interrupted", file=sys.stderr)
        return 130
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .runtime.service import submit_request
    from .runtime.settings import resolve_service_address

    context = {
        key: value
        for key, value in (
            ("workers", args.workers),
            ("backend", args.backend),
            ("chunk_size", args.chunk_size),
            ("chunk_seconds", args.chunk_seconds),
            ("max_retries", args.max_retries),
            ("on_error", args.on_error),
        )
        if value is not None
    }

    def on_event(event: dict) -> None:
        kind = event["event"]
        if kind == "accepted" and not args.quiet:
            print(
                f"[{event['id']}] accepted: {event['cells']} cell(s)",
                file=sys.stderr,
            )
        elif kind == "progress" and not args.quiet:
            label = event.get("label") or ""
            cached = " (cached)" if event.get("cached") else ""
            print(
                f"[{event['id']}] {event['done']}/{event['total']} "
                f"{label}{cached}",
                file=sys.stderr,
            )

    event = submit_request(
        resolve_service_address(args.connect),
        request=_study_request(args).to_payload(),
        context=context,
        on_event=on_event,
    )
    if event["event"] == "failed":
        print(f"error: {event['error']}", file=sys.stderr)
        for line in event.get("failures", []):
            print(f"FAILED {line}", file=sys.stderr)
        return 1
    # Stdout carries exactly the table `python -m repro study` prints,
    # so service results diff clean against standalone runs.
    print(event["table"])
    for line in event["failures"]:
        print(f"FAILED {line}", file=sys.stderr)
    if not args.quiet:
        print(
            f"[{event['id']}] {event['cells']} cell(s), "
            f"{event['cache_hits']} cached, {event['backend']} backend, "
            f"{event['seconds']:.2f}s",
            file=sys.stderr,
        )
    return event["exit_code"]


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from .runtime.service import ping_service, service_status, shutdown_service
    from .runtime.settings import resolve_service_address

    address = resolve_service_address(args.connect)
    if args.shutdown:
        shutdown_service(address)
        print("service shutting down")
        return 0
    if args.ping:
        print(json.dumps(ping_service(address), indent=2, sort_keys=True))
        return 0
    snapshot = service_status(address)
    requests = snapshot.get("requests", [])
    if not requests:
        print("no requests yet")
        return 0
    for record in requests:
        grid = record["request"]
        spec = (
            f"{','.join(grid['datasets'])} × {','.join(grid['strategies'])} "
            f"× {','.join(grid['methods'])} reps={grid['repetitions']}"
        )
        line = f"{record['id']:<8} {record['status']:<8} {spec}"
        if record["status"] == "done":
            line += (
                f"  cells={record['cells']} cache_hits={record['cache_hits']}"
                f" seconds={record['seconds']}"
            )
        elif record["error"]:
            line += f"  error={record['error']}"
        print(line)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .runtime.telemetry import read_journal, render_summary, summarize_journal

    if args.trace_command == "check":
        records = read_journal(args.journal)
        runs = {record["run_id"] for record in records}
        print(
            f"{args.journal}: {len(records)} events across {len(runs)} "
            f"run(s), all schema-valid"
        )
        return 0
    summary = summarize_journal(
        args.journal, run_id=args.run_id, top=args.top
    )
    print(render_summary(summary, fmt=args.format))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .runtime import ResultStore
    from .runtime.settings import resolve_cache_dir

    cache_dir = resolve_cache_dir(args.cache_dir)
    if cache_dir is None:
        raise ReproError(
            "cache info needs a store: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    stats = ResultStore(cache_dir).stats(group_prefix=args.group)
    print(f"store            : {stats['root']}")
    print(f"entries          : {stats['entries']}")
    print(f"total bytes      : {stats['bytes']:,}")
    print(
        f"cell entries     : {stats['cells']['entries']} "
        f"({stats['cells']['bytes']:,} bytes)"
    )
    grouped = sum(entry["entries"] for entry in stats["groups"].values())
    print(f"shard entries    : {grouped} in {len(stats['groups'])} group(s)")
    for group, entry in stats["groups"].items():
        print(
            f"  {group[:16]}…  {entry['entries']:>5} entries  "
            f"{entry['bytes']:>12,} bytes"
        )
    from .intervals.table import sidecar_summary
    from .runtime.settings import resolve_solve_table

    sidecars = sidecar_summary(cache_dir)
    print(f"solve tables     : {sidecars['entries']} "
          f"({sidecars['bytes']:,} bytes, {sidecars['rows']} rows)")
    print(f"  sidecar path   : {sidecars['path']}")
    print(f"  n cap (env)    : {resolve_solve_table(None)}")
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "generate": _cmd_generate,
    "audit": _cmd_audit,
    "partition-audit": _cmd_partition_audit,
    "plan": _cmd_plan,
    "study": _cmd_study,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "trace": _cmd_trace,
    "cache": _cmd_cache,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
