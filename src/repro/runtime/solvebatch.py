"""Cross-request interval-solve batching for the audit service.

The PR 1 batch engine (:mod:`repro.intervals.batch`) amortises solve
overhead across *rows*, but each service request still drives its own
evaluation loop: N small concurrent requests pay N interpreter-bound
dispatches into the same vectorised kernels.  :class:`SolveBroker`
closes that gap.  It sits between the evaluation loops of concurrent
requests (installed as the ambient pool of
:meth:`repro.intervals.base.IntervalMethod.solve_batch` via
:func:`~repro.intervals.base.use_solve_pool`) and coalesces their
pending solves over a short window, flushing each group as **one**
``compute_batch`` call through
:func:`~repro.intervals.batch.compute_batch_pooled`.

Grouping and correctness
------------------------

Pending work is grouped by ``(method, alpha)``, with the method keyed
through :func:`~repro.runtime.cells.method_payload` — a primitive tuple
capturing class, priors and solver — so two requests configured with
*equal* methods coalesce even though they hold distinct instances.
Methods the payload cannot encode fall back to identity keying and
simply never cross-coalesce (still correct, just unbatched across
requests).

When a small-n solve table (:mod:`repro.intervals.table`) is installed,
each entry captures its caller's ambient table at enqueue time; the
flush serves table-eligible entries by lookup — building the table
once, on the leader's thread, for every pooled caller to share — and
pools only the remainder.  Warm-table solves never reach the broker at
all: ``solve_batch`` consults the table (without building) before
enqueueing.

The broker is also fork-aware: a fork-start process-pool worker clones
the submitting thread, context (and any installed channel) included,
but the clone's leader threads and pending callers don't exist on the
child's side of the fork — so solves in any process other than the
broker's own compute directly instead of enqueueing (bit-identical,
just unbatched).

Because every batch kernel is row-independent, the slice a caller gets
back from a pooled flush is **bit-identical** to the ``compute_batch``
it would have run alone; the broker changes wall-clock, never numbers.
That contract is pinned by a hypothesis property over seeded concurrent
schedules in ``tests/test_runtime_service.py``.

Flush policy
------------

The first caller into an empty group becomes the group's *leader* and
waits on the broker's condition variable; later callers (followers)
append their segment and block on a per-entry event.  The leader
flushes when the first of these holds:

* the group reached ``max_batch`` coalesced callers;
* the coalescing window expired;
* every attached participant is blocked in a solve — nobody is left to
  feed the batch, so waiting longer buys nothing (this is what makes a
  lone request pay ~zero added latency: it is the only participant, so
  its own arrival triggers an immediate flush);
* the broker is closing.

The flush itself runs *outside* the broker lock, so other groups keep
coalescing while one solves.  If a pooled flush raises, the leader
falls back to per-entry ``compute_batch`` calls so one caller's bad
evidence cannot poison its batch-mates.

Telemetry: each caller reports the flush it rode on its **own** run's
:class:`~repro.runtime.telemetry.RunTelemetry` bus (as a
``solve_batch_flush`` event) from its own thread, keeping per-run
journals single-threaded and per-request journal files uncorrupted.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import TYPE_CHECKING, Any, Sequence

from ..intervals.base import active_solve_table
from ..intervals.batch import compute_batch_pooled
from ..intervals.payloads import method_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..estimators.base import Evidence
    from ..intervals.base import IntervalMethod
    from ..intervals.batch import BatchIntervals
    from .telemetry import RunTelemetry

__all__ = ["BrokerChannel", "SolveBroker"]


class _Entry:
    """One caller's pending segment within a solve group."""

    __slots__ = ("channel", "evidences", "ready", "result", "error", "meta", "table")

    def __init__(
        self, channel: "BrokerChannel", evidences: tuple, table: Any = None
    ) -> None:
        self.channel = channel
        self.evidences = evidences
        self.ready = threading.Event()
        self.result: "BatchIntervals | None" = None
        self.error: BaseException | None = None
        self.meta: dict[str, Any] | None = None
        # The caller's ambient solve table, captured at enqueue time so
        # the flush (which runs on the leader's thread, under the
        # leader's context) serves each entry against *its* table.
        self.table = table


class _Group:
    """Pending entries for one ``(method, alpha)`` solve key."""

    __slots__ = ("method", "alpha", "entries", "deadline")

    def __init__(
        self, method: "IntervalMethod", alpha: float, deadline: float
    ) -> None:
        self.method = method
        self.alpha = alpha
        self.entries: list[_Entry] = []
        self.deadline = deadline


class SolveBroker:
    """Coalesces interval solves from concurrent runs into shared batches.

    Parameters
    ----------
    window:
        Maximum seconds a pending solve is held open for co-batching.
        ``0`` turns the broker into a transparent pass-through (every
        solve computes directly).
    max_batch:
        Coalesced-caller count at which a group flushes immediately.

    One broker is shared by a whole :class:`~repro.runtime.service`
    process; each run attaches a :class:`BrokerChannel` (pairing the
    broker with that run's telemetry) and installs it as the ambient
    solve pool for the duration of its plan execution.
    """

    name = "solve-broker"

    def __init__(self, window: float = 0.005, max_batch: int = 64) -> None:
        from .settings import resolve_solve_batch_max, resolve_solve_batch_window

        self.window = resolve_solve_batch_window(window)
        self.max_batch = resolve_solve_batch_max(max_batch)
        self._cond = threading.Condition()
        # Owning process: the fork-start process pool clones the
        # submitting thread, whose context may carry an installed
        # BrokerChannel.  The clone's leader threads don't exist on the
        # child's side of the fork (nor do its pending groups' callers),
        # so a forked worker joining an inherited broker copy would wait
        # forever.  _solve compares against this pid and computes
        # directly in any process that didn't create the broker.
        self._pid = os.getpid()
        self._groups: dict[tuple, _Group] = {}
        self._participants = 0
        self._waiting = 0
        self._closed = False
        self._flush_ids = itertools.count(1)
        # Lifetime flush statistics (service `ping` / tests).
        self.flushes = 0
        self.coalesced_flushes = 0
        self.rows_solved = 0

    # -- lifecycle -----------------------------------------------------

    def channel(self, telemetry: "RunTelemetry | None" = None) -> "BrokerChannel":
        """A per-run handle pairing this broker with *telemetry*."""
        return BrokerChannel(self, telemetry)

    def close(self) -> None:
        """Flush every pending group and stop coalescing.

        Waiting leaders wake and flush their groups immediately; solves
        arriving after close compute directly (correct, just unbatched),
        so drain-on-shutdown never strands a caller.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def describe(self) -> dict[str, Any]:
        """JSON-ready broker summary (service ``ping`` output)."""
        return {
            "window": self.window,
            "max_batch": self.max_batch,
            "flushes": self.flushes,
            "coalesced_flushes": self.coalesced_flushes,
            "rows_solved": self.rows_solved,
        }

    def _attach(self) -> None:
        with self._cond:
            self._participants += 1

    def _detach(self) -> None:
        with self._cond:
            self._participants -= 1
            # One fewer feeder: leaders re-check all-waiting.
            self._cond.notify_all()

    # -- solving -------------------------------------------------------

    def _solve(
        self,
        channel: "BrokerChannel",
        method: "IntervalMethod",
        evidences: Sequence["Evidence"],
        alpha: float,
    ) -> "BatchIntervals":
        evidences = tuple(evidences)
        table = active_solve_table()
        if (
            self._closed
            or self.window <= 0.0
            or not evidences
            or os.getpid() != self._pid
        ):
            # Pass-through solves still get table service (with build:
            # nobody is pooled behind this caller), matching what
            # solve_batch would have done with no pool installed.
            if table is not None:
                served = table.serve(method, evidences, alpha, build=True)
                if served is not None:
                    return served
            return method.compute_batch(evidences, alpha)
        payload = method_payload(method)
        # Unencodable methods key by identity: same-instance solves can
        # still coalesce, distinct instances never falsely merge.
        key = (payload or ("instance", id(method)), float(alpha))
        entry = _Entry(channel, evidences, table)
        with self._cond:
            if self._closed:
                return method.compute_batch(evidences, alpha)
            group = self._groups.get(key)
            leader = group is None
            if leader:
                group = _Group(method, float(alpha), time.monotonic() + self.window)
                self._groups[key] = group
            group.entries.append(entry)
            self._waiting += 1
            # Followers filling a batch (and detaching runs) must wake
            # leaders so the max-batch / all-waiting triggers re-check.
            self._cond.notify_all()
            if leader:
                self._lead(key, group)
        if not leader:
            entry.ready.wait()
        if entry.error is not None:
            raise entry.error
        if entry.meta is not None:
            channel.record_flush(entry.meta)
        assert entry.result is not None
        return entry.result

    def _lead(self, key: tuple, group: _Group) -> None:
        """Wait out the window, then flush.  Called with the lock held;
        returns with the lock held (the ``with self._cond`` re-acquires
        around the flush automatically via explicit release/acquire)."""
        while True:
            now = time.monotonic()
            if (
                self._closed
                or len(group.entries) >= self.max_batch
                or now >= group.deadline
                or (0 < self._participants <= self._waiting)
            ):
                break
            self._cond.wait(timeout=group.deadline - now)
        if self._closed:
            reason = "closed"
        elif len(group.entries) >= self.max_batch:
            reason = "max_batch"
        elif 0 < self._participants <= self._waiting:
            reason = "all_waiting"
        else:
            reason = "deadline"
        del self._groups[key]
        entries = group.entries
        self._waiting -= len(entries)
        self.flushes += 1
        self.rows_solved += sum(len(entry.evidences) for entry in entries)
        if len(entries) > 1:
            self.coalesced_flushes += 1
        self._cond.release()
        try:
            self._flush(group, entries, reason)
        finally:
            self._cond.acquire()

    def _flush(self, group: _Group, entries: list[_Entry], reason: str) -> None:
        """One pooled solve for *entries*; runs outside the broker lock."""
        flush_id = next(self._flush_ids)
        rows = sum(len(entry.evidences) for entry in entries)
        meta = {
            "flush_id": flush_id,
            "reason": reason,
            "method": group.method.name,
            "alpha": group.alpha,
            "callers": len(entries),
            "rows": rows,
        }
        # Solve tables first: entries whose captured table can serve the
        # whole segment (building the table here, once, on the leader's
        # thread) skip the pooled solve entirely; the rest pool.  A
        # table serve is bit-identical to the pooled slice, so the mix
        # is invisible to callers.
        served: dict[int, "BatchIntervals"] = {}
        for index, entry in enumerate(entries):
            if entry.table is None:
                continue
            try:
                batch = entry.table.serve(
                    group.method, entry.evidences, group.alpha, build=True
                )
            except Exception:  # table trouble must never poison a flush
                batch = None
            if batch is not None:
                served[index] = batch
        meta["table_hits"] = len(served)
        pending = [
            entry for index, entry in enumerate(entries) if index not in served
        ]
        try:
            try:
                if pending:
                    slices = compute_batch_pooled(
                        group.method,
                        [entry.evidences for entry in pending],
                        group.alpha,
                    )
                    for entry, batch in zip(pending, slices):
                        entry.result = batch
                for index, batch in served.items():
                    entries[index].result = batch
                for entry in entries:
                    entry.meta = dict(meta, rows_own=len(entry.evidences))
            except Exception:
                # Pooled solve failed — isolate: each caller gets its own
                # compute (bit-identical anyway) and only genuinely bad
                # segments raise, in their own caller's thread.
                for entry in entries:
                    if entry.result is not None:
                        continue
                    try:
                        entry.result = group.method.compute_batch(
                            entry.evidences, group.alpha
                        )
                    except BaseException as exc:  # noqa: BLE001
                        entry.error = exc
        finally:
            for entry in entries:
                entry.ready.set()
        # The leader's own entry is resolved in its calling frame, same
        # as every follower — nothing left to do here.


class BrokerChannel:
    """A per-run handle on a shared :class:`SolveBroker`.

    Implements the ambient-pool protocol
    (``solve(method, evidences, alpha)``) expected by
    :meth:`~repro.intervals.base.IntervalMethod.solve_batch`, and is a
    context manager: entering attaches the run as a broker participant
    (feeding the all-participants-waiting flush trigger), exiting
    detaches it.  Flush telemetry is reported per-caller on this run's
    own bus so journals stay single-threaded.
    """

    def __init__(
        self, broker: SolveBroker, telemetry: "RunTelemetry | None" = None
    ) -> None:
        self._broker = broker
        self._telemetry = telemetry

    @property
    def broker(self) -> SolveBroker:
        return self._broker

    def __enter__(self) -> "BrokerChannel":
        self._broker._attach()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._broker._detach()

    def solve(
        self,
        method: "IntervalMethod",
        evidences: Sequence["Evidence"],
        alpha: float,
    ) -> "BatchIntervals":
        return self._broker._solve(self, method, evidences, alpha)

    def record_flush(self, meta: dict[str, Any]) -> None:
        """Emit this caller's share of a flush on its own telemetry bus."""
        if self._telemetry is not None:
            self._telemetry.emit("solve_batch_flush", **meta)
