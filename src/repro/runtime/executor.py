"""Parallel study execution with caching, resume, and progress.

:class:`ParallelExecutor` runs a :class:`~repro.runtime.spec.StudyPlan`
either serially (``workers=1``, the default) or fanned out over a
``ProcessPoolExecutor``.  Because every cell is seeded at plan-build
time and runners rebuild their inputs from specs, the two paths are
bit-identical — parallelism changes wall-clock, never numbers.

Two levels of parallelism compose here.  Cells fan out across workers,
and — when a chunk size is configured — a cell's *repetitions* are
sharded into sub-cell windows that fan out the same way and merge
through per-kind reducers (see :mod:`repro.runtime.cells`), so a single
expensive 1,000-repetition cell no longer serialises on one worker.
Chunking is pure scheduling: for any chunk size, the merged result is
bit-identical to the unsharded run.

Cells completed earlier — in this run, a previous run, or a run that
was interrupted — are served from the optional
:class:`~repro.runtime.store.ResultStore`; fresh results are persisted
the moment they arrive in the parent process, so a grid killed halfway
resumes from its last completed cell.  Sharded cells persist *per
shard*: a killed 1,000-repetition cell resumes at the boundary of its
last finished shard, and the transient shard entries are dropped once
the merged cell result is stored.

Chunk sizes can be fixed (``chunk_size`` / ``REPRO_CHUNK_SIZE``) or
adaptive (``chunk_seconds`` / ``REPRO_CHUNK_SECONDS``): the adaptive
mode times one pilot shard per run and targets a wall-clock budget per
shard instead of a repetition count, so one setting suits cells of very
different per-repetition cost.  Either way chunking is pure scheduling
— results and cache keys are chunking-independent.

The module-level :func:`execute` is the convenience entry point the
experiment modules use: it builds a default executor from
:func:`configure` overrides and the ``REPRO_WORKERS`` /
``REPRO_CACHE_DIR`` / ``REPRO_CHUNK_SIZE`` / ``REPRO_CHUNK_SECONDS``
environment variables, read at call time so CI can flip the whole
suite to parallel, sharded execution without code changes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Union

from ..exceptions import ValidationError
from .cells import (
    cell_repetitions,
    is_shardable,
    runner_for,
    shard_reducer_for,
    shard_runner_for,
)
from .progress import ProgressReporter
from .spec import CellShard, CellSpec, StudyPlan, cache_token, shard_ranges, shard_token
from .store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import ExperimentSettings

__all__ = [
    "CellResult",
    "ChunkCalibration",
    "PlanOutcome",
    "ParallelExecutor",
    "configure",
    "default_executor",
    "execute",
]


@dataclass(frozen=True)
class ChunkCalibration:
    """Outcome of an adaptive chunk-sizing pilot (scheduling only).

    Records which cell served as the pilot, how many repetitions the
    timed pilot shard covered, its wall-clock, and the reps-per-shard
    the run derived from it.  Pure scheduling metadata: the calibrated
    chunk size never reaches cache keys (tokens are chunking-
    independent) or result payloads, so two runs calibrated differently
    still produce byte-identical results files.
    """

    cell_key: tuple
    pilot_repetitions: int
    pilot_seconds: float
    chunk_size: int


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-served) cell.

    ``seconds`` is the compute time of the cell itself (summed across
    its shards when it ran sharded; 0.0 for cache hits); ``cached``
    records whether the value was assembled without computing anything.
    ``shards`` is the number of repetition shards the cell was split
    into (1 = unsharded) and ``shards_cached`` how many of those were
    served from the store (resume).
    """

    cell: CellSpec
    value: Any
    seconds: float
    cached: bool
    shards: int = 1
    shards_cached: int = 0


@dataclass(frozen=True)
class PlanOutcome:
    """Everything a plan execution produced, in plan order.

    ``calibration`` records the adaptive chunk-sizing pilot when the
    run was configured with ``chunk_seconds`` and had shardable work to
    calibrate on; ``None`` otherwise.
    """

    plan: StudyPlan
    cells: tuple[CellResult, ...]
    workers: int
    seconds: float
    calibration: ChunkCalibration | None = None

    @property
    def results(self) -> dict[tuple, Any]:
        """Cell values keyed by each cell's plan key."""
        return {entry.cell.key: entry.value for entry in self.cells}

    @property
    def cache_hits(self) -> int:
        """Cells served from the result store."""
        return sum(1 for entry in self.cells if entry.cached)

    @property
    def cache_misses(self) -> int:
        """Cells that had to compute."""
        return len(self.cells) - self.cache_hits

    @property
    def compute_seconds(self) -> float:
        """Summed per-cell compute time (serial-equivalent work)."""
        return sum(entry.seconds for entry in self.cells)

    def summary(self) -> str:
        """One-line execution summary for logs and CLIs."""
        name = self.plan.name or "plan"
        sharded = sum(1 for entry in self.cells if entry.shards > 1)
        shard_note = f", {sharded} sharded" if sharded else ""
        if self.calibration is not None:
            shard_note += f", chunk~{self.calibration.chunk_size} calibrated"
        return (
            f"{name}: {len(self.cells)} cells in {self.seconds:.2f}s "
            f"wall ({self.compute_seconds:.2f}s compute, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.cache_hits} cached{shard_note})"
        )


def _resolve_workers(workers: int | None) -> int:
    """Explicit worker count, or the ``REPRO_WORKERS`` default (1)."""
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValidationError(
                    f"REPRO_WORKERS must be an integer, got {raw!r}"
                ) from None
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


def _resolve_chunk_size(chunk_size: int | None) -> int | None:
    """Explicit chunk size, or the ``REPRO_CHUNK_SIZE`` default (off)."""
    if chunk_size is None:
        raw = os.environ.get("REPRO_CHUNK_SIZE", "").strip()
        if not raw:
            return None
        try:
            chunk_size = int(raw)
        except ValueError:
            raise ValidationError(
                f"REPRO_CHUNK_SIZE must be an integer, got {raw!r}"
            ) from None
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def _resolve_chunk_seconds(chunk_seconds: float | None) -> float | None:
    """Explicit target, or the ``REPRO_CHUNK_SECONDS`` default (off)."""
    if chunk_seconds is None:
        raw = os.environ.get("REPRO_CHUNK_SECONDS", "").strip()
        if not raw:
            return None
        try:
            chunk_seconds = float(raw)
        except ValueError:
            raise ValidationError(
                f"REPRO_CHUNK_SECONDS must be a number, got {raw!r}"
            ) from None
    chunk_seconds = float(chunk_seconds)
    if chunk_seconds <= 0.0:
        raise ValidationError(f"chunk_seconds must be > 0, got {chunk_seconds}")
    return chunk_seconds


def _run_cell(cell: CellSpec, settings: "ExperimentSettings") -> tuple[Any, float]:
    """Execute one cell; module-level so it pickles into workers."""
    start = time.perf_counter()
    value = runner_for(cell)(cell, settings)
    return value, time.perf_counter() - start


def _run_shard(shard: CellShard, settings: "ExperimentSettings") -> tuple[Any, float]:
    """Execute one repetition shard; module-level so it pickles."""
    start = time.perf_counter()
    value = shard_runner_for(shard.cell)(
        shard.cell, settings, shard.rep_start, shard.rep_stop
    )
    return value, time.perf_counter() - start


def _pool_context():
    """Fork where available: cheap start-up, and runners registered at
    runtime (e.g. custom cell types) are inherited by workers."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else methods[0])


@dataclass
class _ShardedCell:
    """Merge-barrier bookkeeping for one sharded cell in flight."""

    index: int
    cell: CellSpec
    token: str | None
    repetitions: int
    shards: tuple[CellShard, ...]
    partials: dict[int, Any] = field(default_factory=dict)
    shard_tokens: dict[int, str] = field(default_factory=dict)
    seconds: float = 0.0
    cached_shards: int = 0

    @property
    def complete(self) -> bool:
        return len(self.partials) == len(self.shards)

    @property
    def reps_done(self) -> int:
        return sum(
            shard.repetitions
            for shard in self.shards
            if shard.index in self.partials
        )


class ParallelExecutor:
    """Executes study plans over a process pool with a result cache.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` reads ``REPRO_WORKERS`` (default 1).
        ``1`` executes serially in-process — the fallback path, also
        used automatically when a plan has at most one uncached unit of
        work.
    store:
        A :class:`~repro.runtime.store.ResultStore`, a directory path
        to root one at, or ``None`` to disable caching.
    progress:
        ``True`` for the default stderr reporter, a callable
        ``(done, total, CellResult) -> None`` for custom reporting, or
        ``None``/``False`` for silence.
    chunk_size:
        Repetition-sharding granularity: shardable cells with more
        repetitions than this are split into sub-cell windows of at
        most ``chunk_size`` repetitions that fan out like cells and
        merge bit-identically.  ``None`` reads ``REPRO_CHUNK_SIZE``
        (default: no sharding).  A cell's own ``chunk_size`` field
        overrides this value.
    chunk_seconds:
        Adaptive chunk sizing: instead of a fixed reps-per-shard, aim
        for shards of roughly this many wall-clock seconds.  Each run
        times one pilot shard of its first uncached shardable cell,
        derives reps-per-shard from the measured rate, and shards the
        whole plan at that granularity (the pilot window is reused when
        it aligns with the chosen chunking).  ``None`` reads
        ``REPRO_CHUNK_SECONDS`` (default: off).  Mutually exclusive
        with ``chunk_size``: passing both explicitly (or setting both
        environment variables) raises; an explicit argument for one
        silently wins over the *environment* default of the other, so
        code pinning a chunk size keeps working under a
        ``REPRO_CHUNK_SECONDS`` CI leg and vice versa.  Calibration is
        pure scheduling — chunking never changes numbers or cache keys.
    """

    def __init__(
        self,
        workers: int | None = None,
        store: Union[ResultStore, str, Path, None] = None,
        progress: Union[bool, Callable[[int, int, CellResult], None], None] = None,
        chunk_size: int | None = None,
        chunk_seconds: float | None = None,
    ):
        self.workers = _resolve_workers(workers)
        if chunk_size is not None and chunk_seconds is not None:
            raise ValidationError(
                "chunk_size and chunk_seconds are mutually exclusive; pass "
                "at most one (fixed reps-per-shard vs seconds-per-shard)"
            )
        self.chunk_size = _resolve_chunk_size(chunk_size)
        self.chunk_seconds = _resolve_chunk_seconds(chunk_seconds)
        if self.chunk_size is not None and self.chunk_seconds is not None:
            if chunk_size is not None:
                self.chunk_seconds = None  # explicit size beats env seconds
            elif chunk_seconds is not None:
                self.chunk_size = None  # explicit seconds beats env size
            else:
                raise ValidationError(
                    "REPRO_CHUNK_SIZE and REPRO_CHUNK_SECONDS are both set; "
                    "unset one (fixed reps-per-shard vs seconds-per-shard)"
                )
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        if progress is True:
            progress = ProgressReporter()
        elif progress is False:
            progress = None
        self.progress: Callable[[int, int, CellResult], None] | None = progress

    def _shards_for(
        self,
        cell: CellSpec,
        settings: "ExperimentSettings",
        default_chunk: int | None,
    ) -> tuple[int, tuple[CellShard, ...]] | None:
        """The shard decomposition of *cell*, or ``None`` to run whole.

        A cell shards when its type registered the sharding triple and
        the effective chunk size (cell override, else *default_chunk* —
        the executor's fixed chunk size or the run's calibrated one)
        splits its repetitions into more than one window.
        """
        chunk = cell.chunk_size if cell.chunk_size is not None else default_chunk
        if chunk is None or not is_shardable(cell):
            return None
        if chunk < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk}")
        repetitions = cell_repetitions(cell, settings)
        ranges = shard_ranges(repetitions, chunk)
        if len(ranges) < 2:
            return None
        shards = tuple(
            CellShard(
                cell=cell,
                index=i,
                shards=len(ranges),
                rep_start=start,
                rep_stop=stop,
            )
            for i, (start, stop) in enumerate(ranges)
        )
        return repetitions, shards

    #: Repetitions the calibration pilot shard covers (capped at half
    #: the pilot cell's repetitions so the run still has work to shard).
    _PILOT_REPS = 4

    def _calibrate_chunk(
        self, plan: StudyPlan, settings: "ExperimentSettings"
    ) -> tuple[ChunkCalibration | None, tuple | None]:
        """Derive reps-per-shard from one timed pilot shard.

        Picks the first uncached shardable cell of the plan, executes
        its leading repetition window ``[0, pilot)`` in-process, and
        converts the measured rate into a chunk size targeting
        ``chunk_seconds`` per shard.  The pilot's partial payload is
        persisted to the store (under its ordinary shard token) and
        returned for in-memory reuse, so the timed work is not wasted
        when the chosen chunking's first window happens to align.

        Calibration affects scheduling only: whatever chunk size comes
        out, merged results and cache tokens are identical to any fixed
        chunking — the property the test suite pins down.
        """
        for index, cell in enumerate(plan.cells):
            if not is_shardable(cell) or cell.chunk_size is not None:
                continue
            repetitions = cell_repetitions(cell, settings)
            if repetitions < 2:
                continue
            if self.store is not None and self.store.contains(
                cache_token(cell, settings)
            ):
                continue
            pilot_reps = max(1, min(self._PILOT_REPS, repetitions // 2))
            shard = CellShard(
                cell=cell,
                index=0,
                shards=1,
                rep_start=0,
                rep_stop=pilot_reps,
            )
            value, seconds = _run_shard(shard, settings)
            if self.store is not None:
                self.store.save(
                    shard_token(shard, settings, repetitions),
                    {"value": value, "label": shard.label, "seconds": seconds},
                    group=cache_token(cell, settings),
                )
            chunk = max(
                1,
                int(round(self.chunk_seconds * pilot_reps / max(seconds, 1e-9))),
            )
            calibration = ChunkCalibration(
                cell_key=cell.key,
                pilot_repetitions=pilot_reps,
                pilot_seconds=seconds,
                chunk_size=chunk,
            )
            update = getattr(self.progress, "calibration_update", None)
            if update is not None:
                update(calibration)
            return calibration, (index, pilot_reps, value, seconds)
        return None, None

    def run(self, plan: StudyPlan) -> PlanOutcome:
        """Execute *plan*; returns results for every cell, plan-ordered.

        Cache lookups happen first — merged cell entries, then per-shard
        entries for sharded cells — and the remaining units of work
        (whole cells and repetition shards alike) execute on the pool or
        serially.  Each fresh result is persisted to the store from the
        parent process as soon as it completes: whole cells and shards
        one by one, so interruption at any point loses at most the work
        still in flight, and a killed sharded cell resumes at its last
        finished shard.

        With ``chunk_seconds`` configured, a timed pilot shard runs
        first and fixes this run's reps-per-shard (see
        :meth:`_calibrate_chunk`); the resulting chunk size is recorded
        on the outcome's ``calibration`` and never in any result.
        """
        start = time.perf_counter()
        settings = plan.settings
        total = len(plan.cells)
        default_chunk = self.chunk_size
        calibration = None
        pilot = None
        if self.chunk_seconds is not None:
            calibration, pilot = self._calibrate_chunk(plan, settings)
            if calibration is not None:
                default_chunk = calibration.chunk_size
        entries: dict[int, CellResult] = {}
        pending: list[tuple] = []  # ("cell", index, cell, token) | ("shard", state, shard)
        done = 0

        def report(result: CellResult) -> None:
            nonlocal done
            done += 1
            if self.progress is not None:
                self.progress(done, total, result)

        def finish_cell(index: int, cell: CellSpec, token: str | None, value, seconds) -> None:
            if token is not None:
                self.store.save(
                    token, {"value": value, "label": cell.label, "seconds": seconds}
                )
                # An unsharded completion also sweeps any shard
                # scaffolding filed under this cell's group — a
                # calibration pilot whose chunking ended up unsharded,
                # or windows left by an interrupted sharded run.
                self.store.discard_group(token)
            entries[index] = CellResult(
                cell=cell, value=value, seconds=seconds, cached=False
            )
            report(entries[index])

        def merge_cell(state: _ShardedCell) -> None:
            partials = [state.partials[i] for i in range(len(state.shards))]
            value = shard_reducer_for(state.cell)(state.cell, settings, partials)
            if state.token is not None:
                self.store.save(
                    state.token,
                    {
                        "value": value,
                        "label": state.cell.label,
                        "seconds": state.seconds,
                    },
                )
                # Shard entries are scaffolding for resume; once the
                # merged result is durable they only cost disk.  The
                # group is keyed by the chunking-independent cell token,
                # so this also sweeps stale windows left by interrupted
                # runs under a different chunk size.
                self.store.discard_group(state.token)
            entries[state.index] = CellResult(
                cell=state.cell,
                value=value,
                seconds=state.seconds,
                cached=len(state.partials) == state.cached_shards,
                shards=len(state.shards),
                shards_cached=state.cached_shards,
            )
            report(entries[state.index])

        def shard_progress(state: _ShardedCell) -> None:
            update = getattr(self.progress, "shard_update", None)
            if update is not None:
                update(
                    state.cell,
                    len(state.partials),
                    len(state.shards),
                    state.reps_done,
                    state.repetitions,
                )

        def finish_shard(state: _ShardedCell, shard: CellShard, value, seconds) -> None:
            token = state.shard_tokens.get(shard.index)
            if token is not None:
                self.store.save(
                    token,
                    {"value": value, "label": shard.label, "seconds": seconds},
                    group=state.token,
                )
            state.partials[shard.index] = value
            state.seconds += seconds
            shard_progress(state)
            if state.complete:
                merge_cell(state)

        for index, cell in enumerate(plan.cells):
            # Explicit None check: an empty ResultStore has len() == 0
            # and would read as falsy.
            token = cache_token(cell, settings) if self.store is not None else None
            if token is not None:
                payload = self.store.load(token)
                if payload is not None:
                    entries[index] = CellResult(
                        cell=cell, value=payload["value"], seconds=0.0, cached=True
                    )
                    report(entries[index])
                    continue
            decomposition = self._shards_for(cell, settings, default_chunk)
            if decomposition is None:
                pending.append(("cell", index, cell, token))
                continue
            repetitions, shards = decomposition
            state = _ShardedCell(
                index=index,
                cell=cell,
                token=token,
                repetitions=repetitions,
                shards=shards,
            )
            incomplete = []
            for shard in shards:
                if (
                    pilot is not None
                    and index == pilot[0]
                    and shard.index == 0
                    and shard.rep_stop == pilot[1]
                ):
                    # The calibration pilot already computed this exact
                    # window in-process; count it as compute performed
                    # this run (it was), not as a cache hit.
                    state.partials[0] = pilot[2]
                    state.seconds += pilot[3]
                    continue
                if self.store is not None:
                    stoken = shard_token(shard, settings, repetitions)
                    state.shard_tokens[shard.index] = stoken
                    payload = self.store.load(stoken, group=token)
                    if payload is not None:
                        # seconds stays at compute-performed-this-run:
                        # resumed shards contribute their value, not
                        # their historical wall-clock.
                        state.partials[shard.index] = payload["value"]
                        state.cached_shards += 1
                        continue
                incomplete.append(("shard", state, shard))
            if state.cached_shards:
                shard_progress(state)
            if state.complete:
                # Every shard was already on disk (an interrupted run
                # that died between its last shard and the merge).
                merge_cell(state)
            else:
                pending.extend(incomplete)

        if len(pending) > 1 and self.workers > 1:
            max_workers = min(self.workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=max_workers, mp_context=_pool_context()
            ) as pool:
                futures = {}
                for item in pending:
                    if item[0] == "cell":
                        _, index, cell, token = item
                        future = pool.submit(_run_cell, cell, settings)
                    else:
                        _, state, shard = item
                        future = pool.submit(_run_shard, shard, settings)
                    futures[future] = item
                outstanding = set(futures)
                while outstanding:
                    ready, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in ready:
                        item = futures[future]
                        value, seconds = future.result()
                        if item[0] == "cell":
                            _, index, cell, token = item
                            finish_cell(index, cell, token, value, seconds)
                        else:
                            _, state, shard = item
                            finish_shard(state, shard, value, seconds)
        else:
            for item in pending:
                if item[0] == "cell":
                    _, index, cell, token = item
                    value, seconds = _run_cell(cell, settings)
                    finish_cell(index, cell, token, value, seconds)
                else:
                    _, state, shard = item
                    value, seconds = _run_shard(shard, settings)
                    finish_shard(state, shard, value, seconds)

        ordered = tuple(entries[index] for index in range(total))
        return PlanOutcome(
            plan=plan,
            cells=ordered,
            workers=self.workers,
            seconds=time.perf_counter() - start,
            calibration=calibration,
        )

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"store={self.store!r}, progress={self.progress is not None}, "
            f"chunk_size={self.chunk_size}, chunk_seconds={self.chunk_seconds})"
        )


# ----------------------------------------------------------------------
# Module-level defaults used by the experiment modules
# ----------------------------------------------------------------------

_UNSET = object()
_defaults: dict[str, Any] = {
    "workers": None,
    "cache_dir": None,
    "progress": None,
    "chunk_size": None,
    "chunk_seconds": None,
}


def configure(
    workers=_UNSET,
    cache_dir=_UNSET,
    progress=_UNSET,
    chunk_size=_UNSET,
    chunk_seconds=_UNSET,
) -> None:
    """Set process-wide defaults for :func:`execute`.

    Used by CLIs to route every subsequently-run experiment through a
    configured executor without threading parameters through each
    ``run_*`` signature.  Unset values fall back to ``REPRO_WORKERS``,
    ``REPRO_CACHE_DIR``, ``REPRO_CHUNK_SIZE``, and
    ``REPRO_CHUNK_SECONDS`` at call time.
    """
    if workers is not _UNSET:
        _defaults["workers"] = workers
    if cache_dir is not _UNSET:
        _defaults["cache_dir"] = cache_dir
    if progress is not _UNSET:
        _defaults["progress"] = progress
    if chunk_size is not _UNSET:
        _defaults["chunk_size"] = chunk_size
    if chunk_seconds is not _UNSET:
        _defaults["chunk_seconds"] = chunk_seconds


def default_executor() -> ParallelExecutor:
    """An executor from :func:`configure` defaults and the environment."""
    cache_dir = _defaults["cache_dir"]
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip() or None
    return ParallelExecutor(
        workers=_defaults["workers"],
        store=cache_dir,
        progress=_defaults["progress"],
        chunk_size=_defaults["chunk_size"],
        chunk_seconds=_defaults["chunk_seconds"],
    )


def execute(plan: StudyPlan, executor: ParallelExecutor | None = None) -> PlanOutcome:
    """Run *plan* on *executor* (or the configured/env default)."""
    if executor is None:
        executor = default_executor()
    return executor.run(plan)
