"""Parallel study execution with caching, resume, and progress.

:class:`ParallelExecutor` runs a :class:`~repro.runtime.spec.StudyPlan`
by pairing a backend-agnostic scheduler core
(:class:`~repro.runtime.scheduler.PlanScheduler` — cache scan, ready
queue, merge barriers, persistence, progress) with a pluggable
:class:`~repro.runtime.backends.ExecutionBackend` that decides where
each unit of work physically executes: in-process
(:class:`~repro.runtime.backends.SerialBackend`), on a local process
pool (:class:`~repro.runtime.backends.ProcessPoolBackend`), or through
a spool-directory work queue served by detached ``python -m repro
worker`` processes (:class:`~repro.runtime.backends.SpoolBackend`).
Because every cell is seeded at plan-build time and runners rebuild
their inputs from specs, all backends are bit-identical — the backend
changes wall-clock and placement, never numbers.

Two levels of parallelism compose here.  Cells fan out across workers,
and — when a chunk size is configured — a cell's *repetitions* are
sharded into sub-cell windows that fan out the same way and merge
through per-kind reducers (see :mod:`repro.runtime.cells`), so a single
expensive 1,000-repetition cell no longer serialises on one worker.
Chunking is pure scheduling: for any chunk size, the merged result is
bit-identical to the unsharded run.

Cells completed earlier — in this run, a previous run, or a run that
was interrupted — are served from the optional
:class:`~repro.runtime.store.ResultStore`; fresh results are persisted
the moment they arrive in the scheduler process, so a grid killed
halfway resumes from its last completed cell.  Sharded cells persist
*per shard*: a killed 1,000-repetition cell resumes at the boundary of
its last finished shard, and the transient shard entries are dropped
once the merged cell result is stored.  Cache tokens never depend on
the backend, so a run interrupted under one backend resumes under any
other at the finished-shard boundary.

Chunk sizes can be fixed (``chunk_size`` / ``REPRO_CHUNK_SIZE``) or
adaptive (``chunk_seconds`` / ``REPRO_CHUNK_SECONDS``): the adaptive
mode times one pilot shard per run and targets a wall-clock budget per
shard instead of a repetition count, so one setting suits cells of very
different per-repetition cost.  Either way chunking is pure scheduling
— results and cache keys are chunking-independent.

Failures follow an explicit fault model (:mod:`repro.runtime.faults`):
a failed unit of work is retried up to ``max_retries`` times with
deterministic exponential backoff, and a unit that exhausts its
retries either aborts the run (``on_error="raise"``, with the full
:class:`~repro.runtime.faults.TaskFailure` history on the raised
:class:`~repro.runtime.faults.PlanExecutionError`) or is quarantined
while the rest of the plan drains (``on_error="continue"``, failures
reported on the outcome).  Because cells are seeded at plan-build
time, a retry recomputes byte-identical numbers — the chaos backend
(``chaos:<inner>``) exploits that to prove the failure path.

Configuration is an immutable, per-request
:class:`~repro.runtime.settings.RunContext`: every constructor
argument below is resolved through :mod:`repro.runtime.settings` (the
one owner of all ``REPRO_*`` environment fallbacks) into a frozen
snapshot, and :meth:`ParallelExecutor.from_context` builds an executor
from a ready-made context — which is how the service front end
(:mod:`repro.runtime.service`) runs many concurrently-configured
requests in one process.  The module-level :func:`execute` is the
convenience entry point the experiment modules use: it accepts an
explicit ``context`` or builds the module-default context from
:func:`configure` overrides plus the environment, read at call time so
CI can flip the whole suite to parallel, sharded, spool-dispatched,
fault-injected, or journalled execution without code changes.

Every run additionally narrates itself into a structured telemetry
stream (:mod:`repro.runtime.telemetry`): an in-memory metrics
aggregate always rides on the returned outcome (``outcome.metrics``),
and a JSONL event journal is appended when ``trace`` /
``REPRO_TRACE_FILE`` names a file.  Telemetry is observation only —
it never changes results, cache tokens, or seeds.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Union

from ..exceptions import ValidationError
from ..intervals.base import use_solve_pool, use_solve_table
from ..intervals.kernels import auto_fallback_info, use_kernel
from ..intervals.table import SolveTable, shared_table
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    run_shard,
)
from .backends.base import close_backend, open_backend
from .cells import cell_repetitions, is_shardable
from .faults import (
    PlanExecutionError,
    RetryPolicy,
    TaskFailure,
    failure_from,
    unit_token,
)
from .scheduler import (
    CellResult,
    ChunkCalibration,
    PlanOutcome,
    PlanScheduler,
    task_of,
)
from .settings import RunContext
from .spec import CellShard, StudyPlan, cache_token, shard_token
from .store import ResultStore
from .telemetry import (
    TRACE_SCHEMA_VERSION,
    JsonlTraceSink,
    MetricsAggregate,
    ProgressSubscriber,
    RunTelemetry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import ExperimentSettings

__all__ = [
    "CellResult",
    "ChunkCalibration",
    "PlanExecutionError",
    "PlanOutcome",
    "ParallelExecutor",
    "RetryPolicy",
    "RunContext",
    "TaskFailure",
    "configure",
    "default_context",
    "default_executor",
    "execute",
    "reset_defaults",
]


def _unit_fields(item: tuple) -> dict:
    """Identifying telemetry fields of one pending-queue entry."""
    task = task_of(item)
    if isinstance(task, CellShard):
        return {
            "unit": "shard",
            "label": task.label,
            "kind": type(task.cell).__name__,
        }
    return {"unit": "cell", "label": task.label, "kind": type(task).__name__}


class ParallelExecutor:
    """Executes study plans over a pluggable backend with a result cache.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` reads ``REPRO_WORKERS`` (default 1).
        ``1`` executes serially in-process under the automatic backend
        policy — also used when a plan has at most one uncached unit of
        work.  The spool backend ignores this count: its parallelism is
        however many ``python -m repro worker`` processes are attached.
    store:
        A :class:`~repro.runtime.store.ResultStore`, a directory path
        to root one at, or ``None`` to disable caching.
    progress:
        ``True`` for the default stderr reporter, a callable
        ``(done, total, CellResult) -> None`` for custom reporting, or
        ``None``/``False`` for silence.
    chunk_size:
        Repetition-sharding granularity: shardable cells with more
        repetitions than this are split into sub-cell windows of at
        most ``chunk_size`` repetitions that fan out like cells and
        merge bit-identically.  ``None`` reads ``REPRO_CHUNK_SIZE``
        (default: no sharding).  A cell's own ``chunk_size`` field
        overrides this value.
    chunk_seconds:
        Adaptive chunk sizing: instead of a fixed reps-per-shard, aim
        for shards of roughly this many wall-clock seconds.  Each run
        times one pilot shard of its first uncached shardable cell,
        derives reps-per-shard from the measured rate, and shards the
        whole plan at that granularity (the pilot window is reused when
        it aligns with the chosen chunking).  ``None`` reads
        ``REPRO_CHUNK_SECONDS`` (default: off).  Mutually exclusive
        with ``chunk_size``: passing both explicitly (or setting both
        environment variables) raises; an explicit argument for one
        silently wins over the *environment* default of the other, so
        code pinning a chunk size keeps working under a
        ``REPRO_CHUNK_SECONDS`` CI leg and vice versa.  Calibration is
        pure scheduling — chunking never changes numbers or cache keys.
    backend:
        Where units of work execute: an
        :class:`~repro.runtime.backends.ExecutionBackend` instance, a
        spec string (``"serial"``, ``"process[:n]"``,
        ``"spool[:dir]"``, ``"chaos:<inner>"``), or ``None`` to read
        ``REPRO_BACKEND`` — falling back to the automatic policy
        (serial at ``workers=1`` or ≤1 pending unit, process pool
        otherwise).  Backends change placement and wall-clock only:
        results are bit-identical and cache tokens are
        backend-independent, so runs resume across backend switches.
    max_retries:
        Resubmissions allowed per unit of work after a failed attempt,
        with deterministic exponential backoff (see
        :class:`~repro.runtime.faults.RetryPolicy`).  ``None`` reads
        ``REPRO_MAX_RETRIES`` (default 0 — classic fail-fast).
    on_error:
        What to do once a unit exhausts its retries: ``"raise"``
        (default; aborts the run with a
        :class:`~repro.runtime.faults.PlanExecutionError` carrying the
        full failure history) or ``"continue"`` (quarantine the failed
        cell, keep draining, and return a partial
        :class:`PlanOutcome` with the ``failures`` tuple populated).
        ``None`` reads ``REPRO_ON_ERROR``.
    retry_policy:
        A full :class:`~repro.runtime.faults.RetryPolicy` (backoff
        shape included).  Mutually exclusive with ``max_retries``,
        which is the convenience form for the common case.
    trace:
        Path of a JSONL trace journal: every run of this executor
        appends its structured lifecycle events (see
        :mod:`repro.runtime.telemetry`) to the file.  ``None`` reads
        ``REPRO_TRACE_FILE`` (default: no journal).  Strictly
        non-semantic — tracing on or off changes no result bytes, no
        cache tokens, and no seeds.  The in-memory metrics aggregate
        is always attached to the outcome, journal or not.
    solve_pool:
        A shared :class:`~repro.runtime.solvebatch.SolveBroker` (or
        compatible object with a ``channel(telemetry)`` factory) to
        coalesce this run's interval solves with other concurrent runs'.
        ``None`` (the default) solves directly.  Pure scheduling: pooled
        solves are bit-identical to direct ones.
    kernel:
        Interval solver kernel for this run's in-process solves:
        ``"numpy"`` (the reference implementation), ``"native"`` (the
        JIT-compiled kernel; raises when the optional ``numba``
        dependency is unavailable), or ``"auto"`` (native when
        available, otherwise a *loud* fallback to numpy — one
        ``RuntimeWarning`` plus a ``kernel_fallback`` journal event).
        ``None`` reads ``REPRO_KERNEL`` (default ``"numpy"``).  Kernels
        agree bit-for-bit or to 1e-12 and never enter cache identity.
    solve_table:
        Small-n solve-table cap: integer-count solves with ``n`` at or
        below this are served from a precomputed, memory-mapped
        (method, alpha, n) interval table rooted in the result store
        (see :mod:`repro.intervals.table`).  ``0`` disables; ``None``
        reads ``REPRO_SOLVE_TABLE`` (default 2048).  Tables are pure
        memoisation — served rows are bit-identical to solved ones.
    """

    def __init__(
        self,
        workers: int | None = None,
        store: Union[ResultStore, str, Path, None] = None,
        progress: Union[bool, Callable[[int, int, CellResult], None], None] = None,
        chunk_size: int | None = None,
        chunk_seconds: float | None = None,
        backend: Union[str, ExecutionBackend, None] = None,
        max_retries: int | None = None,
        on_error: str | None = None,
        retry_policy: RetryPolicy | None = None,
        trace: Union[str, Path, None] = None,
        solve_pool: Any = None,
        kernel: str | None = None,
        solve_table: int | None = None,
    ):
        self._bind(
            RunContext(
                workers=workers,
                store=store,
                progress=progress,
                chunk_size=chunk_size,
                chunk_seconds=chunk_seconds,
                backend=backend,
                max_retries=max_retries,
                on_error=on_error,
                retry_policy=retry_policy,
                trace=trace,
                solve_pool=solve_pool,
                kernel=kernel,
                solve_table=solve_table,
            )
        )

    @classmethod
    def from_context(cls, context: RunContext) -> "ParallelExecutor":
        """An executor bound to an already-resolved :class:`RunContext`.

        The context is taken as-is — no environment variable is
        consulted (resolution happened when *context* was built), so
        two executors created from different contexts share nothing and
        can run concurrently in one process.
        """
        if not isinstance(context, RunContext):
            raise TypeError(
                f"from_context expects a RunContext, got {context!r}"
            )
        executor = cls.__new__(cls)
        executor._bind(context)
        return executor

    def _bind(self, context: RunContext) -> None:
        """Adopt *context*, mirroring its fields as attributes."""
        self.context = context
        self.workers = context.workers
        self.chunk_size = context.chunk_size
        self.chunk_seconds = context.chunk_seconds
        self.backend = context.backend
        self.retry_policy = context.retry_policy
        self.on_error = context.on_error
        self.store = context.store
        self.progress: Callable[[int, int, CellResult], None] | None = (
            context.progress
        )
        self.trace = context.trace
        self.solve_pool = context.solve_pool
        self.kernel = context.kernel
        self.solve_table = context.solve_table

    def _backend_for(self, pending: int) -> ExecutionBackend:
        """The backend this run dispatches through.

        An explicit backend (constructor argument or ``REPRO_BACKEND``)
        is honoured as-is.  The automatic policy reproduces the classic
        behaviour: a process pool when there are both multiple workers
        and multiple units of work, the serial path otherwise.
        """
        if isinstance(self.backend, ExecutionBackend):
            return self.backend
        if self.backend is not None:
            return make_backend(self.backend)
        if self.workers > 1 and pending > 1:
            return ProcessPoolBackend()
        return SerialBackend()

    #: Repetitions the calibration pilot shard covers (capped at half
    #: the pilot cell's repetitions so the run still has work to shard).
    _PILOT_REPS = 4

    def _calibrate_chunk(
        self,
        plan: StudyPlan,
        settings: "ExperimentSettings",
        telemetry: RunTelemetry,
    ) -> tuple[ChunkCalibration | None, tuple | None]:
        """Derive reps-per-shard from one timed pilot shard.

        Picks the first uncached shardable cell of the plan, executes
        its leading repetition window ``[0, pilot)`` in-process, and
        converts the measured rate into a chunk size targeting
        ``chunk_seconds`` per shard.  The pilot's partial payload is
        persisted to the store (under its ordinary shard token) and
        returned for in-memory reuse, so the timed work is not wasted
        when the chosen chunking's first window happens to align.

        Calibration affects scheduling only: whatever chunk size comes
        out, merged results and cache tokens are identical to any fixed
        chunking — the property the test suite pins down.
        """
        for index, cell in enumerate(plan.cells):
            if not is_shardable(cell) or cell.chunk_size is not None:
                continue
            repetitions = cell_repetitions(cell, settings)
            if repetitions < 2:
                continue
            if self.store is not None and self.store.contains(
                cache_token(cell, settings)
            ):
                continue
            pilot_reps = max(1, min(self._PILOT_REPS, repetitions // 2))
            shard = CellShard(
                cell=cell,
                index=0,
                shards=1,
                rep_start=0,
                rep_stop=pilot_reps,
            )
            value, seconds = run_shard(shard, settings)
            if self.store is not None:
                self.store.save(
                    shard_token(shard, settings, repetitions),
                    {"value": value, "label": shard.label, "seconds": seconds},
                    group=cache_token(cell, settings),
                )
            chunk = max(
                1,
                int(round(self.chunk_seconds * pilot_reps / max(seconds, 1e-9))),
            )
            calibration = ChunkCalibration(
                cell_key=cell.key,
                pilot_repetitions=pilot_reps,
                pilot_seconds=seconds,
                chunk_size=chunk,
            )
            telemetry.emit(
                "calibration",
                payload=calibration,
                cell="/".join(str(part) for part in cell.key),
                pilot_repetitions=pilot_reps,
                pilot_seconds=round(seconds, 6),
                chunk_size=chunk,
            )
            return calibration, (index, pilot_reps, value, seconds)
        return None, None

    def run(self, plan: StudyPlan) -> PlanOutcome:
        """Execute *plan*; returns results for every cell, plan-ordered.

        The scheduler core serves the cache first — merged cell
        entries, then per-shard entries for sharded cells — and the
        remaining units of work (whole cells and repetition shards
        alike) dispatch through the run's backend.  Each fresh result
        is persisted to the store from the scheduler process as soon as
        it completes: whole cells and shards one by one, so
        interruption at any point loses at most the work still in
        flight, and a killed sharded cell resumes at its last finished
        shard — on this backend or any other.

        With ``chunk_seconds`` configured, a timed pilot shard runs
        first and fixes this run's reps-per-shard (see
        :meth:`_calibrate_chunk`); the resulting chunk size is recorded
        on the outcome's ``calibration`` and never in any result.

        Every run narrates itself into a fresh
        :class:`~repro.runtime.telemetry.RunTelemetry` bus: the metrics
        aggregate is always attached (``outcome.metrics``), the JSONL
        journal only when ``trace``/``REPRO_TRACE_FILE`` is set, and
        the progress reporter is just another subscriber.  Telemetry is
        observation only — it never feeds back into scheduling.
        """
        start = time.perf_counter()
        settings = plan.settings
        telemetry = RunTelemetry()
        metrics = MetricsAggregate()
        telemetry.subscribe(metrics)
        if self.trace is not None:
            telemetry.subscribe(JsonlTraceSink(self.trace))
        if self.progress is not None:
            telemetry.subscribe(ProgressSubscriber(self.progress))
        status = "aborted"
        backend = None
        retries = 0
        # Install the shared solve pool (if any) for everything this
        # scheduler thread executes in-process — serial-backend units
        # and the calibration pilot.  Out-of-process units solve
        # directly in their workers, which is bit-identical anyway.
        pool_stack = ExitStack()
        table = None
        table_before: dict | None = None
        try:
            if self.solve_pool is not None:
                channel = pool_stack.enter_context(
                    self.solve_pool.channel(telemetry)
                )
                pool_stack.enter_context(use_solve_pool(channel))
            # The run's solver kernel and solve table install alongside
            # the pool: ambient for everything this scheduler thread
            # executes in-process.  Out-of-process units resolve both
            # from the environment in their workers (see
            # backends.base.run_task / kernels.active_kernel) — always
            # bit-identical, so placement still never changes numbers.
            kernel_fallback = auto_fallback_info(self.kernel)
            pool_stack.enter_context(use_kernel(self.kernel))
            if self.solve_table and self.solve_table > 0:
                root = self.store.root if self.store is not None else None
                table = shared_table(root, self.solve_table)
                table_before = table.stats()
                pool_stack.enter_context(use_solve_table(table))
            else:
                # Explicitly disabled: install a cap-0 table so
                # in-process run_task sees *an* ambient table and never
                # falls back to the environment default.
                pool_stack.enter_context(use_solve_table(SolveTable(cap=0)))
            telemetry.emit(
                "run_start",
                plan=plan.name or "plan",
                cells=len(plan.cells),
                workers=self.workers,
                schema=TRACE_SCHEMA_VERSION,
            )
            if kernel_fallback is not None:
                telemetry.emit("kernel_fallback", **kernel_fallback)
            default_chunk = self.chunk_size
            calibration = None
            pilot = None
            if self.chunk_seconds is not None:
                calibration, pilot = self._calibrate_chunk(
                    plan, settings, telemetry
                )
                if calibration is not None:
                    default_chunk = calibration.chunk_size
            scheduler = PlanScheduler(
                plan,
                store=self.store,
                default_chunk=default_chunk,
                pilot=pilot,
                telemetry=telemetry,
            )
            pending = scheduler.scan()
            backend = self._backend_for(len(pending))
            failure_log: list[TaskFailure] = []
            if pending:
                tokens = {
                    id(item): unit_token(task_of(item), settings)
                    for item in pending
                }
                for item in pending:
                    telemetry.emit(
                        "unit_queued", token=tokens[id(item)], **_unit_fields(item)
                    )
                open_backend(
                    backend,
                    workers=self.workers,
                    tasks=len(pending),
                    settings=settings,
                    telemetry=telemetry,
                )
                try:
                    # future -> (queue item, attempt number); failed
                    # futures are replaced by their retry's future, so the
                    # map always holds exactly the in-flight attempts.
                    futures: dict = {}
                    for item in pending:
                        telemetry.emit(
                            "unit_submitted",
                            token=tokens[id(item)],
                            attempt=1,
                            backend=backend.name,
                            **_unit_fields(item),
                        )
                        futures[backend.submit(task_of(item), settings)] = (item, 1)
                    outstanding = set(futures)
                    while outstanding:
                        ready, outstanding = backend.wait_any(outstanding)
                        for future in ready:
                            item, attempt = futures.pop(future)
                            try:
                                value, seconds = future.result()
                            except Exception as exc:
                                retried = self._handle_failure(
                                    backend, settings, item, attempt, exc,
                                    futures, outstanding, failure_log,
                                    scheduler, telemetry,
                                )
                                retries += retried
                                continue
                            telemetry.emit(
                                "unit_finished",
                                token=tokens[id(item)],
                                attempt=attempt,
                                seconds=round(seconds, 6),
                                backend=backend.name,
                                **_unit_fields(item),
                            )
                            scheduler.finish(item, value, seconds)
                finally:
                    close_backend(backend)
            status = "ok"
        finally:
            pool_stack.close()
            if table is not None and table_before is not None:
                # The table is shared process-wide; journal this run's
                # *delta* so concurrent runs' summaries stay additive.
                after = table.stats()
                telemetry.emit(
                    "solve_table",
                    cap=table.cap,
                    hits=after["hits"] - table_before["hits"],
                    misses=after["misses"] - table_before["misses"],
                    ineligible=after["ineligible"] - table_before["ineligible"],
                    builds=after["builds"] - table_before["builds"],
                    build_seconds=round(
                        after["build_seconds"] - table_before["build_seconds"], 6
                    ),
                    rows_served=after["rows_served"]
                    - table_before["rows_served"],
                    entries=after["entries"],
                )
            telemetry.emit(
                "run_finish",
                status=status,
                seconds=round(time.perf_counter() - start, 6),
            )
            telemetry.close()
        return PlanOutcome(
            plan=plan,
            cells=scheduler.cells(),
            workers=self.workers,
            seconds=time.perf_counter() - start,
            calibration=calibration,
            backend=backend.name,
            failures=scheduler.failed(),
            retries=retries,
            metrics=metrics,
        )

    def _handle_failure(
        self,
        backend: ExecutionBackend,
        settings: "ExperimentSettings",
        item: tuple,
        attempt: int,
        exc: Exception,
        futures: dict,
        outstanding: set,
        failure_log: list[TaskFailure],
        scheduler: PlanScheduler,
        telemetry: RunTelemetry,
    ) -> int:
        """Consult the retry policy for one failed attempt.

        Returns 1 when the unit was resubmitted (after its
        deterministic backoff), 0 when it exhausted its attempts — in
        which case the cell is either quarantined
        (``on_error="continue"``) or the run aborts with a
        :class:`PlanExecutionError` carrying the full failure history.
        """
        task = task_of(item)
        token = unit_token(task, settings)
        failure = failure_from(task, token, attempt, exc, backend.name)
        failure_log.append(failure)
        telemetry.emit(
            "unit_failed",
            token=token,
            attempt=attempt,
            error=f"{type(exc).__name__}: {exc}",
            backend=backend.name,
            **_unit_fields(item),
        )
        policy = self.retry_policy
        if attempt <= policy.max_retries:
            delay = policy.delay(attempt, token)
            telemetry.emit(
                "retry",
                payload=failure,
                token=token,
                attempt=attempt + 1,
                max_attempts=policy.attempts,
                delay=round(delay, 6),
                **_unit_fields(item),
            )
            if delay > 0.0:
                time.sleep(delay)
            telemetry.emit(
                "unit_submitted",
                token=token,
                attempt=attempt + 1,
                backend=backend.name,
                **_unit_fields(item),
            )
            replacement = backend.submit(task, settings)
            futures[replacement] = (item, attempt + 1)
            outstanding.add(replacement)
            return 1
        if self.on_error == "continue":
            scheduler.quarantine(item, failure)
            telemetry.emit(
                "quarantine",
                payload=failure,
                token=token,
                attempts=failure.attempts,
                error=failure.error,
                **_unit_fields(item),
            )
            return 0
        raise PlanExecutionError(
            f"plan execution aborted: {failure.summary()}",
            failures=tuple(failure_log),
        ) from exc

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"store={self.store!r}, progress={self.progress is not None}, "
            f"chunk_size={self.chunk_size}, chunk_seconds={self.chunk_seconds}, "
            f"backend={self.backend!r}, "
            f"max_retries={self.retry_policy.max_retries}, "
            f"on_error={self.on_error!r}, trace={self.trace!r}, "
            f"solve_pool={self.solve_pool!r})"
        )


# ----------------------------------------------------------------------
# Module-default context: thin wrappers over RunContext for the
# pre-context API (configure()/default_executor()/execute(plan)).
# ----------------------------------------------------------------------

_UNSET = object()
_overrides: dict[str, Any] = {
    "workers": None,
    "cache_dir": None,
    "progress": None,
    "chunk_size": None,
    "chunk_seconds": None,
    "backend": None,
    "max_retries": None,
    "on_error": None,
    "trace": None,
    "kernel": None,
    "solve_table": None,
}


def configure(
    workers=_UNSET,
    cache_dir=_UNSET,
    progress=_UNSET,
    chunk_size=_UNSET,
    chunk_seconds=_UNSET,
    backend=_UNSET,
    max_retries=_UNSET,
    on_error=_UNSET,
    trace=_UNSET,
    kernel=_UNSET,
    solve_table=_UNSET,
    context: RunContext | None = None,
) -> None:
    """Set process-wide defaults for :func:`execute`.

    Thin wrapper over the per-request API: the values set here become
    the module-default :class:`~repro.runtime.settings.RunContext` that
    :func:`default_context` builds at call time (unset values fall back
    to the ``REPRO_*`` environment knobs via
    :mod:`repro.runtime.settings`).  Used by CLIs to route every
    subsequently-run experiment through a configured executor without
    threading parameters through each ``run_*`` signature.  New code
    that needs isolated or concurrent configurations should build a
    :class:`~repro.runtime.settings.RunContext` and pass it to
    :func:`execute` or :meth:`ParallelExecutor.from_context` instead of
    mutating process-wide state.

    Passing ``context=`` adopts every setting of an already-resolved
    :class:`~repro.runtime.settings.RunContext` as the module defaults
    in one call (mutually exclusive with the individual keywords).
    """
    if context is not None:
        if any(
            value is not _UNSET
            for value in (
                workers, cache_dir, progress, chunk_size, chunk_seconds,
                backend, max_retries, on_error, trace, kernel, solve_table,
            )
        ):
            raise ValidationError(
                "configure(context=...) is mutually exclusive with the "
                "individual keyword overrides"
            )
        _overrides.update(
            workers=context.workers,
            cache_dir=context.store,
            progress=context.progress,
            chunk_size=context.chunk_size,
            chunk_seconds=context.chunk_seconds,
            backend=context.backend,
            max_retries=None,
            on_error=context.on_error,
            trace=context.trace,
            kernel=context.kernel,
            solve_table=context.solve_table,
        )
        _overrides["retry_policy"] = context.retry_policy
        return
    _overrides.pop("retry_policy", None)
    if workers is not _UNSET:
        _overrides["workers"] = workers
    if cache_dir is not _UNSET:
        _overrides["cache_dir"] = cache_dir
    if progress is not _UNSET:
        _overrides["progress"] = progress
    if chunk_size is not _UNSET:
        _overrides["chunk_size"] = chunk_size
    if chunk_seconds is not _UNSET:
        _overrides["chunk_seconds"] = chunk_seconds
    if backend is not _UNSET:
        _overrides["backend"] = backend
    if max_retries is not _UNSET:
        _overrides["max_retries"] = max_retries
    if on_error is not _UNSET:
        _overrides["on_error"] = on_error
    if trace is not _UNSET:
        _overrides["trace"] = trace
    if kernel is not _UNSET:
        _overrides["kernel"] = kernel
    if solve_table is not _UNSET:
        _overrides["solve_table"] = solve_table


def reset_defaults() -> None:
    """Clear every :func:`configure` override (back to env fallback).

    After this, :func:`default_context` resolves purely from the
    ``REPRO_*`` environment again — what a fresh process sees.  Mainly
    for tests and long-lived hosts embedding several CLIs.
    """
    for key in _overrides:
        _overrides[key] = None
    _overrides.pop("retry_policy", None)


def default_context() -> RunContext:
    """The module-default :class:`RunContext`, built fresh at call time.

    :func:`configure` overrides are applied where set; everything else
    resolves through the ``REPRO_*`` environment knobs *now*, so a CI
    leg exporting ``REPRO_BACKEND`` after import still takes effect.
    """
    return RunContext(
        workers=_overrides["workers"],
        store=_overrides["cache_dir"],
        progress=_overrides["progress"],
        chunk_size=_overrides["chunk_size"],
        chunk_seconds=_overrides["chunk_seconds"],
        backend=_overrides["backend"],
        max_retries=_overrides["max_retries"],
        on_error=_overrides["on_error"],
        retry_policy=_overrides.get("retry_policy"),
        trace=_overrides["trace"],
        kernel=_overrides["kernel"],
        solve_table=_overrides["solve_table"],
    )


def default_executor() -> ParallelExecutor:
    """An executor over :func:`default_context`.

    Thin wrapper kept for the pre-context API; equivalent to
    ``ParallelExecutor.from_context(default_context())``.
    """
    return ParallelExecutor.from_context(default_context())


def execute(
    plan: StudyPlan,
    executor: ParallelExecutor | None = None,
    context: RunContext | None = None,
) -> PlanOutcome:
    """Run *plan* on *executor*, *context*, or the module default.

    Passing ``context=`` executes under that exact
    :class:`~repro.runtime.settings.RunContext` (mutually exclusive
    with ``executor=``); with neither, the :func:`configure`/
    environment default context applies.
    """
    if executor is not None and context is not None:
        raise ValidationError(
            "execute() takes an executor or a context, not both"
        )
    if context is not None:
        executor = ParallelExecutor.from_context(context)
    elif executor is None:
        executor = default_executor()
    return executor.run(plan)
