"""Parallel study execution with caching, resume, and progress.

:class:`ParallelExecutor` runs a :class:`~repro.runtime.spec.StudyPlan`
either serially (``workers=1``, the default) or fanned out over a
``ProcessPoolExecutor``.  Because every cell is seeded at plan-build
time and runners rebuild their inputs from specs, the two paths are
bit-identical — parallelism changes wall-clock, never numbers.

Cells completed earlier — in this run, a previous run, or a run that
was interrupted — are served from the optional
:class:`~repro.runtime.store.ResultStore`; fresh results are persisted
the moment they arrive in the parent process, so a grid killed halfway
resumes from its last completed cell.

The module-level :func:`execute` is the convenience entry point the
experiment modules use: it builds a default executor from
:func:`configure` overrides and the ``REPRO_WORKERS`` /
``REPRO_CACHE_DIR`` environment variables, read at call time so CI can
flip the whole suite to parallel execution without code changes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Union

from ..exceptions import ValidationError
from .cells import runner_for
from .progress import ProgressReporter
from .spec import CellSpec, StudyPlan, cache_token
from .store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import ExperimentSettings

__all__ = [
    "CellResult",
    "PlanOutcome",
    "ParallelExecutor",
    "configure",
    "default_executor",
    "execute",
]


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-served) cell.

    ``seconds`` is the compute time of the cell itself (0.0 for cache
    hits); ``cached`` records whether the value came from the store.
    """

    cell: CellSpec
    value: Any
    seconds: float
    cached: bool


@dataclass(frozen=True)
class PlanOutcome:
    """Everything a plan execution produced, in plan order."""

    plan: StudyPlan
    cells: tuple[CellResult, ...]
    workers: int
    seconds: float

    @property
    def results(self) -> dict[tuple, Any]:
        """Cell values keyed by each cell's plan key."""
        return {entry.cell.key: entry.value for entry in self.cells}

    @property
    def cache_hits(self) -> int:
        """Cells served from the result store."""
        return sum(1 for entry in self.cells if entry.cached)

    @property
    def cache_misses(self) -> int:
        """Cells that had to compute."""
        return len(self.cells) - self.cache_hits

    @property
    def compute_seconds(self) -> float:
        """Summed per-cell compute time (serial-equivalent work)."""
        return sum(entry.seconds for entry in self.cells)

    def summary(self) -> str:
        """One-line execution summary for logs and CLIs."""
        name = self.plan.name or "plan"
        return (
            f"{name}: {len(self.cells)} cells in {self.seconds:.2f}s "
            f"wall ({self.compute_seconds:.2f}s compute, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.cache_hits} cached)"
        )


def _resolve_workers(workers: int | None) -> int:
    """Explicit worker count, or the ``REPRO_WORKERS`` default (1)."""
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValidationError(
                    f"REPRO_WORKERS must be an integer, got {raw!r}"
                ) from None
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


def _run_cell(cell: CellSpec, settings: "ExperimentSettings") -> tuple[Any, float]:
    """Execute one cell; module-level so it pickles into workers."""
    start = time.perf_counter()
    value = runner_for(cell)(cell, settings)
    return value, time.perf_counter() - start


def _pool_context():
    """Fork where available: cheap start-up, and runners registered at
    runtime (e.g. custom cell types) are inherited by workers."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else methods[0])


class ParallelExecutor:
    """Executes study plans over a process pool with a result cache.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` reads ``REPRO_WORKERS`` (default 1).
        ``1`` executes serially in-process — the fallback path, also
        used automatically when a plan has at most one uncached cell.
    store:
        A :class:`~repro.runtime.store.ResultStore`, a directory path
        to root one at, or ``None`` to disable caching.
    progress:
        ``True`` for the default stderr reporter, a callable
        ``(done, total, CellResult) -> None`` for custom reporting, or
        ``None``/``False`` for silence.
    """

    def __init__(
        self,
        workers: int | None = None,
        store: Union[ResultStore, str, Path, None] = None,
        progress: Union[bool, Callable[[int, int, CellResult], None], None] = None,
    ):
        self.workers = _resolve_workers(workers)
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        if progress is True:
            progress = ProgressReporter()
        elif progress is False:
            progress = None
        self.progress: Callable[[int, int, CellResult], None] | None = progress

    def run(self, plan: StudyPlan) -> PlanOutcome:
        """Execute *plan*; returns results for every cell, plan-ordered.

        Cache lookups happen first, then pending cells execute (pool or
        serial).  Each fresh result is persisted to the store from the
        parent process as soon as it completes, so interruption at any
        point loses at most the cells still in flight.
        """
        start = time.perf_counter()
        total = len(plan.cells)
        entries: dict[int, CellResult] = {}
        pending: list[tuple[int, CellSpec, str | None]] = []
        done = 0

        def report(result: CellResult) -> None:
            nonlocal done
            done += 1
            if self.progress is not None:
                self.progress(done, total, result)

        for index, cell in enumerate(plan.cells):
            # Explicit None check: an empty ResultStore has len() == 0
            # and would read as falsy.
            token = cache_token(cell, plan.settings) if self.store is not None else None
            if token is not None:
                payload = self.store.load(token)
                if payload is not None:
                    entries[index] = CellResult(
                        cell=cell, value=payload["value"], seconds=0.0, cached=True
                    )
                    report(entries[index])
                    continue
            pending.append((index, cell, token))

        def finish(index: int, cell: CellSpec, token: str | None, value, seconds) -> None:
            if token is not None:
                self.store.save(
                    token, {"value": value, "label": cell.label, "seconds": seconds}
                )
            entries[index] = CellResult(
                cell=cell, value=value, seconds=seconds, cached=False
            )
            report(entries[index])

        if len(pending) > 1 and self.workers > 1:
            max_workers = min(self.workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=max_workers, mp_context=_pool_context()
            ) as pool:
                futures = {
                    pool.submit(_run_cell, cell, plan.settings): (index, cell, token)
                    for index, cell, token in pending
                }
                outstanding = set(futures)
                while outstanding:
                    ready, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in ready:
                        index, cell, token = futures[future]
                        value, seconds = future.result()
                        finish(index, cell, token, value, seconds)
        else:
            for index, cell, token in pending:
                value, seconds = _run_cell(cell, plan.settings)
                finish(index, cell, token, value, seconds)

        ordered = tuple(entries[index] for index in range(total))
        return PlanOutcome(
            plan=plan,
            cells=ordered,
            workers=self.workers,
            seconds=time.perf_counter() - start,
        )

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"store={self.store!r}, progress={self.progress is not None})"
        )


# ----------------------------------------------------------------------
# Module-level defaults used by the experiment modules
# ----------------------------------------------------------------------

_UNSET = object()
_defaults: dict[str, Any] = {"workers": None, "cache_dir": None, "progress": None}


def configure(workers=_UNSET, cache_dir=_UNSET, progress=_UNSET) -> None:
    """Set process-wide defaults for :func:`execute`.

    Used by CLIs to route every subsequently-run experiment through a
    configured executor without threading parameters through each
    ``run_*`` signature.  Unset values fall back to ``REPRO_WORKERS``
    and ``REPRO_CACHE_DIR`` at call time.
    """
    if workers is not _UNSET:
        _defaults["workers"] = workers
    if cache_dir is not _UNSET:
        _defaults["cache_dir"] = cache_dir
    if progress is not _UNSET:
        _defaults["progress"] = progress


def default_executor() -> ParallelExecutor:
    """An executor from :func:`configure` defaults and the environment."""
    cache_dir = _defaults["cache_dir"]
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip() or None
    return ParallelExecutor(
        workers=_defaults["workers"],
        store=cache_dir,
        progress=_defaults["progress"],
    )


def execute(plan: StudyPlan, executor: ParallelExecutor | None = None) -> PlanOutcome:
    """Run *plan* on *executor* (or the configured/env default)."""
    if executor is None:
        executor = default_executor()
    return executor.run(plan)
