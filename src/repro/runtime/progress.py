"""Per-cell progress and timing reporting for plan executions.

The default reporter prints one line per completed cell to stderr —
enough to watch a long grid converge, see which cells dominate the
wall-clock, and confirm that a resumed run is being served from cache —
without polluting stdout, which the experiment CLIs reserve for the
regenerated tables themselves.

Sharded cells report *aggregated*: a 1,000-repetition cell split into
20 shards still produces exactly one completion line (annotated with
its shard count), and the intermediate shard completions surface only
as an in-place ``shards done / total reps`` ticker on interactive
terminals — never as per-shard lines that would flood piped logs.
"""

from __future__ import annotations

import sys
import time
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import CellResult, ChunkCalibration
    from .faults import TaskFailure
    from .spec import CellSpec

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Prints ``[done/total] label seconds`` lines as cells complete.

    Parameters
    ----------
    stream:
        Output stream; defaults to ``sys.stderr`` (resolved at call
        time so pytest capture and redirection behave).
    tick_interval:
        Minimum seconds between shard-ticker redraws (default 0.1 —
        ~10 redraws/sec).  A ``chunk_size=1`` run can complete
        thousands of shards per second; without the throttle every
        completion rewrites the terminal line, flooding slow terminals
        with escape sequences.  The final tick of a cell always draws
        so the ticker never freezes short of ``shards_total``.
    """

    def __init__(
        self, stream: IO[str] | None = None, tick_interval: float = 0.1
    ):
        self._stream = stream
        self._ticking = False
        self.tick_interval = float(tick_interval)
        self._last_tick = float("-inf")

    def _resolve_stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    def __call__(self, done: int, total: int, result: "CellResult") -> None:
        stream = self._resolve_stream()
        width = len(str(total))
        if result.cached:
            timing = "cache"
        else:
            timing = f"{result.seconds:.2f}s"
        if result.shards > 1:
            resumed = (
                f", {result.shards_cached} resumed" if result.shards_cached else ""
            )
            timing += f", {result.shards} shards{resumed}"
        self._clear_ticker(stream)
        print(
            f"[{done:>{width}}/{total}] {result.cell.label}  ({timing})",
            file=stream,
            flush=True,
        )

    def calibration_update(self, calibration: "ChunkCalibration") -> None:
        """One line announcing the adaptive chunk-sizing outcome.

        Printed once per run (calibration happens before any scheduled
        work), so piped logs show which chunk size a ``chunk_seconds``
        run settled on without having to infer it from shard counts.
        """
        stream = self._resolve_stream()
        print(
            f"[calibrated] chunk_size={calibration.chunk_size} "
            f"({calibration.pilot_repetitions} pilot reps in "
            f"{calibration.pilot_seconds:.2f}s on "
            f"{'/'.join(str(part) for part in calibration.cell_key)})",
            file=stream,
            flush=True,
        )

    def retry_update(
        self,
        failure: "TaskFailure",
        attempt: int,
        max_attempts: int,
        delay: float,
    ) -> None:
        """One line per resubmission of a failed unit of work.

        Retries are rare enough (and important enough) that each gets a
        real line even in piped logs: which unit failed, with what, and
        which attempt is coming after what backoff.
        """
        stream = self._resolve_stream()
        self._clear_ticker(stream)
        print(
            f"[retry {attempt}/{max_attempts}] {failure.label}: "
            f"{failure.error} (backoff {delay:.2f}s)",
            file=stream,
            flush=True,
        )

    def failure_update(self, failure: "TaskFailure") -> None:
        """One line when a unit exhausts its retries and is quarantined
        (``on_error="continue"``)."""
        stream = self._resolve_stream()
        self._clear_ticker(stream)
        print(f"[quarantined] {failure.summary()}", file=stream, flush=True)

    def shard_update(
        self,
        cell: "CellSpec",
        shards_done: int,
        shards_total: int,
        reps_done: int,
        reps_total: int,
    ) -> None:
        """In-place ticker for a sharded cell's intermediate progress.

        Written only to interactive terminals (carriage-return rewrite,
        no newline), so piped logs and CI output see one line per cell
        regardless of how many shards it split into.  Redraws are
        throttled to one per ``tick_interval`` seconds; a cell's final
        tick (``shards_done == shards_total``) always draws.
        """
        stream = self._resolve_stream()
        if not getattr(stream, "isatty", lambda: False)():
            return
        now = time.monotonic()
        if (
            shards_done < shards_total
            and now - self._last_tick < self.tick_interval
        ):
            return
        self._last_tick = now
        print(
            f"\r\x1b[K  {cell.label}: {shards_done}/{shards_total} shards "
            f"({reps_done}/{reps_total} reps)",
            end="",
            file=stream,
            flush=True,
        )
        self._ticking = True

    def finish_update(self, status: str) -> None:
        """End-of-run hook (fired for clean and aborted runs alike).

        Exists to uphold one guarantee: whatever state the run died in
        — mid-ticker included, e.g. a
        :class:`~repro.runtime.faults.PlanExecutionError` abort between
        shard completions — the in-place ticker is cleared, so the
        traceback or next prompt starts on a clean line.
        """
        self._clear_ticker(self._resolve_stream())

    def _clear_ticker(self, stream: IO[str]) -> None:
        if self._ticking:
            print("\r\x1b[K", end="", file=stream, flush=True)
            self._ticking = False
