"""Per-cell progress and timing reporting for plan executions.

The default reporter prints one line per completed cell to stderr —
enough to watch a long grid converge, see which cells dominate the
wall-clock, and confirm that a resumed run is being served from cache —
without polluting stdout, which the experiment CLIs reserve for the
regenerated tables themselves.
"""

from __future__ import annotations

import sys
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import CellResult

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Prints ``[done/total] label seconds`` lines as cells complete.

    Parameters
    ----------
    stream:
        Output stream; defaults to ``sys.stderr`` (resolved at call
        time so pytest capture and redirection behave).
    """

    def __init__(self, stream: IO[str] | None = None):
        self._stream = stream

    def __call__(self, done: int, total: int, result: "CellResult") -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        width = len(str(total))
        if result.cached:
            timing = "cache"
        else:
            timing = f"{result.seconds:.2f}s"
        print(
            f"[{done:>{width}}/{total}] {result.cell.label}  ({timing})",
            file=stream,
            flush=True,
        )
