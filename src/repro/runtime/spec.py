"""Study grids as data: cell specifications and execution plans.

The paper's evidence is a grid of independent, seeded Monte-Carlo
cells — one (dataset, strategy, method, alpha) configuration per table
row or figure point.  The runtime layer turns that structure into an
explicit value: experiment modules *describe* their grid as a tuple of
:class:`CellSpec` objects collected in a :class:`StudyPlan`, and the
:class:`~repro.runtime.executor.ParallelExecutor` decides how to run
them (serially, or fanned out over worker processes) and whether a cell
can be served from the :class:`~repro.runtime.store.ResultStore`.

Cells are frozen dataclasses of primitives only — strings, numbers,
tuples — so they pickle across process boundaries and hash stably into
cache keys.  Everything stochastic is pinned at plan-build time: a
study cell carries the ``derive_seed(settings.seed, *seed_stream)``
stream indices of the existing seeding scheme, and audit cells carry
their concrete base seed, so parallel and serial execution (and any
completion order) produce bit-identical results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

from ..exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..experiments.config import ExperimentSettings

__all__ = [
    "CACHE_VERSION",
    "CellSpec",
    "CellShard",
    "StudyCell",
    "CoverageCell",
    "SequentialCoverageCell",
    "DynamicAuditCell",
    "PartitionedAuditCell",
    "StudyPlan",
    "cache_token",
    "shard_ranges",
    "shard_token",
]

#: Version tag mixed into every cache key.  Bump whenever a change to
#: the evaluators, interval solvers, or cell semantics makes previously
#: cached payloads stale.  2: cells grew the picklable ``method_payload``
#: field (full method configuration in the token, not just the spec
#: string).
CACHE_VERSION = 2


@dataclass(frozen=True)
class CellSpec:
    """One independent unit of work in a study grid.

    Attributes
    ----------
    key:
        Hashable identity of the cell inside its plan; becomes the key
        of the executor's results mapping (e.g. ``("YAGO", "SRS",
        "aHPD")``).  Must be unique within a plan.
    label:
        Human-readable cell name used in progress lines and stored on
        the produced result.
    method:
        Interval-method spec string (see
        :func:`repro.runtime.cells.build_method`), e.g. ``"Wilson"``,
        ``"HPD:Kerman"``.
    alpha:
        Significance-level override; ``None`` uses the plan settings'
        alpha.
    chunk_size:
        Repetition-sharding override for this cell: split its
        repetitions into shards of at most this many, each executed as
        an independent unit of work and merged bit-identically (see
        :func:`repro.runtime.cells.shard_reducer_for`).  ``None`` defers
        to the executor's chunk size (``REPRO_CHUNK_SIZE`` by default).
        Deliberately excluded from :func:`cache_token`: chunking changes
        scheduling, never numbers, so any chunking of a cell shares one
        cache entry for its merged result.
    method_payload:
        Full picklable method configuration — the primitive tuple
        produced by :func:`repro.runtime.cells.method_payload` — for
        methods whose configuration (informative priors, solver) is not
        captured by the ``method`` spec string.  When set, runners build
        the method from this payload (``method`` stays as the display
        name) and the payload participates in the cache token, so two
        ad-hoc methods with the same display name can never share an
        entry.
    """

    key: tuple
    label: str
    method: str
    alpha: float | None = None
    chunk_size: int | None = None
    method_payload: tuple | None = None


@dataclass(frozen=True)
class StudyCell(CellSpec):
    """A full Monte-Carlo study: repeated evaluation runs on one KG.

    Attributes
    ----------
    dataset:
        KG spec string (see :func:`repro.runtime.cells.build_kg`):
        a profile name (``"NELL"``), ``"SYN100M:<mu>"``, or
        ``"file:<path>"``.
    strategy:
        Sampling-design spec string: ``"SRS"``, ``"TWCS:<m>"``,
        ``"WCS"``, or ``"STRAT"``.
    seed_stream:
        Indices fed to ``derive_seed(settings.seed, *seed_stream)`` —
        the existing per-configuration stream scheme, preserved so that
        routed experiments reproduce their pre-runtime numbers exactly.
    units_per_iteration:
        Optional override of the evaluation loop's batch granularity
        (used by the batch-size ablation).
    priors:
        Optional ``(a, b, name)`` triples for an informative-prior
        aHPD (paper Example 2); kept as plain tuples so the cell stays
        picklable and cache-hashable.
    """

    dataset: str = "NELL"
    strategy: str = "SRS"
    seed_stream: tuple[int, ...] = (0,)
    units_per_iteration: int | None = None
    priors: tuple[tuple[float, float, str], ...] | None = None


@dataclass(frozen=True)
class CoverageCell(CellSpec):
    """A fixed-n empirical coverage measurement (one method, mu, n).

    ``seed`` is the concrete RNG seed (already derived at plan-build
    time), so the cell is self-contained and order-independent.
    ``repetitions`` of ``None`` uses the plan settings' count.
    """

    mu: float = 0.5
    n: int = 30
    seed: int = 0
    repetitions: int | None = None


@dataclass(frozen=True)
class SequentialCoverageCell(CellSpec):
    """A stopped-interval coverage measurement under the full procedure."""

    mu: float = 0.5
    seed: int = 0
    repetitions: int | None = None


@dataclass(frozen=True)
class DynamicAuditCell(CellSpec):
    """Monte-Carlo replications of an evolving-KG audit stream.

    One cell is a full Sec.-8 scenario: a base KG plus cumulative
    update batches, re-audited after each batch with the posterior
    carried forward as next round's informative prior.  Repetition
    sharding splits the *replications* of the stream; the carried prior
    threads through the rounds within each replication, so shards stay
    independent and merge bit-identically.

    Attributes
    ----------
    base_facts / base_accuracy:
        The initial KG snapshot's size and ground-truth accuracy.
    updates:
        ``(num_facts, accuracy, intra_cluster_correlation)`` triples,
        one per cumulative content batch, in arrival order.
    stream_seed:
        Concrete seed of the evolving-KG generator (already derived at
        plan-build time).
    strategy:
        Sampling-design spec string used in every audit round.
    carryover:
        Fraction of the previous round's posterior pseudo-counts kept
        as the next round's informative prior (0.0 = independent
        re-audits).
    max_prior_strength:
        Cap on the carried prior's pseudo-annotation count.
    seed:
        Base audit seed; repetition ``r``, round ``i`` audits under
        ``seed + r * rounds + i`` (see
        :meth:`repro.evaluation.dynamic.DynamicAuditor.audit_study`).
    repetitions:
        Stream replications; ``None`` uses the plan settings' count.
    """

    base_facts: int = 6_000
    base_accuracy: float = 0.85
    updates: tuple[tuple[int, float, float], ...] = ()
    stream_seed: int = 0
    strategy: str = "TWCS:3"
    carryover: float = 1.0
    max_prior_strength: float = 200.0
    seed: int = 0
    repetitions: int | None = None


@dataclass(frozen=True)
class PartitionedAuditCell(CellSpec):
    """A per-predicate partitioned audit of one KG under a shared budget.

    The cell shards over *partitions* rather than repetitions: the
    runtime's repetition index enumerates the KG's predicates (in their
    deterministic sorted order), each shard computes the budget-
    independent annotation trajectories of its partition window, and
    the reducer merges the integer-evidence partials, replays the
    budget allocation, and performs the shared interval solves once —
    bit-identical to the serial :func:`~repro.evaluation.partitioned.
    audit_by_predicate` for any chunking.

    Attributes
    ----------
    dataset:
        KG spec string (see :func:`repro.runtime.cells.build_kg`).
    epsilon:
        Per-partition MoE threshold.
    min_per_partition:
        Calibrated stop-rule floor per partition.
    max_triples:
        Global annotation budget.
    seed:
        Concrete RNG seed of the partition permutations.
    """

    dataset: str = "NELL"
    epsilon: float = 0.05
    min_per_partition: int = 30
    max_triples: int = 50_000
    seed: int = 0


@dataclass(frozen=True)
class CellShard:
    """One contiguous repetition window of a sharded cell.

    Shards are fixed at plan-schedule time: the parent cell, the shard's
    position, and its half-open ``[rep_start, rep_stop)`` window fully
    determine the work, and the per-repetition seed sub-streams are the
    *global* repetition indices of the parent cell's ``derive_seed``
    stream — which is what makes the merged result bit-identical to the
    unsharded run for any chunking.
    """

    cell: CellSpec
    index: int
    shards: int
    rep_start: int
    rep_stop: int

    @property
    def repetitions(self) -> int:
        """Repetitions covered by this shard."""
        return self.rep_stop - self.rep_start

    @property
    def label(self) -> str:
        """Progress label: the parent label plus the rep window."""
        return f"{self.cell.label}[{self.rep_start}:{self.rep_stop}]"


def shard_ranges(repetitions: int, chunk_size: int) -> tuple[tuple[int, int], ...]:
    """Contiguous ``[start, stop)`` windows covering *repetitions*.

    Every window holds *chunk_size* repetitions except a ragged final
    one.  ``chunk_size >= repetitions`` yields the single full window.
    """
    repetitions = int(repetitions)
    chunk_size = int(chunk_size)
    if repetitions < 1:
        raise ValidationError(f"repetitions must be >= 1, got {repetitions}")
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    return tuple(
        (start, min(start + chunk_size, repetitions))
        for start in range(0, repetitions, chunk_size)
    )


@dataclass(frozen=True)
class StudyPlan:
    """An executable description of a study grid.

    Attributes
    ----------
    settings:
        The shared :class:`~repro.experiments.config.ExperimentSettings`
        (repetitions, seeds, alpha/epsilon, HPD solver).
    cells:
        The grid, in deterministic plan order.  Keys must be unique.
    name:
        Plan identifier used in progress output (e.g. ``"table3"``).
    """

    settings: "ExperimentSettings"
    cells: tuple[CellSpec, ...]
    name: str = ""

    def __post_init__(self) -> None:
        seen: set[tuple] = set()
        for cell in self.cells:
            if cell.key in seen:
                raise ValidationError(f"duplicate cell key in plan: {cell.key!r}")
            seen.add(cell.key)

    def __len__(self) -> int:
        return len(self.cells)


#: Settings fields that feed the execution of a cell (and therefore the
#: cache identity of its result).  ``datasets`` is deliberately absent:
#: it shapes plan construction, not cell execution.
_SETTINGS_TOKEN_FIELDS = (
    "repetitions",
    "seed",
    "dataset_seed",
    "alpha",
    "epsilon",
    "solver",
)


def cache_token(cell: CellSpec, settings: "ExperimentSettings") -> str:
    """Content hash identifying *cell*'s result under *settings*.

    The token covers every input of the computation: the cell fields,
    the settings fields the runners read, and :data:`CACHE_VERSION` as
    a stand-in for the code revision of the numerical kernels.  Two
    invocations with the same token are guaranteed to produce the same
    payload, so the :class:`~repro.runtime.store.ResultStore` can serve
    re-runs and resume interrupted grids safely.

    Deliberately absent, like ``chunk_size``: anything that only
    changes *where or in what pieces* the work runs — the worker
    count and the execution backend.  A grid computed on one backend
    is a cache hit on every other, which is what lets a run
    interrupted under one backend resume under another.
    """
    fields = asdict(cell)
    # Chunking is pure scheduling: any sharding of a cell produces the
    # same merged numbers, so the token must not depend on it — a cell
    # computed under one chunk size is a cache hit under every other.
    fields.pop("chunk_size", None)
    payload = {
        "version": CACHE_VERSION,
        "kind": type(cell).__name__,
        "cell": fields,
        "settings": {
            name: getattr(settings, name) for name in _SETTINGS_TOKEN_FIELDS
        },
    }
    dataset = getattr(cell, "dataset", "")
    if dataset.startswith("file:"):
        # Profiled/synthetic KGs are pure functions of (spec, seed), but
        # a file-backed KG can change on disk under an unchanged spec —
        # fold its size and mtime into the token so edits invalidate
        # cached results instead of silently serving stale ones.
        payload["dataset_file"] = _file_fingerprint(dataset.split(":", 1)[1])
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def shard_token(
    shard: CellShard, settings: "ExperimentSettings", total_repetitions: int
) -> str:
    """Content hash identifying one shard's partial payload.

    Derived from the parent cell's :func:`cache_token` plus the shard's
    repetition window and the cell's total repetition count, so shard
    entries are stable across runs of the same chunking and can never
    collide with full-cell entries or with shards of a different
    chunking/total.
    """
    base = cache_token(shard.cell, settings)
    suffix = f":shard:{shard.rep_start}:{shard.rep_stop}:{int(total_repetitions)}"
    return hashlib.sha256((base + suffix).encode("utf-8")).hexdigest()


def _file_fingerprint(path: str) -> tuple:
    try:
        stat = os.stat(path)
    except OSError:
        # The runner will surface the missing file as a load error.
        return ("missing",)
    return (stat.st_size, stat.st_mtime_ns)
