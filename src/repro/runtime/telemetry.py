"""Run-scoped structured telemetry: event bus, journal sink, metrics.

Every plan execution owns one :class:`RunTelemetry` — an in-process
event bus the scheduler, executor, and backends emit structured
lifecycle events into: plan/cache-scan start and finish, units queued /
submitted / finished / failed, cache hits, shard merges, retries,
quarantines, spool lease reclaims and dead letters, chaos injections,
and worker-side execution spans.  Each :class:`TelemetryEvent` carries
the run id, a monotonic timestamp relative to the run start, a wall
clock, and a flat dict of JSON-ready primitive fields.

Two built-in subscribers cover the common cases:

* :class:`JsonlTraceSink` appends one JSON object per event to a
  journal file (``--trace FILE`` / ``REPRO_TRACE_FILE``), giving a
  machine-readable record of *where a run's time went* — including
  spans stamped by detached spool workers on other hosts;
* :class:`MetricsAggregate` folds the same events into in-memory run
  metrics (cache hit ratio, queue-wait vs execute time, retry and
  fault counts, per-cell-kind and per-backend totals) attached to the
  :class:`~repro.runtime.scheduler.PlanOutcome` as a volatile field.

Because the aggregate consumes nothing but the primitive event fields,
it can be *replayed* from a journal file alone
(:func:`replay_metrics`) — which is what ``python -m repro trace
summarize`` does, and what the test suite uses to prove the journal is
a complete record.

Telemetry is strictly non-semantic.  Events are emitted *about* the
run, never consulted *by* it: tracing on or off changes no result
bytes, no cache tokens, and no seeds — a property the suite pins with
a bit-identity test.
"""

from __future__ import annotations

import json
import time
import uuid
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Callable, Iterable, Union

from ..exceptions import ValidationError
from . import settings as _settings

__all__ = [
    "EVENT_TYPES",
    "JsonlTraceSink",
    "MetricsAggregate",
    "ProgressSubscriber",
    "RunTelemetry",
    "TelemetryEvent",
    "read_journal",
    "render_summary",
    "replay_metrics",
    "resolve_trace_file",
    "summarize_journal",
]

#: Journal schema version, stamped into every ``run_start`` event and
#: into emitted metric summaries.  Bump when event names or field
#: meanings change incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Every event type the runtime emits.  The journal-schema check (CI
#: and ``python -m repro trace check``) rejects anything else, so a
#: new emission site must register its type here.
EVENT_TYPES = frozenset(
    {
        "run_start",  # plan name, cell count, workers, backend spec
        "scan_start",  # cache scan beginning
        "cache_hit",  # one cell served whole from the store
        "shard_cache_hit",  # one shard window resumed from the store
        "unit_queued",  # one cell/shard entered the ready queue
        "scan_finish",  # cache scan done; pending unit count
        "calibration",  # adaptive chunk-sizing pilot outcome
        "unit_submitted",  # one unit handed to the backend (per attempt)
        "unit_finished",  # one unit returned a value
        "unit_failed",  # one attempt raised
        "retry",  # a failed unit was resubmitted
        "quarantine",  # a unit exhausted retries under on_error=continue
        "cell_finished",  # one cell result complete (computed or cached)
        "shard_merged",  # a sharded cell's partials merged
        "shard_progress",  # intermediate shard completion (ticker feed)
        "worker_span",  # worker-side execution span (spool backends)
        "lease_reclaim",  # a stale spool lease was requeued
        "dead_letter",  # a spool task was buried in dead/
        "chaos_inject",  # the chaos backend faulted a unit
        "solve_batch_flush",  # cross-request interval-solve batch flushed
        "solve_table",  # run's small-n solve-table usage (hits/builds)
        "kernel_fallback",  # requested solver kernel degraded (auto→numpy)
        "run_finish",  # run over; status ok/aborted, wall seconds
    }
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured lifecycle event of a plan execution.

    Attributes
    ----------
    event:
        Type name, always a member of :data:`EVENT_TYPES`.
    run_id:
        Short hex id of the owning run; every event of one execution
        carries the same value, so interleaved journals disentangle.
    t:
        Monotonic seconds since the run's telemetry started — immune
        to wall-clock jumps, the timestamp to diff.
    wall:
        Unix wall-clock seconds at emission (cross-host correlation;
        subject to clock skew between hosts).
    fields:
        Flat JSON-ready payload: strings, numbers, booleans, ``None``.
    payload:
        Optional rich in-process object (a ``CellResult``, a
        ``TaskFailure``) for same-process subscribers like the progress
        reporter.  Never serialised into the journal.
    """

    event: str
    run_id: str
    t: float
    wall: float
    fields: dict = field(default_factory=dict)
    payload: Any = None


class RunTelemetry:
    """Event bus for one plan execution.

    Subscribers are plain callables receiving a :class:`TelemetryEvent`;
    they are invoked synchronously, in subscription order, from the
    emitting (scheduler) process.  A subscriber with a ``close`` method
    has it called when the bus closes at the end of the run.

    Parameters
    ----------
    run_id:
        Run identifier stamped into every event; ``None`` generates a
        fresh short hex id.
    """

    def __init__(self, run_id: str | None = None):
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self._t0 = time.monotonic()
        self._subscribers: list[Callable[[TelemetryEvent], None]] = []

    def subscribe(self, subscriber: Callable[[TelemetryEvent], None]) -> None:
        """Attach *subscriber* to every subsequent event."""
        self._subscribers.append(subscriber)

    def emit(self, event: str, payload: Any = None, **fields) -> TelemetryEvent:
        """Build and dispatch one event; returns it (tests use this)."""
        if event not in EVENT_TYPES:
            raise ValidationError(
                f"unknown telemetry event type {event!r}; "
                "register new types in repro.runtime.telemetry.EVENT_TYPES"
            )
        record = TelemetryEvent(
            event=event,
            run_id=self.run_id,
            # Rounded at the source so the in-memory aggregate and a
            # journal replay consume *identical* timestamps — replayed
            # metrics must match the live ones to the last digit.
            t=round(time.monotonic() - self._t0, 6),
            wall=time.time(),
            fields=fields,
            payload=payload,
        )
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def close(self) -> None:
        """Close every subscriber that has a ``close`` method."""
        for subscriber in self._subscribers:
            close = getattr(subscriber, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:
        return (
            f"RunTelemetry(run_id={self.run_id!r}, "
            f"subscribers={len(self._subscribers)})"
        )


def resolve_trace_file(trace: Union[str, Path, None]) -> Path | None:
    """Explicit journal path, or the ``REPRO_TRACE_FILE`` default (off).

    Thin delegate kept for import stability; the resolution logic lives
    in :func:`repro.runtime.settings.resolve_trace_file`.
    """
    return _settings.resolve_trace_file(trace)


class JsonlTraceSink:
    """Appends one JSON object per event to a journal file.

    The file is opened lazily on the first event and appended to, so
    several runs of one process (or several processes on a shared
    filesystem, line-buffered) interleave whole lines; the ``run_id``
    field disentangles them.  Lines are flushed as written — a killed
    run's journal is complete up to the event in flight.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle: IO[str] | None = None

    def __call__(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        record = {
            "event": event.event,
            "run_id": event.run_id,
            "t": round(event.t, 6),
            "wall": round(event.wall, 6),
            **event.fields,
        }
        self._handle.write(json.dumps(record, sort_keys=True, default=repr) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ProgressSubscriber:
    """Adapts the classic progress protocol to the event stream.

    The runtime's progress protocol predates telemetry: a callable
    ``(done, total, CellResult)`` plus optional duck-typed hooks
    (``shard_update``, ``calibration_update``, ``retry_update``,
    ``failure_update``, ``finish_update``).  This subscriber replays
    events into that protocol, which is how both the built-in
    :class:`~repro.runtime.progress.ProgressReporter` and any custom
    progress callable ride the same event stream the journal records.
    """

    def __init__(self, progress: Callable):
        self.progress = progress

    def __call__(self, event: TelemetryEvent) -> None:
        kind, fields = event.event, event.fields
        if kind == "cell_finished":
            self.progress(fields["done"], fields["total"], event.payload)
            return
        hook_name = {
            "shard_progress": "shard_update",
            "calibration": "calibration_update",
            "retry": "retry_update",
            "quarantine": "failure_update",
            "run_finish": "finish_update",
        }.get(kind)
        if hook_name is None:
            return
        hook = getattr(self.progress, hook_name, None)
        if hook is None:
            return
        if kind == "shard_progress":
            hook(
                event.payload,
                fields["shards_done"],
                fields["shards_total"],
                fields["reps_done"],
                fields["reps_total"],
            )
        elif kind == "calibration":
            hook(event.payload)
        elif kind == "retry":
            hook(
                event.payload,
                fields["attempt"],
                fields["max_attempts"],
                fields["delay"],
            )
        elif kind == "quarantine":
            hook(event.payload)
        else:  # run_finish
            hook(fields["status"])


def _zero_totals() -> dict:
    return {"units": 0, "execute_seconds": 0.0, "queue_wait_seconds": 0.0}


class MetricsAggregate:
    """In-memory run metrics folded from the event stream.

    Consumes nothing but primitive event fields, so the same class
    replays identically from a journal file (:func:`replay_metrics`) —
    the aggregate a live run attaches to its
    :class:`~repro.runtime.scheduler.PlanOutcome` and the one
    ``python -m repro trace summarize`` rebuilds from disk agree
    count for count.

    Queue wait is measured scheduler-side: the gap between a unit's
    submission to the backend and the collection of its result, minus
    the worker-reported execute seconds — i.e. everything that is not
    compute (queueing, claim latency, result round-trip).  Worker-side
    spans refine that for spool runs with per-claim latency.
    """

    def __init__(self) -> None:
        self.run_id: str | None = None
        self.events: dict[str, int] = defaultdict(int)
        self.cache_hits = 0
        self.cache_misses = 0
        self.shard_cache_hits = 0
        self.retries = 0
        self.failures = 0
        self.quarantined = 0
        self.dead_letters = 0
        self.chaos_injections = 0
        self.lease_reclaims = 0
        self.solve_flushes = 0
        self.solve_coalesced_flushes = 0
        self.solve_rows = 0
        self.solve_max_callers = 0
        self.table_hits = 0
        self.table_misses = 0
        self.table_ineligible = 0
        self.table_builds = 0
        self.table_build_seconds = 0.0
        self.table_rows_served = 0
        self.table_cap: int | None = None
        self.kernel_fallbacks: list[dict] = []
        self.execute_seconds = 0.0
        self.queue_wait_seconds = 0.0
        self.wall_seconds = 0.0
        self.status: str | None = None
        self.by_kind: dict[str, dict] = defaultdict(_zero_totals)
        self.by_backend: dict[str, dict] = defaultdict(_zero_totals)
        self.units: dict[str, dict] = {}
        self.worker_spans: list[dict] = []
        self._submitted: dict[tuple[str, int], float] = {}

    # -- event folding --------------------------------------------------

    def __call__(self, event: TelemetryEvent) -> None:
        fields = event.fields
        self.events[event.event] += 1
        if self.run_id is None:
            self.run_id = event.run_id
        if event.event == "cache_hit":
            self.cache_hits += 1
        elif event.event == "shard_cache_hit":
            self.shard_cache_hits += 1
        elif event.event == "unit_submitted":
            self._submitted[(fields["token"], fields["attempt"])] = event.t
        elif event.event == "unit_finished":
            self._finish_unit(event)
        elif event.event == "unit_failed":
            self.failures += 1
            self._submitted.pop((fields["token"], fields["attempt"]), None)
        elif event.event == "retry":
            self.retries += 1
        elif event.event == "quarantine":
            self.quarantined += 1
        elif event.event == "dead_letter":
            self.dead_letters += 1
        elif event.event == "chaos_inject":
            self.chaos_injections += 1
        elif event.event == "lease_reclaim":
            self.lease_reclaims += 1
        elif event.event == "solve_batch_flush":
            # One event per flush this run rode; `rows_own` is this
            # run's share, `callers` the coalesced-caller count of the
            # whole flush (other callers journal their own shares).
            self.solve_flushes += 1
            self.solve_rows += int(fields.get("rows_own", fields.get("rows", 0)))
            callers = int(fields.get("callers", 1))
            self.solve_max_callers = max(self.solve_max_callers, callers)
            if callers > 1:
                self.solve_coalesced_flushes += 1
        elif event.event == "solve_table":
            # One per run, carrying the run's *delta* against the
            # process-wide shared table, so multi-run aggregates sum.
            self.table_hits += int(fields.get("hits", 0))
            self.table_misses += int(fields.get("misses", 0))
            self.table_ineligible += int(fields.get("ineligible", 0))
            self.table_builds += int(fields.get("builds", 0))
            self.table_build_seconds += float(fields.get("build_seconds", 0.0))
            self.table_rows_served += int(fields.get("rows_served", 0))
            if fields.get("cap") is not None:
                self.table_cap = int(fields["cap"])
        elif event.event == "kernel_fallback":
            self.kernel_fallbacks.append(dict(fields))
        elif event.event == "cell_finished":
            if not fields.get("cached", False):
                self.cache_misses += 1
        elif event.event == "worker_span":
            self.worker_spans.append(dict(fields))
        elif event.event == "run_finish":
            self.status = fields.get("status")
            self.wall_seconds = fields.get("seconds", event.t)

    def _finish_unit(self, event: TelemetryEvent) -> None:
        fields = event.fields
        token = fields["token"]
        execute = float(fields.get("seconds", 0.0))
        submitted = self._submitted.pop((token, fields["attempt"]), None)
        wait = max(0.0, event.t - submitted - execute) if submitted is not None else 0.0
        self.execute_seconds += execute
        self.queue_wait_seconds += wait
        entry = self.units.setdefault(
            token,
            {
                "label": fields.get("label"),
                "unit": fields.get("unit"),
                "kind": fields.get("kind"),
                "attempts": 0,
                "execute_seconds": 0.0,
                "queue_wait_seconds": 0.0,
            },
        )
        entry["attempts"] += 1
        entry["execute_seconds"] += execute
        entry["queue_wait_seconds"] += wait
        for group, key in (
            (self.by_kind, fields.get("kind", "?")),
            (self.by_backend, fields.get("backend", "?")),
        ):
            totals = group[key]
            totals["units"] += 1
            totals["execute_seconds"] += execute
            totals["queue_wait_seconds"] += wait

    # -- derived views --------------------------------------------------

    @property
    def cache_hit_ratio(self) -> float:
        """Cells served whole from cache over all finished cells."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def slowest(self, top: int = 10) -> list[dict]:
        """The *top* units by summed execute seconds, slowest first."""
        ranked = sorted(
            (
                {"token": token, **entry}
                for token, entry in self.units.items()
            ),
            key=lambda entry: entry["execute_seconds"],
            reverse=True,
        )
        return ranked[: max(0, int(top))]

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the ``BENCH_*.json`` building block)."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "status": self.status,
            "wall_seconds": round(self.wall_seconds, 6),
            "events": dict(sorted(self.events.items())),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "shard_hits": self.shard_cache_hits,
                "hit_ratio": round(self.cache_hit_ratio, 6),
            },
            "faults": {
                "failed_attempts": self.failures,
                "retries": self.retries,
                "quarantined": self.quarantined,
                "dead_letters": self.dead_letters,
                "chaos_injections": self.chaos_injections,
                "lease_reclaims": self.lease_reclaims,
            },
            "timing": {
                "execute_seconds": round(self.execute_seconds, 6),
                "queue_wait_seconds": round(self.queue_wait_seconds, 6),
            },
            "solve_batching": {
                "flushes": self.solve_flushes,
                "coalesced_flushes": self.solve_coalesced_flushes,
                "rows": self.solve_rows,
                "max_callers": self.solve_max_callers,
            },
            "solve_table": {
                "cap": self.table_cap,
                "hits": self.table_hits,
                "misses": self.table_misses,
                "ineligible": self.table_ineligible,
                "builds": self.table_builds,
                "build_seconds": round(self.table_build_seconds, 6),
                "rows_served": self.table_rows_served,
            },
            "kernel": {
                "fallbacks": list(self.kernel_fallbacks),
            },
            "by_kind": {
                kind: {
                    "units": totals["units"],
                    "execute_seconds": round(totals["execute_seconds"], 6),
                    "queue_wait_seconds": round(totals["queue_wait_seconds"], 6),
                }
                for kind, totals in sorted(self.by_kind.items())
            },
            "by_backend": {
                name: {
                    "units": totals["units"],
                    "execute_seconds": round(totals["execute_seconds"], 6),
                    "queue_wait_seconds": round(totals["queue_wait_seconds"], 6),
                }
                for name, totals in sorted(self.by_backend.items())
            },
            "worker_spans": len(self.worker_spans),
        }


# ----------------------------------------------------------------------
# Journal reading / replay / summaries
# ----------------------------------------------------------------------


def read_journal(path: Union[str, Path]) -> list[dict]:
    """Parse a JSONL journal; every line must be a known-schema event.

    Raises :class:`~repro.exceptions.ValidationError` naming the first
    offending line when a line is not JSON, not an object, lacks the
    required keys, or carries an unknown event type — the assertion
    CI's journal-schema step leans on.
    """
    path = Path(path)
    records: list[dict] = []
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{number}: not valid JSON ({exc})"
                ) from None
            if not isinstance(record, dict):
                raise ValidationError(
                    f"{path}:{number}: journal lines must be JSON objects, "
                    f"got {type(record).__name__}"
                )
            missing = [key for key in ("event", "run_id", "t") if key not in record]
            if missing:
                raise ValidationError(
                    f"{path}:{number}: missing required keys: "
                    + ", ".join(missing)
                )
            if record["event"] not in EVENT_TYPES:
                raise ValidationError(
                    f"{path}:{number}: unknown event type {record['event']!r}"
                )
            records.append(record)
    return records


def replay_metrics(
    records: Iterable[dict], run_id: str | None = None
) -> MetricsAggregate:
    """Fold journal *records* into a fresh :class:`MetricsAggregate`.

    *run_id* restricts the replay to one run's events (a journal file
    may interleave several runs); ``None`` replays everything.  Because
    the aggregate reads only primitive fields, replaying a run's
    journal reproduces the live run's aggregate exactly.
    """
    metrics = MetricsAggregate()
    for record in records:
        if run_id is not None and record.get("run_id") != run_id:
            continue
        fields = {
            key: value
            for key, value in record.items()
            if key not in ("event", "run_id", "t", "wall")
        }
        metrics(
            TelemetryEvent(
                event=record["event"],
                run_id=record["run_id"],
                t=float(record["t"]),
                wall=float(record.get("wall", 0.0)),
                fields=fields,
            )
        )
    return metrics


def summarize_journal(
    path: Union[str, Path], run_id: str | None = None, top: int = 10
) -> dict:
    """Machine-readable summary of a journal file.

    The ``aggregate`` key is the replayed :meth:`MetricsAggregate.
    as_dict` snapshot; ``runs`` lists every run id seen (with its cell
    count and status); ``slowest`` ranks units by execute seconds.
    *run_id* restricts both the run listing and the aggregate to one
    run of a multi-run journal.
    """
    records = read_journal(path)
    if run_id is not None:
        records = [record for record in records if record["run_id"] == run_id]
    runs: dict[str, dict] = {}
    for record in records:
        entry = runs.setdefault(
            record["run_id"], {"plan": None, "cells": None, "status": None}
        )
        if record["event"] == "run_start":
            entry["plan"] = record.get("plan")
            entry["cells"] = record.get("cells")
        elif record["event"] == "run_finish":
            entry["status"] = record.get("status")
    metrics = replay_metrics(records, run_id=run_id)
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "journal": str(path),
        "runs": runs,
        "aggregate": metrics.as_dict(),
        "slowest": metrics.slowest(top=top),
    }


def render_summary(summary: dict, fmt: str = "text") -> str:
    """Render a :func:`summarize_journal` result for the CLI."""
    if fmt == "json":
        return json.dumps(summary, indent=2, sort_keys=True)
    if fmt != "text":
        raise ValidationError(f"unknown trace summary format {fmt!r}")
    aggregate = summary["aggregate"]
    cache = aggregate["cache"]
    faults = aggregate["faults"]
    timing = aggregate["timing"]
    lines = [f"journal: {summary['journal']}"]
    for run_id, entry in summary["runs"].items():
        plan = entry["plan"] or "plan"
        cells = entry["cells"] if entry["cells"] is not None else "?"
        status = entry["status"] or "incomplete"
        lines.append(f"run {run_id}: {plan}, {cells} cells, {status}")
    lines += [
        "",
        "timing",
        f"  execute seconds    : {timing['execute_seconds']:.3f}",
        f"  queue-wait seconds : {timing['queue_wait_seconds']:.3f}",
        "",
        "cache",
        f"  cell hits / misses : {cache['hits']} / {cache['misses']}"
        f"  (ratio {cache['hit_ratio']:.2f})",
        f"  shard resume hits  : {cache['shard_hits']}",
        "",
        "faults",
        f"  failed attempts    : {faults['failed_attempts']}",
        f"  retries            : {faults['retries']}",
        f"  quarantined        : {faults['quarantined']}",
        f"  dead letters       : {faults['dead_letters']}",
        f"  chaos injections   : {faults['chaos_injections']}",
        f"  lease reclaims     : {faults['lease_reclaims']}",
    ]
    batching = aggregate.get("solve_batching", {})
    if batching.get("flushes"):
        lines += [
            "",
            "solve batching",
            f"  flushes ridden     : {batching['flushes']}"
            f"  (coalesced {batching['coalesced_flushes']})",
            f"  rows solved        : {batching['rows']}",
            f"  max callers/flush  : {batching['max_callers']}",
        ]
    table = aggregate.get("solve_table", {})
    if table.get("hits") or table.get("builds"):
        lines += [
            "",
            "solve table",
            f"  serves / misses    : {table['hits']} / {table['misses']}",
            f"  rows served        : {table['rows_served']}",
            f"  tables built       : {table['builds']}"
            f"  ({table['build_seconds']:.3f}s)",
        ]
    kernel = aggregate.get("kernel", {})
    for fallback in kernel.get("fallbacks", []):
        lines.append(
            f"kernel fallback: {fallback.get('requested')} -> "
            f"{fallback.get('resolved')} ({fallback.get('reason')})"
        )
    if aggregate["by_kind"]:
        lines += ["", "per cell kind (units, execute s, queue-wait s)"]
        for kind, totals in aggregate["by_kind"].items():
            lines.append(
                f"  {kind:<24} {totals['units']:>5}  "
                f"{totals['execute_seconds']:>9.3f}  "
                f"{totals['queue_wait_seconds']:>9.3f}"
            )
    if aggregate["by_backend"]:
        lines += ["", "per backend (units, execute s, queue-wait s)"]
        for name, totals in aggregate["by_backend"].items():
            lines.append(
                f"  {name:<24} {totals['units']:>5}  "
                f"{totals['execute_seconds']:>9.3f}  "
                f"{totals['queue_wait_seconds']:>9.3f}"
            )
    if summary["slowest"]:
        lines += ["", "slowest units (execute s, queue-wait s, attempts)"]
        for entry in summary["slowest"]:
            lines.append(
                f"  {entry['label'] or entry['token'][:12]:<40} "
                f"{entry['execute_seconds']:>9.3f}  "
                f"{entry['queue_wait_seconds']:>9.3f}  "
                f"{entry['attempts']:>3}"
            )
    if aggregate["worker_spans"]:
        lines += ["", f"worker spans recorded: {aggregate['worker_spans']}"]
    return "\n".join(lines)
