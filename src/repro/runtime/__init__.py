"""Study-execution runtime: parallel grids, caching, resume.

The layer between the evaluators and the experiment scripts.  A grid of
Monte-Carlo cells is described as data (:class:`StudyPlan` /
:class:`CellSpec`), executed serially or across worker processes with
bit-identical results (:class:`ParallelExecutor`), cached and resumed
through a content-addressed disk store (:class:`ResultStore`), and
reported cell by cell (:class:`ProgressReporter`).

Cells themselves shard: with a chunk size configured, a cell's
repetitions split into independent sub-cell windows (:class:`CellShard`)
that fan out across workers and merge back bit-identically, so one
1,000-repetition cell no longer serialises on a single worker.

Environment knobs (read when :func:`execute` builds the default
executor): ``REPRO_WORKERS`` sets the worker count, ``REPRO_CACHE_DIR``
roots a result store, ``REPRO_CHUNK_SIZE`` turns on repetition
sharding at a fixed granularity, and ``REPRO_CHUNK_SECONDS`` turns on
*adaptive* sharding (reps-per-shard calibrated from a timed pilot
shard to target seconds-per-shard; mutually exclusive with the fixed
size).
"""

from .cells import (
    build_kg,
    build_method,
    build_method_from_payload,
    build_strategy,
    cell_method,
    cell_repetitions,
    is_shardable,
    method_payload,
    register_cell_runner,
    register_shard_reducer,
    register_shard_runner,
    runner_for,
    shard_reducer_for,
    shard_runner_for,
)
from .executor import (
    CellResult,
    ChunkCalibration,
    ParallelExecutor,
    PlanOutcome,
    configure,
    default_executor,
    execute,
)
from .progress import ProgressReporter
from .spec import (
    CACHE_VERSION,
    CellShard,
    CellSpec,
    CoverageCell,
    DynamicAuditCell,
    PartitionedAuditCell,
    SequentialCoverageCell,
    StudyCell,
    StudyPlan,
    cache_token,
    shard_ranges,
    shard_token,
)
from .store import ResultStore

__all__ = [
    "CACHE_VERSION",
    "CellSpec",
    "CellShard",
    "StudyCell",
    "CoverageCell",
    "SequentialCoverageCell",
    "DynamicAuditCell",
    "PartitionedAuditCell",
    "StudyPlan",
    "cache_token",
    "shard_ranges",
    "shard_token",
    "CellResult",
    "ChunkCalibration",
    "PlanOutcome",
    "ParallelExecutor",
    "ProgressReporter",
    "ResultStore",
    "build_kg",
    "build_method",
    "build_method_from_payload",
    "build_strategy",
    "cell_method",
    "cell_repetitions",
    "is_shardable",
    "method_payload",
    "register_cell_runner",
    "register_shard_runner",
    "register_shard_reducer",
    "runner_for",
    "shard_runner_for",
    "shard_reducer_for",
    "configure",
    "default_executor",
    "execute",
]
