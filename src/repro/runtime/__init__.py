"""Study-execution runtime: parallel grids, caching, resume, backends.

The layer between the evaluators and the experiment scripts.  A grid of
Monte-Carlo cells is described as data (:class:`StudyPlan` /
:class:`CellSpec`), scheduled by a backend-agnostic core
(:mod:`repro.runtime.scheduler`) and dispatched through a pluggable
:class:`ExecutionBackend` — in-process (:class:`SerialBackend`), a
local process pool (:class:`ProcessPoolBackend`), or a spool-directory
work queue served by detached ``python -m repro worker`` processes
(:class:`SpoolBackend`) — always with bit-identical results
(:class:`ParallelExecutor`), cached and resumed through a
content-addressed disk store (:class:`ResultStore`), and reported cell
by cell (:class:`ProgressReporter`).

Cells themselves shard: with a chunk size configured, a cell's
repetitions split into independent sub-cell windows (:class:`CellShard`)
that fan out across workers and merge back bit-identically, so one
1,000-repetition cell no longer serialises on a single worker.

Execution configuration is an immutable per-request :class:`RunContext`
(:mod:`repro.runtime.settings`): every knob below resolves — explicit
value, else ``REPRO_*`` environment variable, else default — exactly
once, at context construction, and
``ParallelExecutor.from_context(ctx)`` / ``execute(plan, context=ctx)``
thread the snapshot through scheduler and backend without touching
process state, so differently-configured runs coexist in one process
(the basis of ``python -m repro serve``).

Environment knobs (read when :func:`execute` builds the default
executor): ``REPRO_WORKERS`` sets the worker count, ``REPRO_CACHE_DIR``
roots a result store, ``REPRO_CHUNK_SIZE`` turns on repetition
sharding at a fixed granularity, ``REPRO_CHUNK_SECONDS`` turns on
*adaptive* sharding (reps-per-shard calibrated from a timed pilot
shard to target seconds-per-shard; mutually exclusive with the fixed
size), and ``REPRO_BACKEND`` picks the execution backend (``serial``,
``process[:n]``, ``spool[:dir]`` with ``REPRO_SPOOL_DIR`` as the
spool default, or ``chaos[:inner]`` for fault injection).  Cache
tokens never depend on the backend, so a run interrupted on one
backend resumes on another at the finished-shard boundary.

Execution is fault-tolerant: ``REPRO_MAX_RETRIES`` (or
``max_retries=``) resubmits failed units on a deterministic backoff
schedule (:class:`RetryPolicy`), and ``REPRO_ON_ERROR`` (or
``on_error=``) picks what happens when retries run out — ``"raise"``
aborts with a :class:`PlanExecutionError` carrying every
:class:`TaskFailure`, ``"continue"`` quarantines the failed cell and
returns the survivors plus the failure records on the
:class:`PlanOutcome`.

Every run is observable: a :class:`RunTelemetry` event bus narrates
the full lifecycle (cache scan, unit queued/submitted/finished,
retries, worker-side spans, dead letters, chaos injections) into an
always-on in-memory :class:`MetricsAggregate` (``outcome.metrics``)
and — when ``REPRO_TRACE_FILE`` or ``trace=``/``--trace`` names a
file — a JSONL journal summarised by ``python -m repro trace
summarize``.  Telemetry is strictly non-semantic: tracing on or off
changes no result bytes, cache tokens, or seeds.

Concurrent runs can additionally share a :class:`SolveBroker`
(:mod:`repro.runtime.solvebatch`): interval solves arriving from
several runs within a coalescing window (``REPRO_SOLVE_BATCH_WINDOW``,
capped by ``REPRO_SOLVE_BATCH_MAX`` callers) flush as one vectorised
``compute_batch`` call — the audit service wires its process-wide
broker into every request's :class:`RunContext`.  Like every other
scheduling knob here, batching is bit-identical: pooled slices match
standalone solves byte for byte.
"""

from .backends import (
    BackendFuture,
    ChaosBackend,
    ChaosFault,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SpoolBackend,
    SpoolTaskError,
    make_backend,
    register_backend,
    run_worker,
)
from .cells import (
    build_kg,
    build_method,
    build_method_from_payload,
    build_strategy,
    cell_method,
    cell_repetitions,
    is_shardable,
    method_payload,
    register_cell_runner,
    register_shard_reducer,
    register_shard_runner,
    runner_for,
    shard_reducer_for,
    shard_runner_for,
)
from .executor import (
    CellResult,
    ChunkCalibration,
    ParallelExecutor,
    PlanOutcome,
    configure,
    default_context,
    default_executor,
    execute,
    reset_defaults,
)
from .settings import KNOBS, RunContext, env_knob
from .solvebatch import BrokerChannel, SolveBroker
from .faults import (
    PlanExecutionError,
    RetryPolicy,
    TaskFailure,
    unit_token,
)
from .progress import ProgressReporter
from .scheduler import PlanScheduler
from .telemetry import (
    EVENT_TYPES,
    JsonlTraceSink,
    MetricsAggregate,
    RunTelemetry,
    TelemetryEvent,
    read_journal,
    render_summary,
    replay_metrics,
    summarize_journal,
)
from .spec import (
    CACHE_VERSION,
    CellShard,
    CellSpec,
    CoverageCell,
    DynamicAuditCell,
    PartitionedAuditCell,
    SequentialCoverageCell,
    StudyCell,
    StudyPlan,
    cache_token,
    shard_ranges,
    shard_token,
)
from .store import ResultStore

__all__ = [
    "CACHE_VERSION",
    "CellSpec",
    "CellShard",
    "StudyCell",
    "CoverageCell",
    "SequentialCoverageCell",
    "DynamicAuditCell",
    "PartitionedAuditCell",
    "StudyPlan",
    "cache_token",
    "shard_ranges",
    "shard_token",
    "CellResult",
    "ChunkCalibration",
    "PlanOutcome",
    "PlanScheduler",
    "ParallelExecutor",
    "PlanExecutionError",
    "ProgressReporter",
    "ResultStore",
    "RetryPolicy",
    "TaskFailure",
    "unit_token",
    "BackendFuture",
    "ChaosBackend",
    "ChaosFault",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SpoolBackend",
    "SpoolTaskError",
    "make_backend",
    "register_backend",
    "run_worker",
    "build_kg",
    "build_method",
    "build_method_from_payload",
    "build_strategy",
    "cell_method",
    "cell_repetitions",
    "is_shardable",
    "method_payload",
    "register_cell_runner",
    "register_shard_runner",
    "register_shard_reducer",
    "runner_for",
    "shard_runner_for",
    "shard_reducer_for",
    "KNOBS",
    "RunContext",
    "BrokerChannel",
    "SolveBroker",
    "configure",
    "default_context",
    "default_executor",
    "env_knob",
    "execute",
    "reset_defaults",
    "EVENT_TYPES",
    "JsonlTraceSink",
    "MetricsAggregate",
    "RunTelemetry",
    "TelemetryEvent",
    "read_journal",
    "render_summary",
    "replay_metrics",
    "summarize_journal",
]
