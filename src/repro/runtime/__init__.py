"""Study-execution runtime: parallel grids, caching, resume.

The layer between the evaluators and the experiment scripts.  A grid of
Monte-Carlo cells is described as data (:class:`StudyPlan` /
:class:`CellSpec`), executed serially or across worker processes with
bit-identical results (:class:`ParallelExecutor`), cached and resumed
through a content-addressed disk store (:class:`ResultStore`), and
reported cell by cell (:class:`ProgressReporter`).

Environment knobs (read when :func:`execute` builds the default
executor): ``REPRO_WORKERS`` sets the worker count, ``REPRO_CACHE_DIR``
roots a result store.
"""

from .cells import (
    build_kg,
    build_method,
    build_strategy,
    register_cell_runner,
    runner_for,
)
from .executor import (
    CellResult,
    ParallelExecutor,
    PlanOutcome,
    configure,
    default_executor,
    execute,
)
from .progress import ProgressReporter
from .spec import (
    CACHE_VERSION,
    CellSpec,
    CoverageCell,
    SequentialCoverageCell,
    StudyCell,
    StudyPlan,
    cache_token,
)
from .store import ResultStore

__all__ = [
    "CACHE_VERSION",
    "CellSpec",
    "StudyCell",
    "CoverageCell",
    "SequentialCoverageCell",
    "StudyPlan",
    "cache_token",
    "CellResult",
    "PlanOutcome",
    "ParallelExecutor",
    "ProgressReporter",
    "ResultStore",
    "build_kg",
    "build_method",
    "build_strategy",
    "register_cell_runner",
    "runner_for",
    "configure",
    "default_executor",
    "execute",
]
