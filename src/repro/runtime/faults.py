"""Fault model for plan execution: retries, failure records, quarantine.

Long Monte-Carlo campaigns fail for two very different reasons.  A
*transient* fault — a worker OOM-killed under memory pressure, a stolen
spool lease, an injected chaos fault — disappears when the unit of work
runs again; a *persistent* fault (a bug in a cell runner, a poison
payload) does not, no matter how often it is retried.  This module
gives the runtime the vocabulary to tell them apart:

* :class:`RetryPolicy` — how many times a failed unit of work is
  resubmitted, and with what backoff.  The backoff jitter is derived
  **deterministically** from the unit's token, so two reruns of the
  same plan retry on exactly the same schedule — reproducibility
  extends to the failure path.
* :class:`TaskFailure` — the durable record of one failed attempt:
  unit label and token, attempt number, exception summary, the
  worker-side traceback when one crossed the process boundary, and the
  backend the attempt ran on.
* :class:`PlanExecutionError` — what a run raises once a unit exhausts
  its retries under ``on_error="raise"``; carries the full
  :class:`TaskFailure` history of the run so post-mortems do not
  depend on scraping logs.

Under ``on_error="continue"`` the executor instead *quarantines* the
failed cell — the scheduler keeps draining every other unit and the
:class:`~repro.runtime.scheduler.PlanOutcome` returns the surviving
cells plus the ``failures`` tuple.

Because every cell is seeded at plan-build time, a retried unit
recomputes byte-identical numbers; retrying is therefore always safe,
and the chaos backend (:mod:`repro.runtime.backends.chaos`) leans on
exactly that property to prove the whole failure path end to end.
"""

from __future__ import annotations

import hashlib
import traceback as _traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import ReproError, ValidationError
from . import settings as _settings
from .spec import CellShard, cache_token

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import ExperimentSettings
    from .backends.base import Task

__all__ = [
    "PlanExecutionError",
    "RetryPolicy",
    "TaskFailure",
    "failure_from",
    "resolve_max_retries",
    "resolve_on_error",
    "unit_token",
]

#: Valid ``on_error`` modes: abort the run on the first exhausted unit
#: (the classic behaviour) or quarantine it and keep draining.
ON_ERROR_MODES = ("raise", "continue")


def unit_token(task: "Task", settings: "ExperimentSettings") -> str:
    """Stable hex identity of one unit of work under *settings*.

    Cells use their ordinary cache token; shards extend it with their
    repetition window.  The token seeds the retry jitter and the chaos
    backend's fault schedule, so both are reproducible across reruns —
    it is a *fault identity*, deliberately independent of the backend
    and of which attempt is executing.
    """
    if isinstance(task, CellShard):
        base = cache_token(task.cell, settings)
        blob = f"{base}:unit:{task.rep_start}:{task.rep_stop}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return cache_token(task, settings)


def _unit_fraction(text: str) -> float:
    """Deterministic float in ``[0, 1)`` from *text* (sha256-derived)."""
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return int(digest[:12], 16) / float(16**12)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for failed units of work.

    Attributes
    ----------
    max_retries:
        Resubmissions allowed after the first failed attempt; ``0``
        (the default) preserves the classic fail-fast behaviour.
    backoff_base:
        Delay before the first retry, in seconds; each further retry
        doubles it (exponential backoff).
    backoff_cap:
        Upper bound on any single delay, so deep retry chains do not
        wait minutes between attempts.
    jitter:
        Fraction of the exponential delay that the deterministic
        jitter may *subtract* (``0.0`` disables jitter).  The jitter
        for attempt *k* of a unit is a pure function of the unit token
        and *k*, so reruns retry on an identical schedule while
        distinct units still de-synchronise.
    """

    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValidationError("backoff values must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def attempts(self) -> int:
        """Total attempts a unit may consume (first run + retries)."""
        return self.max_retries + 1

    def delay(self, failures: int, token: str) -> float:
        """Seconds to wait before the retry following failure *failures*.

        ``failures`` counts the attempts that have already failed
        (``1`` = about to issue the first retry).  The exponential
        delay is capped at ``backoff_cap`` and shaved by the unit's
        deterministic jitter.
        """
        if failures < 1:
            raise ValidationError(f"failures must be >= 1, got {failures}")
        raw = min(self.backoff_cap, self.backoff_base * (2.0 ** (failures - 1)))
        shave = self.jitter * _unit_fraction(f"{token}:retry:{failures}")
        return raw * (1.0 - shave)


@dataclass(frozen=True)
class TaskFailure:
    """The record of one failed attempt at one unit of work.

    Attributes
    ----------
    label:
        Human-readable unit label (cell label, or the parent label plus
        repetition window for a shard).
    token:
        The unit's :func:`unit_token` — stable across attempts and
        backends, so failures of the same unit correlate across runs.
    attempts:
        Which attempt this was (1 = the first execution).
    error:
        One-line exception summary, ``"TypeName: message"``.
    traceback:
        The traceback text, worker-side when the failure crossed a
        process boundary (pool workers and spool claimants ship
        theirs); ``None`` when none was available.
    backend:
        Name of the backend the attempt dispatched through.
    """

    label: str
    token: str
    attempts: int
    error: str
    traceback: str | None
    backend: str

    def summary(self) -> str:
        """One line for logs: label, attempt count, exception."""
        plural = "s" if self.attempts != 1 else ""
        return f"{self.label}: {self.error} (after {self.attempts} attempt{plural})"


class PlanExecutionError(ReproError):
    """A plan execution aborted after a unit exhausted its retries.

    ``failures`` carries the complete :class:`TaskFailure` history of
    the run — every failed attempt of every unit, fatal one last — so
    callers can reconstruct what happened without logs.
    """

    def __init__(self, message: str, failures: tuple[TaskFailure, ...] = ()):
        super().__init__(message)
        self.failures = failures


def _worker_traceback(exc: BaseException) -> str | None:
    """Best-available traceback text for *exc*, worker-side preferred.

    Spool claimants attach their traceback to the unpickled exception
    (``__repro_traceback__``); :mod:`concurrent.futures` chains the
    remote traceback through ``__cause__``.  Failing both, the local
    traceback of the exception object itself is formatted.
    """
    attached = getattr(exc, "__repro_traceback__", None)
    if attached:
        return str(attached)
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return str(cause)
    if exc.__traceback__ is not None:
        return "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    return None


def failure_from(
    task: "Task",
    token: str,
    attempts: int,
    exc: BaseException,
    backend: str,
) -> TaskFailure:
    """Build the :class:`TaskFailure` record for one failed attempt."""
    label = getattr(task, "label", repr(task))
    return TaskFailure(
        label=label,
        token=token,
        attempts=attempts,
        error=f"{type(exc).__name__}: {exc}",
        traceback=_worker_traceback(exc),
        backend=backend,
    )


# ----------------------------------------------------------------------
# Environment resolution (mirrors the executor's other knobs)
# ----------------------------------------------------------------------


def resolve_max_retries(max_retries: int | None) -> int:
    """Explicit retry count, or the ``REPRO_MAX_RETRIES`` default (0).

    Thin delegate kept for import stability; the resolution logic lives
    in :func:`repro.runtime.settings.resolve_max_retries`.
    """
    return _settings.resolve_max_retries(max_retries)


def resolve_on_error(on_error: str | None) -> str:
    """Explicit mode, or the ``REPRO_ON_ERROR`` default (``"raise"``).

    Thin delegate kept for import stability; the resolution logic lives
    in :func:`repro.runtime.settings.resolve_on_error`.
    """
    return _settings.resolve_on_error(on_error)
