"""Execution-configuration settings: the one place ``REPRO_*`` lives.

Every environment knob the runtime honours resolves through this
module.  :data:`KNOBS` enumerates them — one entry per variable, with
the parser/validator that turns its raw text into a typed value — and
:func:`env_knob` is the only function in the package that is allowed to
read a ``REPRO_*`` variable from ``os.environ`` (a test enforces this
by scanning the source tree), so a new knob cannot be added without a
resolver entry and documentation here.

On top of the resolvers sits :class:`RunContext`: an immutable,
fully-resolved snapshot of one execution's configuration — workers,
result store, backend spec, chunking, retry policy, error mode, trace
sink, progress — built once (environment fallbacks applied at
construction time) and then *threaded* through the runtime instead of
being read from module globals.  ``ParallelExecutor.from_context(ctx)``
and ``execute(plan, context=ctx)`` consume it directly; the service
front end (:mod:`repro.runtime.service`) builds one per request, which
is what makes concurrent, differently-configured runs in one process
possible.

The pre-context API keeps working: :func:`repro.runtime.configure` and
:func:`repro.runtime.default_executor` are thin wrappers that build a
module-default :class:`RunContext` at call time.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import InitVar, dataclass
from pathlib import Path
from typing import Any, Callable, Union

from ..exceptions import ValidationError

__all__ = [
    "KNOBS",
    "RunContext",
    "env_knob",
    "resolve_backend",
    "resolve_cache_dir",
    "resolve_chaos_rate",
    "resolve_chaos_seed",
    "resolve_chunk_seconds",
    "resolve_chunk_size",
    "resolve_kernel",
    "resolve_max_retries",
    "resolve_on_error",
    "resolve_progress",
    "resolve_service_address",
    "resolve_solve_batch_max",
    "resolve_solve_batch_window",
    "resolve_solve_table",
    "resolve_spool_dir",
    "resolve_store",
    "resolve_trace_file",
    "resolve_workers",
]


def _parse_int(name: str):
    def parse(raw: str) -> int:
        try:
            return int(raw)
        except ValueError:
            raise ValidationError(
                f"{name} must be an integer, got {raw!r}"
            ) from None

    return parse


def _parse_float(name: str):
    def parse(raw: str) -> float:
        try:
            return float(raw)
        except ValueError:
            raise ValidationError(
                f"{name} must be a number, got {raw!r}"
            ) from None

    return parse


def _parse_text(name: str):
    return lambda raw: raw


#: Every ``REPRO_*`` environment knob the codebase honours, mapped to
#: ``(parser, description)``.  The test suite scans the source tree for
#: ``REPRO_`` tokens and fails on any mention that is not registered
#: here — adding a knob without a resolver entry is a test failure, not
#: a silent drift.
KNOBS: dict[str, tuple[Callable[[str], Any], str]] = {
    "REPRO_WORKERS": (
        _parse_int("REPRO_WORKERS"),
        "worker processes for plan execution (int >= 1; default 1)",
    ),
    "REPRO_CACHE_DIR": (
        _parse_text("REPRO_CACHE_DIR"),
        "result-store directory for caching and resume (default: none)",
    ),
    "REPRO_CHUNK_SIZE": (
        _parse_int("REPRO_CHUNK_SIZE"),
        "fixed repetition-sharding granularity (int >= 1; default: off)",
    ),
    "REPRO_CHUNK_SECONDS": (
        _parse_float("REPRO_CHUNK_SECONDS"),
        "adaptive sharding wall-clock target per shard (float > 0; "
        "default: off; mutually exclusive with REPRO_CHUNK_SIZE)",
    ),
    "REPRO_BACKEND": (
        _parse_text("REPRO_BACKEND"),
        "execution backend spec: serial, process[:n], spool[:dir], "
        "chaos[:inner] (default: automatic)",
    ),
    "REPRO_SPOOL_DIR": (
        _parse_text("REPRO_SPOOL_DIR"),
        "default spool directory for the spool backend and "
        "`python -m repro worker`",
    ),
    "REPRO_MAX_RETRIES": (
        _parse_int("REPRO_MAX_RETRIES"),
        "resubmissions allowed per failed unit of work "
        "(int >= 0; default 0, fail fast)",
    ),
    "REPRO_ON_ERROR": (
        _parse_text("REPRO_ON_ERROR"),
        "what to do once a unit exhausts its retries: raise | continue "
        "(default: raise)",
    ),
    "REPRO_TRACE_FILE": (
        _parse_text("REPRO_TRACE_FILE"),
        "JSONL journal file appended with structured lifecycle events "
        "(default: no journal)",
    ),
    "REPRO_CHAOS_SEED": (
        _parse_int("REPRO_CHAOS_SEED"),
        "fault-schedule seed for the chaos backend (int; default 0)",
    ),
    "REPRO_CHAOS_RATE": (
        _parse_float("REPRO_CHAOS_RATE"),
        "fraction of units the chaos backend faults "
        "(float in [0, 1]; default 0.25)",
    ),
    "REPRO_SERVICE": (
        _parse_text("REPRO_SERVICE"),
        "audit-service endpoint for `python -m repro submit`/`status`: "
        "a unix-socket path or host:port (default: none)",
    ),
    "REPRO_SOLVE_BATCH_WINDOW": (
        _parse_float("REPRO_SOLVE_BATCH_WINDOW"),
        "cross-request solve-batching coalescing window in seconds for "
        "the audit service (float >= 0; 0 disables batching; "
        "default 0.005)",
    ),
    "REPRO_SOLVE_BATCH_MAX": (
        _parse_int("REPRO_SOLVE_BATCH_MAX"),
        "max coalesced callers per cross-request solve batch flush "
        "(int >= 1; default 64)",
    ),
    "REPRO_KERNEL": (
        _parse_text("REPRO_KERNEL"),
        "interval solver kernel: numpy | native | auto "
        "(default numpy; auto degrades loudly to numpy without numba; "
        "never part of cache identity)",
    ),
    "REPRO_SOLVE_TABLE": (
        _parse_int("REPRO_SOLVE_TABLE"),
        "small-n solve-table cap: precompute/memoise interval tables "
        "for integer-count evidences with n <= cap "
        "(int >= 0; 0 disables; default 2048)",
    ),
}


def env_knob(name: str) -> Any | None:
    """The parsed value of registered knob *name*, or ``None`` if unset.

    The single point where ``REPRO_*`` environment variables are read:
    unregistered names raise (the registry is the contract), empty or
    whitespace-only values count as unset, and the registered parser
    turns the raw text into a typed value — raising a
    :class:`~repro.exceptions.ValidationError` naming the variable on
    malformed input.
    """
    try:
        parse, _ = KNOBS[name]
    except KeyError:
        raise ValidationError(
            f"unregistered environment knob {name!r}; add it to "
            "repro.runtime.settings.KNOBS"
        ) from None
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    return parse(raw)


# ----------------------------------------------------------------------
# Per-knob resolvers: explicit value, else environment, else default —
# with the validation each knob has always had.
# ----------------------------------------------------------------------


def resolve_workers(workers: int | None) -> int:
    """Explicit worker count, or the ``REPRO_WORKERS`` default (1)."""
    if workers is None:
        workers = env_knob("REPRO_WORKERS")
        if workers is None:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_chunk_size(chunk_size: int | None) -> int | None:
    """Explicit chunk size, or the ``REPRO_CHUNK_SIZE`` default (off)."""
    if chunk_size is None:
        chunk_size = env_knob("REPRO_CHUNK_SIZE")
        if chunk_size is None:
            return None
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def resolve_chunk_seconds(chunk_seconds: float | None) -> float | None:
    """Explicit target, or the ``REPRO_CHUNK_SECONDS`` default (off)."""
    if chunk_seconds is None:
        chunk_seconds = env_knob("REPRO_CHUNK_SECONDS")
        if chunk_seconds is None:
            return None
    chunk_seconds = float(chunk_seconds)
    if chunk_seconds <= 0.0:
        raise ValidationError(f"chunk_seconds must be > 0, got {chunk_seconds}")
    return chunk_seconds


def resolve_cache_dir(cache_dir: Union[str, Path, None]) -> Path | None:
    """Explicit store directory, or ``REPRO_CACHE_DIR`` (default none)."""
    if cache_dir is None:
        cache_dir = env_knob("REPRO_CACHE_DIR")
        if cache_dir is None:
            return None
    return Path(cache_dir)


def resolve_store(store: Any):
    """Coerce *store* into a ``ResultStore`` (or ``None``).

    Accepts a ready :class:`~repro.runtime.store.ResultStore`, a
    directory path to root one at, or ``None`` — which falls back to
    ``REPRO_CACHE_DIR`` and, when that is unset too, disables caching.
    """
    from .store import ResultStore  # runtime import: keep settings leaf-light

    if isinstance(store, ResultStore):
        return store
    root = resolve_cache_dir(store)
    return None if root is None else ResultStore(root)


def resolve_backend(backend: Any) -> Any:
    """Explicit backend spec/instance, or the ``REPRO_BACKEND`` default.

    Environment fallback only — semantic validation against the backend
    registry happens in
    :func:`repro.runtime.backends.base.resolve_backend_spec`, which
    calls this first.  ``None`` (auto policy) stays ``None`` when the
    environment is silent.
    """
    if backend is None:
        return env_knob("REPRO_BACKEND")
    return backend


def resolve_spool_dir(root: Union[str, Path, None]) -> Path:
    """Explicit spool directory, or the ``REPRO_SPOOL_DIR`` default.

    The spool backend cannot run without one, so exhausting both
    sources is an error rather than a silent temp directory.
    """
    if root is None or root == "":
        root = env_knob("REPRO_SPOOL_DIR")
        if root is None:
            raise ValidationError(
                "the spool backend needs a directory: pass "
                "backend='spool:<dir>' or set REPRO_SPOOL_DIR"
            )
    return Path(root)


def resolve_max_retries(max_retries: int | None) -> int:
    """Explicit retry count, or the ``REPRO_MAX_RETRIES`` default (0)."""
    if max_retries is None:
        max_retries = env_knob("REPRO_MAX_RETRIES")
        if max_retries is None:
            return 0
    max_retries = int(max_retries)
    if max_retries < 0:
        raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
    return max_retries


def resolve_on_error(on_error: str | None) -> str:
    """Explicit mode, or the ``REPRO_ON_ERROR`` default (``"raise"``)."""
    if on_error is None:
        on_error = env_knob("REPRO_ON_ERROR")
        if on_error is None:
            return "raise"
    on_error = str(on_error).strip().lower()
    if on_error not in ("raise", "continue"):
        raise ValidationError(
            f"on_error must be one of raise, continue; got {on_error!r}"
        )
    return on_error


def resolve_trace_file(trace: Union[str, Path, None]) -> Path | None:
    """Explicit journal path, or the ``REPRO_TRACE_FILE`` default (off)."""
    if trace is None:
        trace = env_knob("REPRO_TRACE_FILE")
        if trace is None:
            return None
    return Path(trace)


def resolve_service_address(address: str | None) -> str:
    """Explicit endpoint, or the ``REPRO_SERVICE`` default (required).

    The audit-service endpoint used by ``python -m repro submit`` /
    ``status``: a unix-socket path or ``host:port`` text, parsed by
    :func:`repro.runtime.service.client.parse_address`.
    """
    if address is None:
        address = env_knob("REPRO_SERVICE")
        if address is None:
            raise ValidationError(
                "no audit service endpoint: pass --connect or set "
                "REPRO_SERVICE to a socket path or host:port"
            )
    return str(address)


def resolve_solve_batch_window(window: float | None) -> float:
    """Explicit window, or the ``REPRO_SOLVE_BATCH_WINDOW`` default.

    The coalescing window (seconds) the audit service's
    :class:`~repro.runtime.solvebatch.SolveBroker` holds a pending
    interval solve open for co-batching with other requests.  ``0``
    disables cross-request batching entirely; the default is 5 ms —
    far below request latency, far above solve dispatch overhead.
    """
    if window is None:
        window = env_knob("REPRO_SOLVE_BATCH_WINDOW")
        if window is None:
            return 0.005
    window = float(window)
    if window < 0.0:
        raise ValidationError(
            f"solve_batch_window must be >= 0, got {window}"
        )
    return window


def resolve_solve_batch_max(max_batch: int | None) -> int:
    """Explicit cap, or the ``REPRO_SOLVE_BATCH_MAX`` default (64).

    The number of coalesced callers at which a pending solve batch
    flushes immediately instead of waiting out the window.
    """
    if max_batch is None:
        max_batch = env_knob("REPRO_SOLVE_BATCH_MAX")
        if max_batch is None:
            return 64
    max_batch = int(max_batch)
    if max_batch < 1:
        raise ValidationError(
            f"solve_batch_max must be >= 1, got {max_batch}"
        )
    return max_batch


def resolve_kernel(kernel: str | None) -> str:
    """Explicit choice, or the ``REPRO_KERNEL`` default (``"numpy"``).

    Returns a validated kernel *name* (``numpy`` | ``native`` |
    ``auto``) — instances are resolved later, at solve time, by
    :func:`repro.intervals.kernels.get_kernel`, so contexts stay
    picklable/JSON-describable and ``auto`` can degrade per process.
    The default is the NumPy oracle, not ``auto``: installing numba
    must never silently change which kernel a run uses.
    """
    if kernel is None:
        kernel = env_knob("REPRO_KERNEL")
        if kernel is None:
            return "numpy"
    kernel = str(kernel).strip().lower()
    if kernel not in ("auto", "numpy", "native"):
        raise ValidationError(
            f"kernel must be one of auto, numpy, native; got {kernel!r}"
        )
    return kernel


def resolve_solve_table(cap: int | None) -> int:
    """Explicit cap, or the ``REPRO_SOLVE_TABLE`` default (2048).

    The largest evidence count ``n`` the small-n
    :class:`~repro.intervals.table.SolveTable` precomputes full
    ``(method, alpha, n)`` interval tables for; ``0`` disables the
    table entirely.  Table serving is pure memoisation — served rows
    are bit-identical to freshly solved ones.
    """
    if cap is None:
        cap = env_knob("REPRO_SOLVE_TABLE")
        if cap is None:
            return 2048
    cap = int(cap)
    if cap < 0:
        raise ValidationError(f"solve_table cap must be >= 0, got {cap}")
    return cap


def resolve_chaos_seed(seed: int | None) -> int:
    """Explicit seed, or the ``REPRO_CHAOS_SEED`` default (0)."""
    if seed is None:
        seed = env_knob("REPRO_CHAOS_SEED")
        if seed is None:
            return 0
    return int(seed)


def resolve_chaos_rate(rate: float | None) -> float:
    """Explicit rate, or the ``REPRO_CHAOS_RATE`` default (0.25)."""
    if rate is None:
        rate = env_knob("REPRO_CHAOS_RATE")
        if rate is None:
            return 0.25
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise ValidationError(f"chaos rate must be in [0, 1], got {rate}")
    return rate


def resolve_progress(progress: Any) -> Callable | None:
    """Coerce *progress* into a per-cell callable (or ``None``).

    ``True`` builds the default stderr
    :class:`~repro.runtime.progress.ProgressReporter`; ``False`` and
    ``None`` are silence; a callable passes through.
    """
    if progress is True:
        from .progress import ProgressReporter  # runtime import (leaf-light)

        return ProgressReporter()
    if progress is False or progress is None:
        return None
    if not callable(progress):
        raise ValidationError(
            "progress must be True, False, None, or a callable "
            f"(done, total, CellResult) -> None; got {progress!r}"
        )
    return progress


# ----------------------------------------------------------------------
# RunContext: the immutable, fully-resolved per-request configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunContext:
    """One execution's complete, immutable configuration.

    Construction *is* resolution: every field accepts the same loose
    inputs the executor always did (``None`` for "fall back to the
    environment", paths or stores, spec strings or instances, ``True``
    for the default reporter) and ``__post_init__`` normalises them —
    applying the ``REPRO_*`` fallbacks from :data:`KNOBS` exactly once,
    at construction time.  The result is a frozen snapshot: changing
    the environment afterwards changes nothing about this context, and
    two requests holding different contexts can execute concurrently in
    one process without sharing any configuration state.

    Resolved field types
    --------------------
    * ``workers`` — ``int`` (>= 1)
    * ``store`` — :class:`~repro.runtime.store.ResultStore` or ``None``
    * ``progress`` — callable ``(done, total, CellResult)`` or ``None``
    * ``chunk_size`` — ``int`` or ``None``
    * ``chunk_seconds`` — ``float`` or ``None`` (never both set)
    * ``backend`` — validated spec string, ready
      :class:`~repro.runtime.backends.ExecutionBackend`, or ``None``
      for the automatic policy
    * ``retry_policy`` — :class:`~repro.runtime.faults.RetryPolicy`
      (``max_retries`` is the convenience init-only form)
    * ``on_error`` — ``"raise"`` or ``"continue"``
    * ``trace`` — :class:`~pathlib.Path` or ``None``
    * ``solve_pool`` — a cross-request solve broker
      (:class:`~repro.runtime.solvebatch.SolveBroker`) or ``None``;
      shared infrastructure rather than per-run configuration, so it
      has no environment fallback and is threaded in explicitly (the
      audit service passes its process-wide broker here)
    * ``kernel`` — solver-kernel choice ``"numpy"`` | ``"native"`` |
      ``"auto"`` (``REPRO_KERNEL``; default ``"numpy"``); resolved to
      an implementation at run time and **never** part of cache
      identity — results are pinned kernel-independent
    * ``solve_table`` — small-n solve-table cap (``REPRO_SOLVE_TABLE``;
      default 2048, ``0`` disables); pure memoisation, also outside
      cache identity

    Use :meth:`replace` to derive a variant (new context, same
    immutability); use :meth:`describe` for a JSON-ready summary.
    """

    workers: Any = None
    store: Any = None
    progress: Any = None
    chunk_size: Any = None
    chunk_seconds: Any = None
    backend: Any = None
    on_error: Any = None
    retry_policy: Any = None
    trace: Any = None
    solve_pool: Any = None
    kernel: Any = None
    solve_table: Any = None
    max_retries: InitVar[Any] = None

    def __post_init__(self, max_retries: Any) -> None:
        set_field = lambda name, value: object.__setattr__(self, name, value)  # noqa: E731
        set_field("workers", resolve_workers(self.workers))
        if self.chunk_size is not None and self.chunk_seconds is not None:
            raise ValidationError(
                "chunk_size and chunk_seconds are mutually exclusive; pass "
                "at most one (fixed reps-per-shard vs seconds-per-shard)"
            )
        explicit_size = self.chunk_size is not None
        explicit_seconds = self.chunk_seconds is not None
        set_field("chunk_size", resolve_chunk_size(self.chunk_size))
        set_field("chunk_seconds", resolve_chunk_seconds(self.chunk_seconds))
        if self.chunk_size is not None and self.chunk_seconds is not None:
            if explicit_size:
                set_field("chunk_seconds", None)  # explicit size beats env
            elif explicit_seconds:
                set_field("chunk_size", None)  # explicit seconds beats env
            else:
                raise ValidationError(
                    "REPRO_CHUNK_SIZE and REPRO_CHUNK_SECONDS are both set; "
                    "unset one (fixed reps-per-shard vs seconds-per-shard)"
                )
        # Runtime import: the backend registry imports this module for
        # its environment fallback, so settings must stay import-leaf.
        from .backends.base import resolve_backend_spec

        set_field("backend", resolve_backend_spec(self.backend))
        from .faults import RetryPolicy

        if self.retry_policy is not None:
            if max_retries is not None:
                raise ValidationError(
                    "max_retries and retry_policy are mutually exclusive; "
                    "set max_retries on the policy instead"
                )
            if not isinstance(self.retry_policy, RetryPolicy):
                raise ValidationError(
                    f"retry_policy must be a RetryPolicy, got "
                    f"{self.retry_policy!r}"
                )
        else:
            set_field(
                "retry_policy",
                RetryPolicy(max_retries=resolve_max_retries(max_retries)),
            )
        set_field("on_error", resolve_on_error(self.on_error))
        set_field("store", resolve_store(self.store))
        set_field("progress", resolve_progress(self.progress))
        set_field("trace", resolve_trace_file(self.trace))
        set_field("kernel", resolve_kernel(self.kernel))
        set_field("solve_table", resolve_solve_table(self.solve_table))
        if self.solve_pool is not None and not callable(
            getattr(self.solve_pool, "channel", None)
        ):
            raise ValidationError(
                "solve_pool must expose a channel(telemetry) factory "
                f"(see repro.runtime.solvebatch.SolveBroker); got "
                f"{self.solve_pool!r}"
            )

    def replace(self, **overrides: Any) -> "RunContext":
        """A new context with *overrides* applied (re-validated).

        Setting one of the mutually-exclusive chunking knobs clears the
        other automatically, so ``ctx.replace(chunk_seconds=0.5)`` works
        on a context that resolved a fixed chunk size; likewise
        ``replace(max_retries=2)`` supersedes the carried-over
        ``retry_policy`` instead of colliding with it.
        """
        if "chunk_size" in overrides and "chunk_seconds" not in overrides:
            overrides["chunk_seconds"] = None
        elif "chunk_seconds" in overrides and "chunk_size" not in overrides:
            overrides["chunk_size"] = None
        if "max_retries" in overrides and "retry_policy" not in overrides:
            overrides["retry_policy"] = None
        return dataclasses.replace(self, **overrides)

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary (telemetry, service status endpoints)."""
        backend = self.backend
        if backend is not None and not isinstance(backend, str):
            backend = getattr(backend, "name", type(backend).__name__)
        return {
            "workers": self.workers,
            "cache_dir": None if self.store is None else str(self.store.root),
            "chunk_size": self.chunk_size,
            "chunk_seconds": self.chunk_seconds,
            "backend": backend,
            "max_retries": self.retry_policy.max_retries,
            "on_error": self.on_error,
            "trace": None if self.trace is None else str(self.trace),
            "progress": self.progress is not None,
            "solve_pool": None
            if self.solve_pool is None
            else getattr(
                self.solve_pool, "name", type(self.solve_pool).__name__
            ),
            "kernel": self.kernel,
            "solve_table": self.solve_table,
        }
