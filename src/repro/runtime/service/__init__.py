"""Audit-as-a-service front end for the runtime layer.

A long-lived asyncio service (``python -m repro serve``) that accepts
many concurrent audit requests over newline-delimited JSON — each
request a study grid ("estimate accuracy of these KG profiles under
these sampling strategies to ±ε") — builds a
:class:`~repro.runtime.spec.StudyPlan` plus an immutable per-request
:class:`~repro.runtime.settings.RunContext` for each one, and executes
them concurrently over one shared
:class:`~repro.runtime.store.ResultStore`, so overlapping requests
share cache hits and a run interrupted by one client resumes for the
next.  Per-request progress and telemetry stream back to the client as
events (``python -m repro submit`` / ``status``); each request can
journal its run to its own JSONL trace file via the existing
``--trace`` machinery.

The package splits client-visible request semantics
(:mod:`~repro.runtime.service.requests` — request schema, plan
construction, result rendering, shared byte-for-byte with ``python -m
repro study``), the asyncio server
(:mod:`~repro.runtime.service.server`), and the blocking client used
by the CLI and tests (:mod:`~repro.runtime.service.client`).
"""

from .client import (
    parse_address,
    ping_service,
    service_status,
    shutdown_service,
    submit_request,
)
from .requests import (
    STUDY_COLUMNS,
    StudyRequest,
    render_study_table,
    study_rows,
)
from .server import AuditService

__all__ = [
    "AuditService",
    "STUDY_COLUMNS",
    "StudyRequest",
    "parse_address",
    "ping_service",
    "render_study_table",
    "service_status",
    "shutdown_service",
    "study_rows",
    "submit_request",
]
