"""Study requests: the one definition of "a study grid", CLI and service.

``python -m repro study`` and the service's ``submit`` op both build
their plans through :class:`StudyRequest` and render their results
through :func:`render_study_table`, so a request submitted to the
service is *guaranteed* to produce the same plan — same cells, same
plan-time seeds, same cache tokens — and the same rendered table,
byte for byte, as the equivalent standalone CLI run.  That shared code
path is what makes the service's results verifiable against batch runs
and lets service requests hit cache entries a CLI run left behind (and
vice versa).

The request JSON schema accepted by the service's ``submit`` op::

    {
      "op": "submit",
      "request": {
        "datasets":   "NELL,YAGO",        # or ["NELL", "YAGO"]
        "strategies": "srs,twcs",          # srs | twcs | wcs | strat
        "methods":    "wald,wilson,ahpd",
        "repetitions": 100,
        "m": 3,                            # TWCS stage-2 cap
        "alpha": 0.05,
        "epsilon": 0.05,
        "seed": 0
      },
      "context": {                         # all optional, per-request
        "workers": 2,
        "backend": "serial",               # serial | process[:n] | spool[:dir] | chaos[:inner]
        "chunk_size": 5,                   # or chunk_seconds — not both
        "chunk_seconds": 0.5,
        "max_retries": 2,
        "on_error": "continue"             # raise | continue
      }
    }
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Iterable, Union

from ...exceptions import ReproError, ValidationError
from ..spec import StudyCell, StudyPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scheduler import PlanOutcome

__all__ = [
    "STUDY_COLUMNS",
    "StudyRequest",
    "render_study_table",
    "study_rows",
]

#: Sampling-strategy names accepted in requests, mapped to the spec
#: template the cell carries (``{m}`` is the TWCS stage-2 cap).
STRATEGY_SPECS = {
    "srs": "SRS",
    "twcs": "TWCS:{m}",
    "wcs": "WCS",
    "strat": "STRAT",
}

#: Column order of the rendered study table.
STUDY_COLUMNS = (
    "dataset", "strategy", "method", "triples", "cost_hours", "converged",
)


def _name_list(value: Union[str, Iterable[str], None], fold: str) -> tuple[str, ...]:
    """Normalise a comma-separated string or iterable of names."""
    if value is None:
        return ()
    if isinstance(value, str):
        parts = value.split(",")
    else:
        parts = [str(part) for part in value]
    folded = (
        part.strip().upper() if fold == "upper" else part.strip().lower()
        for part in parts
    )
    return tuple(part for part in folded if part)


@dataclass(frozen=True)
class StudyRequest:
    """One study grid: the unit of work a client submits to the service.

    Field for field the ``python -m repro study`` options; see the
    module docstring for the JSON form.  Immutable, like the
    :class:`~repro.runtime.settings.RunContext` it executes under.
    """

    datasets: tuple[str, ...] = ("NELL",)
    strategies: tuple[str, ...] = ("srs", "twcs")
    methods: tuple[str, ...] = ("wald", "wilson", "ahpd")
    repetitions: int = 100
    m: int = 3
    alpha: float = 0.05
    epsilon: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "datasets", _name_list(self.datasets, "upper"))
        object.__setattr__(
            self, "strategies", _name_list(self.strategies, "lower")
        )
        object.__setattr__(self, "methods", _name_list(self.methods, "lower"))
        if not self.datasets or not self.strategies or not self.methods:
            raise ReproError(
                "study needs at least one dataset, strategy, and method"
            )
        for strategy in self.strategies:
            if strategy not in STRATEGY_SPECS:
                raise ReproError(f"unknown strategy {strategy!r}")
        if int(self.repetitions) < 1:
            raise ValidationError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )

    @classmethod
    def from_payload(cls, payload: Any) -> "StudyRequest":
        """Build a request from its JSON payload, with strict keys.

        Unknown keys are an error (a typo'd knob must not silently run
        the default grid); ``reps`` is accepted as the CLI-flag-flavoured
        alias of ``repetitions``.
        """
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            raise ValidationError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        payload = dict(payload)
        if "reps" in payload:
            payload.setdefault("repetitions", payload.pop("reps"))
        known = {
            "datasets", "strategies", "methods", "repetitions",
            "m", "alpha", "epsilon", "seed",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError(
                f"unknown request field(s) {', '.join(unknown)}; "
                f"expected a subset of: {', '.join(sorted(known))}"
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ValidationError(f"bad study request: {exc}") from None

    def to_payload(self) -> dict:
        """The JSON-ready form of this request (round-trips through
        :meth:`from_payload`)."""
        payload = asdict(self)
        for key in ("datasets", "strategies", "methods"):
            payload[key] = list(payload[key])
        return payload

    def build_plan(self) -> StudyPlan:
        """The deterministic :class:`StudyPlan` of this request.

        Cell order, labels, and plan-time seed streams are a pure
        function of the request fields — the same function ``python -m
        repro study`` applies — so equal requests get equal cache
        tokens no matter where they were submitted from.
        """
        from ...experiments.config import ExperimentSettings

        cells = []
        for di, dataset in enumerate(self.datasets):
            for si, strategy in enumerate(self.strategies):
                spec = STRATEGY_SPECS[strategy].format(m=self.m)
                for method in self.methods:
                    cells.append(
                        StudyCell(
                            key=(dataset, strategy, method),
                            label=f"{dataset}/{strategy}/{method}",
                            method=method,
                            dataset=dataset,
                            strategy=spec,
                            # One stream per (dataset, strategy): methods
                            # are paired on the same sample paths, as in
                            # the paper.
                            seed_stream=(20_000 + 10 * di + si,),
                        )
                    )
        settings = ExperimentSettings(
            repetitions=int(self.repetitions),
            seed=int(self.seed),
            alpha=float(self.alpha),
            epsilon=float(self.epsilon),
        )
        return StudyPlan(settings=settings, cells=tuple(cells), name="study")


def study_rows(plan: StudyPlan, outcome: "PlanOutcome") -> list[list[str]]:
    """The study table's rows, plan-ordered, quarantined cells omitted."""
    results = outcome.results
    rows = []
    for dataset, strategy, method in (cell.key for cell in plan.cells):
        # Quarantined cells (on_error="continue") have no result row;
        # callers report outcome.failures separately.
        study = results.get((dataset, strategy, method))
        if study is None:
            continue
        rows.append(
            [
                dataset,
                strategy,
                method,
                study.triples_summary.format(0),
                study.cost_summary.format(2),
                f"{study.convergence_rate:.0%}",
            ]
        )
    return rows


def render_study_table(plan: StudyPlan, outcome: "PlanOutcome") -> str:
    """The study result table exactly as ``python -m repro study``
    prints it — deterministic fields only, so service and CLI renderings
    of the same request are byte-identical."""
    from ...experiments.report import render_table

    return render_table(STUDY_COLUMNS, study_rows(plan, outcome))
