"""The asyncio audit service behind ``python -m repro serve``.

One process, one event loop, many concurrent audit requests.  Each
``submit`` builds a :class:`~repro.runtime.service.requests.
StudyRequest` plan plus an immutable per-request
:class:`~repro.runtime.settings.RunContext` (service-wide defaults,
request overrides, the shared :class:`~repro.runtime.store.
ResultStore`, and a per-request trace journal), then executes it on a
thread of the service's pool — the asyncio loop only shepherds events,
so a dozen differently-configured requests run side by side and
overlapping requests serve each other's cache entries.

Protocol: newline-delimited JSON over a Unix socket or TCP.  Ops in:
``submit``, ``status``, ``ping``, ``shutdown``.  Events out carry an
``event`` field (``accepted``, ``progress``, ``done``, ``failed``,
``status``, ``pong``, ``error``, ``shutting_down``); ``progress``,
``done``, and ``failed`` carry the request ``id`` they belong to, so a
client may pipeline several submits on one connection.  A request that
aborts (:class:`~repro.runtime.faults.PlanExecutionError`) answers
*its* client with a ``failed`` event and touches nothing else — sibling
requests keep their contexts, their futures, and their results.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Union

from ...exceptions import ReproError, ValidationError
from ..executor import ParallelExecutor
from ..faults import PlanExecutionError
from ..settings import (
    RunContext,
    resolve_solve_batch_max,
    resolve_solve_batch_window,
)
from ...intervals.kernels import kernel_status
from ...intervals.table import peek_tables
from ..solvebatch import SolveBroker
from ..store import ResultStore
from .requests import STUDY_COLUMNS, StudyRequest, render_study_table, study_rows

__all__ = ["AuditService", "CONTEXT_OVERRIDE_KEYS"]

#: Request-context knobs a client may override per submit.  The store
#: is deliberately not overridable — sharing one result store across
#: requests is the point of the service — and trace files are assigned
#: by the service (one journal per request under ``--trace-dir``).
CONTEXT_OVERRIDE_KEYS = frozenset(
    {"workers", "backend", "chunk_size", "chunk_seconds",
     "max_retries", "on_error", "kernel", "solve_table"}
)

#: Queue sentinel: the request's executor thread is done.
_FINISHED = object()


class _RequestRecord:
    """Mutable bookkeeping for one submitted request (status op)."""

    def __init__(self, request_id: str, request: StudyRequest, context: dict):
        self.id = request_id
        self.request = request
        self.context = context
        self.status = "queued"
        self.submitted = time.time()
        self.finished: float | None = None
        self.cells: int | None = None
        self.cache_hits: int | None = None
        self.error: str | None = None

    def describe(self) -> dict:
        return {
            "id": self.id,
            "status": self.status,
            "submitted": round(self.submitted, 3),
            "seconds": (
                None
                if self.finished is None
                else round(self.finished - self.submitted, 3)
            ),
            "request": self.request.to_payload(),
            "context": self.context,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "error": self.error,
        }


class AuditService:
    """Accepts concurrent audit requests and multiplexes them onto one
    shared store and thread pool.

    Parameters
    ----------
    store:
        The shared :class:`~repro.runtime.store.ResultStore` (or a
        directory path); ``None`` falls back to the defaults context's
        store (``--cache-dir`` / ``REPRO_CACHE_DIR``), and a service
        with neither simply runs uncached.
    defaults:
        Service-wide default :class:`~repro.runtime.settings.
        RunContext`; request context overrides are applied on top with
        :meth:`RunContext.replace`.  ``None`` resolves a fresh context
        from the environment at service start.
    trace_dir:
        Directory for per-request JSONL trace journals (one
        ``<request-id>.jsonl`` each, via the existing ``--trace``
        machinery); ``None`` journals only if the defaults context
        carries a trace file.
    max_concurrent:
        Requests executing simultaneously (thread-pool size; further
        requests queue).  Default 8.
    solve_batch_window:
        Coalescing window (seconds) of the service's shared
        :class:`~repro.runtime.solvebatch.SolveBroker`: concurrent
        requests' interval solves arriving within one window flush as a
        single vectorised ``compute_batch`` call.  ``None`` reads
        ``REPRO_SOLVE_BATCH_WINDOW`` (default 5 ms); ``0`` disables
        cross-request batching.  Batching is pure scheduling — pooled
        results are bit-identical to standalone runs.
    solve_batch_max:
        Coalesced-caller cap per flush; ``None`` reads
        ``REPRO_SOLVE_BATCH_MAX`` (default 64).
    quiet:
        Suppress the per-request service log lines on stderr.
    """

    def __init__(
        self,
        *,
        store: Union[ResultStore, str, Path, None] = None,
        defaults: RunContext | None = None,
        trace_dir: Union[str, Path, None] = None,
        max_concurrent: int = 8,
        solve_batch_window: float | None = None,
        solve_batch_max: int | None = None,
        quiet: bool = False,
    ):
        self.defaults = defaults if defaults is not None else RunContext()
        if store is None:
            self.store = self.defaults.store
        elif isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store)
        self.trace_dir = None if trace_dir is None else Path(trace_dir)
        window = resolve_solve_batch_window(solve_batch_window)
        self.solve_broker = (
            SolveBroker(
                window=window,
                max_batch=resolve_solve_batch_max(solve_batch_max),
            )
            if window > 0.0
            else None
        )
        self.quiet = quiet
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(max_concurrent)),
            thread_name_prefix="repro-serve",
        )
        self._records: dict[str, _RequestRecord] = {}
        self._records_lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._started = time.time()
        self._stop: asyncio.Event | None = None
        self._tasks: set[asyncio.Task] = set()
        self.address: tuple | None = None

    # -- service lifecycle ----------------------------------------------

    async def serve(
        self,
        *,
        socket_path: Union[str, Path, None] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: "asyncio.Future | None" = None,
    ) -> None:
        """Listen until a ``shutdown`` op arrives.

        Binds a Unix socket when *socket_path* is given, TCP otherwise
        (``port=0`` picks a free port).  The bound address is published
        on :attr:`address` (and through *ready*, when given) before the
        first connection is accepted.
        """
        self._stop = asyncio.Event()
        if socket_path is not None:
            server = await asyncio.start_unix_server(
                self._on_connect, path=str(socket_path)
            )
            self.address = ("unix", str(socket_path))
        else:
            server = await asyncio.start_server(self._on_connect, host, port)
            bound = server.sockets[0].getsockname()
            self.address = ("tcp", (bound[0], bound[1]))
        self._log(f"serving on {self.address[1]}")
        if ready is not None and not ready.done():
            ready.set_result(self.address)
        async with server:
            await self._stop.wait()
            # Let in-flight requests finish answering their clients
            # before the listener (and their connections) go away.
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)
        # Connection handlers (including the one that delivered the
        # shutdown op) unwind once their peers hang up; collect them so
        # nothing is left pending when the loop closes.
        pending = {
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        }
        if pending:
            done, still_open = await asyncio.wait(pending, timeout=2)
            for task in still_open:
                task.cancel()
            if still_open:
                await asyncio.wait(still_open, timeout=1)
        # Drain ordering: requests have been gathered above, so no new
        # solves are pending — release any straggler the broker still
        # holds *before* the pool (whose threads would wait on it) is
        # joined.
        if self.solve_broker is not None:
            self.solve_broker.close()
        self._pool.shutdown(wait=True)
        self._log("stopped")

    def run(self, **serve_kwargs: Any) -> None:
        """Blocking wrapper: ``asyncio.run`` around :meth:`serve`."""
        asyncio.run(self.serve(**serve_kwargs))

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[serve] {message}", file=sys.stderr, flush=True)

    # -- connection handling --------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        send_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                await self._dispatch(line, writer, send_lock)
                if self._stop is not None and self._stop.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, line: bytes, writer: asyncio.StreamWriter, send_lock: asyncio.Lock
    ) -> None:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            await self._send(
                writer, send_lock, {"event": "error", "error": f"bad JSON: {exc}"}
            )
            return
        if not isinstance(payload, dict):
            await self._send(
                writer,
                send_lock,
                {"event": "error", "error": "each line must be a JSON object"},
            )
            return
        op = payload.get("op")
        if op == "submit":
            await self._handle_submit(payload, writer, send_lock)
        elif op == "status":
            await self._send(
                writer,
                send_lock,
                {
                    "event": "status",
                    "requests": [
                        record.describe() for record in self._snapshot()
                    ],
                },
            )
        elif op == "ping":
            await self._send(writer, send_lock, self._pong())
        elif op == "shutdown":
            await self._send(writer, send_lock, {"event": "shutting_down"})
            if self._stop is not None:
                self._stop.set()
        else:
            await self._send(
                writer,
                send_lock,
                {
                    "event": "error",
                    "error": f"unknown op {op!r}; expected one of: "
                    "submit, status, ping, shutdown",
                },
            )

    def _snapshot(self) -> list[_RequestRecord]:
        with self._records_lock:
            return list(self._records.values())

    def _pong(self) -> dict:
        records = self._snapshot()
        return {
            "event": "pong",
            "pid": os.getpid(),
            "uptime": round(time.time() - self._started, 3),
            "store": None if self.store is None else str(self.store.root),
            "requests": len(records),
            "active": sum(1 for r in records if r.status == "running"),
            "solve_batching": (
                None
                if self.solve_broker is None
                else self.solve_broker.describe()
            ),
            "solve_table": peek_tables(),
            "kernel": kernel_status(),
        }

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, send_lock: asyncio.Lock, event: dict
    ) -> None:
        async with send_lock:
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
            await writer.drain()

    async def _try_send(
        self, writer: asyncio.StreamWriter, send_lock: asyncio.Lock, event: dict
    ) -> bool:
        """:meth:`_send`, absorbing a hung-up client.

        A request whose client disconnected mid-run must keep draining
        its executor future and finalising its record (the result still
        lands in the shared store); returns ``False`` once the peer is
        gone so callers stop producing events for it.
        """
        try:
            await self._send(writer, send_lock, event)
        except (ConnectionResetError, BrokenPipeError, OSError):
            return False
        return True

    # -- request execution ----------------------------------------------

    def context_for(
        self, overrides: dict | None, trace: Union[str, Path, None]
    ) -> RunContext:
        """The :class:`RunContext` one request executes under.

        Service defaults, the shared store, the request's trace file,
        and the client's whitelisted *overrides* — resolved and
        validated into a fresh immutable context, so nothing about this
        request's configuration can leak into any other.
        """
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - CONTEXT_OVERRIDE_KEYS)
        if unknown:
            raise ValidationError(
                f"unknown context field(s) {', '.join(unknown)}; "
                f"expected a subset of: "
                f"{', '.join(sorted(CONTEXT_OVERRIDE_KEYS))}"
            )
        return self.defaults.replace(
            store=self.store,
            progress=None,
            trace=trace,
            solve_pool=self.solve_broker,
            **overrides,
        )

    async def _handle_submit(
        self, payload: dict, writer: asyncio.StreamWriter, send_lock: asyncio.Lock
    ) -> None:
        try:
            request = StudyRequest.from_payload(payload.get("request"))
            request_id = f"req-{next(self._request_ids)}"
            trace = None
            if self.trace_dir is not None:
                self.trace_dir.mkdir(parents=True, exist_ok=True)
                trace = self.trace_dir / f"{request_id}.jsonl"
            elif self.defaults.trace is not None:
                # Every request journals from its own executor thread;
                # pointing them all at the defaults trace file would
                # interleave (and corrupt) their journals.  Derive a
                # per-request sibling instead — same directory, request
                # id suffixed — preserving the one-journal-per-request
                # guarantee without --trace-dir.
                base = self.defaults.trace
                trace = base.with_name(
                    f"{base.stem}-{request_id}{base.suffix}"
                )
            context = self.context_for(payload.get("context"), trace)
        except (ReproError, ValidationError) as exc:
            await self._send(
                writer, send_lock, {"event": "error", "error": str(exc)}
            )
            return
        record = _RequestRecord(request_id, request, context.describe())
        with self._records_lock:
            self._records[request_id] = record
        task = asyncio.ensure_future(
            self._run_request(record, request, context, writer, send_lock)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_request(
        self,
        record: _RequestRecord,
        request: StudyRequest,
        context: RunContext,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        events: asyncio.Queue = asyncio.Queue()
        request_id = record.id

        def on_progress(done: int, total: int, result: Any) -> None:
            # Called on the request's executor thread; hop to the loop.
            event = {
                "event": "progress",
                "id": request_id,
                "done": done,
                "total": total,
            }
            if result is not None:
                event["label"] = getattr(result.cell, "label", None)
                event["cached"] = bool(result.cached)
            loop.call_soon_threadsafe(events.put_nowait, event)

        context = context.replace(progress=on_progress)
        try:
            plan = request.build_plan()
        except (ReproError, ValidationError) as exc:
            record.status, record.error = "failed", str(exc)
            record.finished = time.time()
            await self._send(
                writer,
                send_lock,
                {"event": "failed", "id": request_id, "error": str(exc)},
            )
            return
        await self._send(
            writer,
            send_lock,
            {
                "event": "accepted",
                "id": request_id,
                "cells": len(plan.cells),
                "context": record.context,
            },
        )
        self._log(f"{request_id}: {len(plan.cells)} cell(s) accepted")

        def execute():
            try:
                return ParallelExecutor.from_context(context).run(plan)
            finally:
                loop.call_soon_threadsafe(events.put_nowait, _FINISHED)

        record.status = "running"
        future = loop.run_in_executor(self._pool, execute)
        # From here on the client may hang up at any moment; that must
        # never abandon the executor future (the plan keeps running and
        # its results land in the shared store) nor strand the record at
        # "running".  Sends go through _try_send, the future is always
        # awaited, and the record is finalised in the finally.
        connected = True
        try:
            while True:
                event = await events.get()
                if event is _FINISHED:
                    break
                if connected:
                    connected = await self._try_send(writer, send_lock, event)
            try:
                outcome = await future
            except PlanExecutionError as exc:
                record.status, record.error = "failed", str(exc)
                self._log(f"{request_id}: failed ({exc})")
                if connected:
                    await self._try_send(
                        writer,
                        send_lock,
                        {
                            "event": "failed",
                            "id": request_id,
                            "error": str(exc),
                            "failures": [
                                failure.summary() for failure in exc.failures
                            ],
                        },
                    )
                return
            except Exception as exc:  # configuration/runtime errors stay local
                record.status, record.error = (
                    "failed",
                    f"{type(exc).__name__}: {exc}",
                )
                self._log(f"{request_id}: failed ({record.error})")
                if connected:
                    await self._try_send(
                        writer,
                        send_lock,
                        {
                            "event": "failed",
                            "id": request_id,
                            "error": record.error,
                        },
                    )
                return
            record.status = "done"
            record.cells = len(outcome.cells)
            record.cache_hits = outcome.cache_hits
            self._log(
                f"{request_id}: done — {len(outcome.cells)} cell(s), "
                f"{outcome.cache_hits} cache hit(s), backend {outcome.backend}"
            )
            if connected:
                connected = await self._try_send(
                    writer,
                    send_lock,
                    {
                        "event": "done",
                        "id": request_id,
                        "table": render_study_table(plan, outcome),
                        "columns": list(STUDY_COLUMNS),
                        "rows": study_rows(plan, outcome),
                        "cells": len(outcome.cells),
                        "cache_hits": outcome.cache_hits,
                        "shard_cache_hits": outcome.metrics.shard_cache_hits,
                        "backend": outcome.backend,
                        "retries": outcome.retries,
                        "seconds": round(outcome.seconds, 6),
                        "failures": [f.summary() for f in outcome.failures],
                        "trace": (
                            None
                            if context.trace is None
                            else str(context.trace)
                        ),
                        "exit_code": 1 if outcome.failures else 0,
                    },
                )
            if not connected:
                self._log(
                    f"{request_id}: client disconnected; "
                    "result kept (store/cache) but not delivered"
                )
        finally:
            record.finished = time.time()
            if record.status == "running":
                # The handler unwound without a verdict (e.g. cancelled
                # during shutdown): never leave the record claiming it
                # still runs.
                record.status = "failed"
                record.error = record.error or "request interrupted"
