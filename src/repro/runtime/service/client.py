"""Blocking client for the audit service's newline-delimited JSON protocol.

Used by ``python -m repro submit`` / ``status`` and by the test suite;
deliberately synchronous (plain sockets, no asyncio) so callers stay
one straight-line function.  :func:`connect` retries briefly, so a
client started in the same breath as ``python -m repro serve`` (CI
smoke legs, test fixtures) wins the startup race without sleeps.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Callable, Iterator, Union

from ...exceptions import ReproError, ValidationError

__all__ = [
    "parse_address",
    "ping_service",
    "request_events",
    "service_status",
    "shutdown_service",
    "submit_request",
]

#: Seconds :func:`connect` keeps retrying a refused/missing endpoint.
CONNECT_TIMEOUT = 10.0

Address = Union[str, tuple]


def parse_address(address: Address) -> tuple:
    """Normalise an endpoint to ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepts the tuple forms verbatim, ``"host:port"``, a bare port
    (``"8631"``), or a Unix-socket path (anything containing a ``/``).
    """
    if isinstance(address, tuple):
        if len(address) == 2 and address[0] in ("unix", "tcp"):
            return address
        if len(address) == 2:  # (host, port)
            return ("tcp", (str(address[0]), int(address[1])))
        raise ValidationError(f"bad service address {address!r}")
    text = str(address).strip()
    if not text:
        raise ValidationError("service address must not be empty")
    if "/" in text:
        return ("unix", text)
    host, sep, port = text.rpartition(":")
    try:
        if sep:
            return ("tcp", (host or "127.0.0.1", int(port)))
        return ("tcp", ("127.0.0.1", int(text)))
    except ValueError:
        raise ValidationError(
            f"bad service address {text!r}: the port must be an integer "
            "(expected host:port, a bare port, or a unix-socket path)"
        ) from None


def connect(address: Address, timeout: float = CONNECT_TIMEOUT) -> socket.socket:
    """Connect to the service, retrying for up to *timeout* seconds."""
    kind, where = parse_address(address)
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while True:
        try:
            if kind == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    sock.connect(where)
                except OSError:
                    # create_connection closes its socket on failure;
                    # mirror that here or every retry leaks one fd.
                    sock.close()
                    raise
            else:
                sock = socket.create_connection(where, timeout=timeout)
                sock.settimeout(None)
            return sock
        except OSError as exc:
            last = exc
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"could not reach audit service at {where!r}: {last}"
                ) from last
            time.sleep(0.05)


def _roundtrip(address: Address, op: dict) -> Iterator[dict]:
    """Send one op; yield every event line until the connection closes
    or the caller stops consuming."""
    sock = connect(address)
    try:
        sock.sendall(json.dumps(op).encode("utf-8") + b"\n")
        with sock.makefile("r", encoding="utf-8") as lines:
            for line in lines:
                line = line.strip()
                if line:
                    yield json.loads(line)
    finally:
        sock.close()


def _one_event(address: Address, op: dict) -> dict:
    for event in _roundtrip(address, op):
        return event
    raise ReproError("audit service closed the connection without replying")


def request_events(
    address: Address,
    request: dict | None = None,
    context: dict | None = None,
) -> Iterator[dict]:
    """Submit one study request; yield its event stream.

    Yields the ``accepted`` event, then ``progress`` events as cells
    finish, and finally exactly one ``done`` or ``failed`` (at which
    point the iterator ends).  A protocol-level ``error`` event (bad
    request, unknown context knob) is raised as
    :class:`~repro.exceptions.ReproError`.
    """
    op = {"op": "submit", "request": request or {}, "context": context or {}}
    for event in _roundtrip(address, op):
        kind = event.get("event")
        if kind == "error":
            raise ReproError(f"audit service rejected the request: {event.get('error')}")
        yield event
        if kind in ("done", "failed"):
            return
    raise ReproError("audit service closed the connection mid-request")


def submit_request(
    address: Address,
    request: dict | None = None,
    context: dict | None = None,
    on_event: Callable[[dict], None] | None = None,
) -> dict:
    """Submit one study request and block until it finishes.

    Returns the terminal ``done``/``failed`` event; *on_event* (when
    given) observes every event, terminal one included.
    """
    terminal: dict | None = None
    for event in request_events(address, request, context):
        if on_event is not None:
            on_event(event)
        if event.get("event") in ("done", "failed"):
            terminal = event
    assert terminal is not None  # request_events ends on a terminal event
    return terminal


def service_status(address: Address) -> dict:
    """The service's ``status`` snapshot (every request it has seen)."""
    return _one_event(address, {"op": "status"})


def ping_service(address: Address) -> dict:
    """The service's ``pong`` liveness summary."""
    return _one_event(address, {"op": "ping"})


def shutdown_service(address: Address) -> dict:
    """Ask the service to stop accepting work and exit."""
    return _one_event(address, {"op": "shutdown"})
