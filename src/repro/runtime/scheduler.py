"""Backend-agnostic scheduling core for plan executions.

:class:`PlanScheduler` owns everything about a run that must *not*
depend on where work physically executes: the cache scan (merged cell
entries first, then per-shard resume entries), the ready queue of
remaining units, the merge barriers of in-flight sharded cells, the
persistence of fresh results into the
:class:`~repro.runtime.store.ResultStore`, and progress reporting.  The
:class:`~repro.runtime.executor.ParallelExecutor` pairs one scheduler
with one :class:`~repro.runtime.backends.ExecutionBackend` per run and
shuttles completions between them.

That split is what makes backends interchangeable: because every
correctness decision — which shard windows exist, how partials merge,
what tokens identify results — is made here, on the scheduler side, a
unit of work produces the same bytes on the serial path, a local
process pool, or a spool-directory worker on another host, and a run
interrupted on one backend resumes on any other at the finished-shard
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..exceptions import ValidationError
from .cells import (
    cell_repetitions,
    is_shardable,
    shard_reducer_for,
)
from .faults import TaskFailure
from .spec import CellShard, CellSpec, StudyPlan, cache_token, shard_ranges, shard_token
from .store import ResultStore
from .telemetry import ProgressSubscriber, RunTelemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import ExperimentSettings

__all__ = [
    "CellResult",
    "ChunkCalibration",
    "PlanOutcome",
    "PlanScheduler",
    "task_of",
]


@dataclass(frozen=True)
class ChunkCalibration:
    """Outcome of an adaptive chunk-sizing pilot (scheduling only).

    Records which cell served as the pilot, how many repetitions the
    timed pilot shard covered, its wall-clock, and the reps-per-shard
    the run derived from it.  Pure scheduling metadata: the calibrated
    chunk size never reaches cache keys (tokens are chunking-
    independent) or result payloads, so two runs calibrated differently
    still produce byte-identical results files.
    """

    cell_key: tuple
    pilot_repetitions: int
    pilot_seconds: float
    chunk_size: int


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-served) cell.

    ``seconds`` is the compute time of the cell itself (summed across
    its shards when it ran sharded; 0.0 for cache hits); ``cached``
    records whether the value was assembled without computing anything.
    ``shards`` is the number of repetition shards the cell was split
    into (1 = unsharded) and ``shards_cached`` how many of those were
    served from the store (resume).
    """

    cell: CellSpec
    value: Any
    seconds: float
    cached: bool
    shards: int = 1
    shards_cached: int = 0


@dataclass(frozen=True)
class PlanOutcome:
    """Everything a plan execution produced, in plan order.

    ``calibration`` records the adaptive chunk-sizing pilot when the
    run was configured with ``chunk_seconds`` and had shardable work to
    calibrate on; ``None`` otherwise.  ``backend`` names the execution
    backend the run's fresh work dispatched through (``"serial"`` when
    everything came from cache) — reporting only: results and cache
    tokens are backend-independent.

    ``failures`` is non-empty only under ``on_error="continue"``: each
    entry is the final :class:`~repro.runtime.faults.TaskFailure` of a
    unit that exhausted its retries, and the cell it belonged to is
    absent from ``cells`` (quarantined).  ``retries`` counts the
    resubmissions the run performed, successful recoveries included.
    """

    plan: StudyPlan
    cells: tuple[CellResult, ...]
    workers: int
    seconds: float
    calibration: ChunkCalibration | None = None
    backend: str = "serial"
    failures: tuple[TaskFailure, ...] = ()
    retries: int = 0
    #: The run's :class:`~repro.runtime.telemetry.MetricsAggregate`
    #: (cache hit ratio, queue-wait vs execute time, fault counts).
    #: Volatile: excluded from equality/repr, never cached or
    #: serialised — the journal is the durable record.
    metrics: Any = field(default=None, compare=False, repr=False)

    @property
    def results(self) -> dict[tuple, Any]:
        """Cell values keyed by each cell's plan key."""
        return {entry.cell.key: entry.value for entry in self.cells}

    @property
    def cache_hits(self) -> int:
        """Cells served from the result store."""
        return sum(1 for entry in self.cells if entry.cached)

    @property
    def cache_misses(self) -> int:
        """Cells that had to compute."""
        return len(self.cells) - self.cache_hits

    @property
    def compute_seconds(self) -> float:
        """Summed per-cell compute time (serial-equivalent work)."""
        return sum(entry.seconds for entry in self.cells)

    def summary(self) -> str:
        """One-line execution summary for logs and CLIs."""
        name = self.plan.name or "plan"
        sharded = sum(1 for entry in self.cells if entry.shards > 1)
        shard_note = f", {sharded} sharded" if sharded else ""
        if self.calibration is not None:
            shard_note += f", chunk~{self.calibration.chunk_size} calibrated"
        if self.backend not in ("serial", "process"):
            shard_note += f", {self.backend} backend"
        if self.retries:
            shard_note += f", {self.retries} retried"
        if self.failures:
            shard_note += f", {len(self.failures)} FAILED"
        return (
            f"{name}: {len(self.cells)} cells in {self.seconds:.2f}s "
            f"wall ({self.compute_seconds:.2f}s compute, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.cache_hits} cached{shard_note})"
        )


@dataclass
class _ShardedCell:
    """Merge-barrier bookkeeping for one sharded cell in flight."""

    index: int
    cell: CellSpec
    token: str | None
    repetitions: int
    shards: tuple[CellShard, ...]
    partials: dict[int, Any] = field(default_factory=dict)
    shard_tokens: dict[int, str] = field(default_factory=dict)
    seconds: float = 0.0
    cached_shards: int = 0

    @property
    def complete(self) -> bool:
        return len(self.partials) == len(self.shards)

    @property
    def reps_done(self) -> int:
        return sum(
            shard.repetitions
            for shard in self.shards
            if shard.index in self.partials
        )


def task_of(item: tuple) -> CellSpec | CellShard:
    """The submittable unit of a pending queue entry."""
    # Both entry shapes carry their unit at index 2:
    # ("cell", index, cell, token) and ("shard", state, shard).
    return item[2]


class PlanScheduler:
    """The ready-queue / merge-barrier / resume core of one execution.

    Lifecycle: construct per run, call :meth:`scan` once to serve the
    cache and obtain the pending queue, feed every completion to
    :meth:`finish` (any order — the merge barriers handle interleaving),
    and collect :meth:`cells` when the queue has drained.

    Parameters
    ----------
    plan:
        The plan under execution.
    store:
        Result store for cache lookups and persistence, or ``None``.
    progress:
        Per-cell progress callable (``(done, total, CellResult)``), or
        ``None``.
    default_chunk:
        Effective repetition-sharding granularity for cells without
        their own ``chunk_size`` — the executor's fixed chunk size or
        the run's calibrated one.
    pilot:
        ``(cell_index, pilot_reps, value, seconds)`` of an adaptive
        calibration pilot whose leading window should be reused instead
        of re-executed, or ``None``.
    telemetry:
        The run's :class:`~repro.runtime.telemetry.RunTelemetry` bus.
        Every scheduling decision is narrated into it (cache hits,
        queue contents, shard merges, cell completions); progress
        reporting is just a subscriber.  ``None`` creates a private
        bus, so directly-constructed schedulers work unchanged.
    """

    def __init__(
        self,
        plan: StudyPlan,
        *,
        store: ResultStore | None = None,
        progress: Callable[[int, int, CellResult], None] | None = None,
        default_chunk: int | None = None,
        pilot: tuple | None = None,
        telemetry: RunTelemetry | None = None,
        context=None,
    ):
        if context is not None:
            # A RunContext supplies the scheduler-relevant settings the
            # caller didn't pass explicitly; explicit keywords win so
            # the executor can still override the chunk size with a
            # calibrated one.
            if store is None:
                store = context.store
            if progress is None:
                progress = context.progress
            if default_chunk is None:
                default_chunk = context.chunk_size
        self.plan = plan
        self.settings: "ExperimentSettings" = plan.settings
        self.store = store
        self.progress = progress
        self.default_chunk = default_chunk
        self.pilot = pilot
        self.telemetry = telemetry if telemetry is not None else RunTelemetry()
        if progress is not None:
            self.telemetry.subscribe(ProgressSubscriber(progress))
        self._entries: dict[int, CellResult] = {}
        self._failed: dict[int, TaskFailure] = {}
        self._done = 0

    # -- shard planning -------------------------------------------------

    def shards_for(
        self, cell: CellSpec
    ) -> tuple[int, tuple[CellShard, ...]] | None:
        """The shard decomposition of *cell*, or ``None`` to run whole.

        A cell shards when its type registered the sharding triple and
        the effective chunk size (cell override, else the scheduler's
        ``default_chunk``) splits its repetitions into more than one
        window.
        """
        chunk = (
            cell.chunk_size if cell.chunk_size is not None else self.default_chunk
        )
        if chunk is None or not is_shardable(cell):
            return None
        if chunk < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk}")
        repetitions = cell_repetitions(cell, self.settings)
        ranges = shard_ranges(repetitions, chunk)
        if len(ranges) < 2:
            return None
        shards = tuple(
            CellShard(
                cell=cell,
                index=i,
                shards=len(ranges),
                rep_start=start,
                rep_stop=stop,
            )
            for i, (start, stop) in enumerate(ranges)
        )
        return repetitions, shards

    # -- cache scan / ready queue ---------------------------------------

    def scan(self) -> list[tuple]:
        """Serve the cache; returns the queue of units still to run.

        Cache lookups happen in two passes per cell — the merged cell
        entry, then per-shard entries for sharded cells — so a resumed
        run recomputes only the windows that never finished.  Queue
        entries are ``("cell", index, cell, token)`` or
        ``("shard", state, shard)``; either way :func:`task_of` yields
        the unit a backend should execute.
        """
        self.telemetry.emit("scan_start", cells=len(self.plan.cells))
        pending: list[tuple] = []
        for index, cell in enumerate(self.plan.cells):
            # Explicit None check: an empty ResultStore has len() == 0
            # and would read as falsy.
            token = (
                cache_token(cell, self.settings) if self.store is not None else None
            )
            if token is not None:
                payload = self.store.load(token)
                if payload is not None:
                    self.telemetry.emit(
                        "cache_hit",
                        label=cell.label,
                        kind=type(cell).__name__,
                        token=token,
                    )
                    self._entries[index] = CellResult(
                        cell=cell, value=payload["value"], seconds=0.0, cached=True
                    )
                    self._report(self._entries[index])
                    continue
            decomposition = self.shards_for(cell)
            if decomposition is None:
                pending.append(("cell", index, cell, token))
                continue
            repetitions, shards = decomposition
            state = _ShardedCell(
                index=index,
                cell=cell,
                token=token,
                repetitions=repetitions,
                shards=shards,
            )
            incomplete = []
            for shard in shards:
                if (
                    self.pilot is not None
                    and index == self.pilot[0]
                    and shard.index == 0
                    and shard.rep_stop == self.pilot[1]
                ):
                    # The calibration pilot already computed this exact
                    # window in-process; count it as compute performed
                    # this run (it was), not as a cache hit.
                    state.partials[0] = self.pilot[2]
                    state.seconds += self.pilot[3]
                    continue
                if self.store is not None:
                    stoken = shard_token(shard, self.settings, repetitions)
                    state.shard_tokens[shard.index] = stoken
                    payload = self.store.load(stoken, group=token)
                    if payload is not None:
                        # seconds stays at compute-performed-this-run:
                        # resumed shards contribute their value, not
                        # their historical wall-clock.
                        self.telemetry.emit(
                            "shard_cache_hit",
                            label=shard.label,
                            kind=type(cell).__name__,
                            token=stoken,
                        )
                        state.partials[shard.index] = payload["value"]
                        state.cached_shards += 1
                        continue
                incomplete.append(("shard", state, shard))
            if state.cached_shards:
                self._shard_progress(state)
            if state.complete:
                # Every shard was already on disk (an interrupted run
                # that died between its last shard and the merge).
                self._merge_cell(state)
            else:
                pending.extend(incomplete)
        self.telemetry.emit(
            "scan_finish",
            pending=len(pending),
            cached=sum(1 for entry in self._entries.values() if entry.cached),
        )
        return pending

    # -- completions ----------------------------------------------------

    def finish(self, item: tuple, value: Any, seconds: float) -> None:
        """Record one completed unit (from any backend, in any order)."""
        if item[0] == "cell":
            _, index, cell, token = item
            self._finish_cell(index, cell, token, value, seconds)
        else:
            _, state, shard = item
            self._finish_shard(state, shard, value, seconds)

    def quarantine(self, item: tuple, failure: TaskFailure) -> None:
        """Mark the cell behind *item* failed; the queue keeps draining.

        The ``on_error="continue"`` path: the failed unit's cell is
        excluded from :meth:`cells` (a sharded cell with one exhausted
        shard can never merge, so the whole cell is quarantined).
        Sibling shards already in flight still persist their partials
        on completion — a later run with the fault fixed resumes at the
        finished-shard boundary — but the quarantined cell produces no
        result and no merged cache entry this run.
        """
        index = item[1] if item[0] == "cell" else item[1].index
        # First failure wins: a second shard of the same cell failing
        # later must not overwrite the failure that quarantined it.
        self._failed.setdefault(index, failure)

    def failed(self) -> tuple[TaskFailure, ...]:
        """Final failure per quarantined cell, in plan order."""
        return tuple(self._failed[index] for index in sorted(self._failed))

    def cells(self) -> tuple[CellResult, ...]:
        """All results in plan order; quarantined cells are absent.

        A cell that neither finished nor was quarantined means the
        drain loop lost a unit — that is a bug, and the ``KeyError``
        here is deliberately loud.
        """
        return tuple(
            self._entries[index]
            for index in range(len(self.plan.cells))
            if index not in self._failed
        )

    # -- internals ------------------------------------------------------

    def _report(self, result: CellResult) -> None:
        self._done += 1
        self.telemetry.emit(
            "cell_finished",
            payload=result,
            done=self._done,
            total=len(self.plan.cells),
            label=result.cell.label,
            kind=type(result.cell).__name__,
            cached=result.cached,
            seconds=round(result.seconds, 6),
            shards=result.shards,
            shards_cached=result.shards_cached,
        )

    def _finish_cell(
        self, index: int, cell: CellSpec, token: str | None, value, seconds
    ) -> None:
        if token is not None:
            self.store.save(
                token, {"value": value, "label": cell.label, "seconds": seconds}
            )
            # An unsharded completion also sweeps any shard
            # scaffolding filed under this cell's group — a
            # calibration pilot whose chunking ended up unsharded,
            # or windows left by an interrupted sharded run.
            self.store.discard_group(token)
        self._entries[index] = CellResult(
            cell=cell, value=value, seconds=seconds, cached=False
        )
        self._report(self._entries[index])

    def _merge_cell(self, state: _ShardedCell) -> None:
        partials = [state.partials[i] for i in range(len(state.shards))]
        value = shard_reducer_for(state.cell)(state.cell, self.settings, partials)
        if state.token is not None:
            self.store.save(
                state.token,
                {
                    "value": value,
                    "label": state.cell.label,
                    "seconds": state.seconds,
                },
            )
            # Shard entries are scaffolding for resume; once the
            # merged result is durable they only cost disk.  The
            # group is keyed by the chunking-independent cell token,
            # so this also sweeps stale windows left by interrupted
            # runs under a different chunk size.
            self.store.discard_group(state.token)
        self.telemetry.emit(
            "shard_merged",
            label=state.cell.label,
            kind=type(state.cell).__name__,
            shards=len(state.shards),
            shards_cached=state.cached_shards,
            seconds=round(state.seconds, 6),
        )
        self._entries[state.index] = CellResult(
            cell=state.cell,
            value=value,
            seconds=state.seconds,
            cached=len(state.partials) == state.cached_shards,
            shards=len(state.shards),
            shards_cached=state.cached_shards,
        )
        self._report(self._entries[state.index])

    def _shard_progress(self, state: _ShardedCell) -> None:
        self.telemetry.emit(
            "shard_progress",
            payload=state.cell,
            label=state.cell.label,
            shards_done=len(state.partials),
            shards_total=len(state.shards),
            reps_done=state.reps_done,
            reps_total=state.repetitions,
        )

    def _finish_shard(
        self, state: _ShardedCell, shard: CellShard, value, seconds
    ) -> None:
        token = state.shard_tokens.get(shard.index)
        if token is not None:
            self.store.save(
                token,
                {"value": value, "label": shard.label, "seconds": seconds},
                group=state.token,
            )
        state.partials[shard.index] = value
        state.seconds += seconds
        self._shard_progress(state)
        if state.complete and state.index not in self._failed:
            self._merge_cell(state)
