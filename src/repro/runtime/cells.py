"""Cell runners: turn picklable cell specs into computed results.

Workers (or the serial fallback) receive a :class:`~.spec.CellSpec`
plus the plan settings and nothing else, so everything a cell needs —
the KG, the sampling strategy, the interval method — is rebuilt from
spec strings here.  Builders are deterministic: the same spec and
settings always construct identical objects, which is what makes
parallel execution bit-identical to serial and cache keys meaningful.

The runner registry is open: downstream code (and the test suite) can
register additional cell types with :func:`register_cell_runner`
without touching the executor.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..annotation.annotator import OracleAnnotator
from ..evaluation.coverage import (
    CoverageResult,
    coverage_from_counts,
    empirical_coverage,
    tau_counts,
)
from ..evaluation.dynamic import DynamicAuditor, DynamicAuditStudy
from ..evaluation.framework import KGAccuracyEvaluator
from ..evaluation.partitioned import (
    PartitionedAuditResult,
    allocate_budget,
    finalize_audit,
    partition_order,
    partition_trajectories,
)
from ..evaluation.runner import StudyResult, run_study
from ..evaluation.sequential import (
    SequentialCoverageResult,
    sequential_coverage,
    sequential_from_replays,
    sequential_replays,
)
from ..exceptions import ValidationError
from ..intervals.agresti_coull import AgrestiCoullInterval
from ..intervals.ahpd import AdaptiveHPD
from ..intervals.base import IntervalMethod
from ..intervals.clopper_pearson import ClopperPearsonInterval
from ..intervals.et import ETCredibleInterval
from ..intervals.hpd import HPDCredibleInterval
from ..intervals.payloads import build_method_from_payload, method_payload
from ..intervals.priors import JEFFREYS, KERMAN, UNIFORM, BetaPrior
from ..intervals.transforms import ArcsineInterval, LogitInterval
from ..intervals.wald import WaldInterval
from ..intervals.wilson import WilsonInterval
from ..kg.base import TripleStore
from ..kg.datasets import load_dataset, load_syn100m
from ..kg.io import load_kg
from ..sampling.base import SamplingStrategy
from ..sampling.srs import SimpleRandomSampling
from ..sampling.stratified import StratifiedPredicateSampling
from ..sampling.twcs import TwoStageWeightedClusterSampling
from ..sampling.wcs import WeightedClusterSampling
from ..kg.evolution import UpdateBatchSpec, build_evolving_kg
from ..kg.graph import KnowledgeGraph
from ..kg.queries import TripleIndex
from ..stats.rng import derive_seed, spawn_rng
from .spec import (
    CellSpec,
    CoverageCell,
    DynamicAuditCell,
    PartitionedAuditCell,
    SequentialCoverageCell,
    StudyCell,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import ExperimentSettings

__all__ = [
    "build_kg",
    "build_method",
    "build_method_from_payload",
    "build_strategy",
    "cell_method",
    "cell_repetitions",
    "is_shardable",
    "method_payload",
    "register_cell_runner",
    "register_shard_runner",
    "register_shard_reducer",
    "runner_for",
    "shard_runner_for",
    "shard_reducer_for",
    "run_study_cell",
    "run_coverage_cell",
    "run_sequential_coverage_cell",
    "run_dynamic_audit_cell",
    "run_partitioned_audit_cell",
]

_PRIORS = {"kerman": KERMAN, "jeffreys": JEFFREYS, "uniform": UNIFORM}

#: Per-process KG memo: workers (and serial runs) load each dataset
#: once, not once per cell.  Capped because the SYN 100M backends hold
#: ~100 MB each; eviction is FIFO — grids sweep datasets in order, so
#: recency tracking buys nothing.
_KG_CACHE: dict[tuple[str, int], TripleStore] = {}
_KG_CACHE_LIMIT = 4


def build_kg(spec: str, dataset_seed: int) -> TripleStore:
    """Load the KG described by *spec*, memoised per process.

    Accepted forms: a profiled-dataset name (``"NELL"``),
    ``"SYN100M:<mu>"`` for the synthetic 100M-triple KG at accuracy
    ``mu``, or ``"file:<path>"`` for a labelled-TSV file.
    """
    key = (spec, dataset_seed)
    cached = _KG_CACHE.get(key)
    if cached is not None:
        return cached
    upper = spec.upper()
    if upper.startswith("SYN100M:"):
        kg: TripleStore = load_syn100m(
            accuracy=float(spec.split(":", 1)[1]), seed=dataset_seed
        )
    elif spec.startswith("file:"):
        kg = load_kg(spec.split(":", 1)[1])
    else:
        kg = load_dataset(spec, seed=dataset_seed)
    if len(_KG_CACHE) >= _KG_CACHE_LIMIT:
        _KG_CACHE.pop(next(iter(_KG_CACHE)))
    _KG_CACHE[key] = kg
    return kg


def build_strategy(spec: str) -> SamplingStrategy:
    """Instantiate the sampling design described by *spec*.

    Accepted forms: ``"SRS"``, ``"TWCS:<m>"`` (the stage-2 cap is
    explicit — plan builders resolve the per-dataset default),
    ``"WCS"``, and ``"STRAT"``.
    """
    head, _, arg = spec.partition(":")
    head = head.upper()
    if head == "SRS":
        return SimpleRandomSampling()
    if head == "TWCS":
        if not arg:
            raise ValidationError(
                "TWCS cell specs must carry an explicit stage-2 cap, "
                'e.g. "TWCS:3"'
            )
        return TwoStageWeightedClusterSampling(m=int(arg))
    if head == "WCS":
        return WeightedClusterSampling()
    if head == "STRAT":
        return StratifiedPredicateSampling()
    raise ValidationError(f"unknown sampling strategy spec {spec!r}")


def _prior(name: str) -> BetaPrior:
    prior = _PRIORS.get(name.strip().lower())
    if prior is None:
        known = ", ".join(sorted(_PRIORS))
        raise ValidationError(f"unknown prior {name!r}; expected one of: {known}")
    return prior


def build_method(
    spec: str,
    solver: str = "newton",
    priors: tuple[tuple[float, float, str], ...] | None = None,
) -> IntervalMethod:
    """Instantiate the interval method described by *spec*.

    Accepted forms (case-insensitive): ``Wald``, ``Wilson``, ``AC``,
    ``CP``, ``Arcsine``, ``Logit``, ``ET[:prior]``, ``HPD[:prior]``,
    and ``aHPD``.  *priors* (``(a, b, name)`` triples) equips aHPD with
    informative candidates instead of the uninformative trio.
    """
    head, _, arg = spec.partition(":")
    name = head.strip().lower()
    if name == "wald":
        return WaldInterval()
    if name == "wilson":
        return WilsonInterval()
    if name in ("ac", "agresti-coull"):
        return AgrestiCoullInterval()
    if name in ("cp", "clopper-pearson"):
        return ClopperPearsonInterval()
    if name == "arcsine":
        return ArcsineInterval()
    if name == "logit":
        return LogitInterval()
    if name == "et":
        return ETCredibleInterval(prior=_prior(arg)) if arg else ETCredibleInterval()
    if name == "hpd":
        if arg:
            return HPDCredibleInterval(prior=_prior(arg), solver=solver)
        return HPDCredibleInterval(solver=solver)
    if name == "ahpd":
        if priors is not None:
            candidates = tuple(BetaPrior(a, b, name=label) for a, b, label in priors)
            return AdaptiveHPD(priors=candidates, solver=solver)
        return AdaptiveHPD(solver=solver)
    raise ValidationError(f"unknown interval method spec {spec!r}")


# ----------------------------------------------------------------------
# Picklable method payloads
# ----------------------------------------------------------------------
#
# The payload machinery itself lives in the intervals layer
# (:mod:`repro.intervals.payloads`) because the solve broker and the
# small-n solve table key methods by payload too; the names stay
# re-exported here, unchanged, for every existing runtime import site.


def cell_method(cell: CellSpec, settings: "ExperimentSettings") -> IntervalMethod:
    """The interval method a cell's runner (or reducer) should use.

    A :attr:`~repro.runtime.spec.CellSpec.method_payload` wins over the
    ``method`` spec string; both construct deterministically, which is
    what keeps worker-side rebuilds bit-identical to the serial path.
    """
    if cell.method_payload is not None:
        return build_method_from_payload(cell.method_payload)
    return build_method(
        cell.method,
        solver=settings.solver,
        priors=getattr(cell, "priors", None),
    )


# ----------------------------------------------------------------------
# Runner registry
# ----------------------------------------------------------------------

_RUNNERS: dict[type, Callable[[Any, "ExperimentSettings"], Any]] = {}


def register_cell_runner(cell_type: type):
    """Class decorator-style registration of a cell runner.

    The executor dispatches on the cell's type (walking the MRO, so
    subclasses inherit their parent's runner unless they register their
    own).
    """

    def decorate(fn: Callable[[Any, "ExperimentSettings"], Any]):
        _RUNNERS[cell_type] = fn
        return fn

    return decorate


def runner_for(cell: CellSpec) -> Callable[[Any, "ExperimentSettings"], Any]:
    """The registered runner for *cell*'s type."""
    runner = _lookup(_RUNNERS, cell)
    if runner is None:
        raise ValidationError(f"no runner registered for cell type {type(cell)!r}")
    return runner


# ----------------------------------------------------------------------
# Repetition-sharding registry
# ----------------------------------------------------------------------
#
# A cell type opts into repetition sharding by registering three pieces:
# a repetition counter (how many independent repetitions the cell runs),
# a shard runner (execute one half-open repetition window, returning a
# picklable partial payload), and a reducer (merge the in-order partial
# payloads into exactly the value the unsharded runner returns).  The
# contract every implementation must honour — and the hypothesis suite
# enforces — is *bit-identity*: for any chunking, reducing the shard
# payloads reproduces the unsharded result exactly.  The built-in kinds
# achieve that by keeping per-repetition seed streams keyed on global
# repetition indices and merging via lossless operations only (integer
# sums, array concatenation) before any shared float reduction.

_SHARD_RUNNERS: dict[type, Callable[[Any, "ExperimentSettings", int, int], Any]] = {}
_SHARD_REDUCERS: dict[type, Callable[[Any, "ExperimentSettings", list], Any]] = {}
_REP_COUNTERS: dict[type, Callable[[Any, "ExperimentSettings"], int]] = {}


def register_shard_runner(
    cell_type: type, repetitions: Callable[[Any, "ExperimentSettings"], int]
):
    """Register a shard runner (and repetition counter) for *cell_type*.

    The runner receives ``(cell, settings, rep_start, rep_stop)`` and
    returns a picklable partial payload for that window; *repetitions*
    maps ``(cell, settings)`` to the cell's total repetition count.
    """

    def decorate(fn: Callable[[Any, "ExperimentSettings", int, int], Any]):
        _SHARD_RUNNERS[cell_type] = fn
        _REP_COUNTERS[cell_type] = repetitions
        return fn

    return decorate


def register_shard_reducer(cell_type: type):
    """Register the merge step for *cell_type*'s shard payloads.

    The reducer receives ``(cell, settings, partials)`` with partials in
    shard order and must return exactly what the unsharded runner would.
    """

    def decorate(fn: Callable[[Any, "ExperimentSettings", list], Any]):
        _SHARD_REDUCERS[cell_type] = fn
        return fn

    return decorate


def _lookup(registry: dict, cell: CellSpec):
    for klass in type(cell).__mro__:
        entry = registry.get(klass)
        if entry is not None:
            return entry
    return None


def is_shardable(cell: CellSpec) -> bool:
    """Whether *cell*'s type registered the full sharding triple."""
    return (
        _lookup(_SHARD_RUNNERS, cell) is not None
        and _lookup(_SHARD_REDUCERS, cell) is not None
        and _lookup(_REP_COUNTERS, cell) is not None
    )


def cell_repetitions(cell: CellSpec, settings: "ExperimentSettings") -> int:
    """Total independent repetitions *cell* runs under *settings*."""
    counter = _lookup(_REP_COUNTERS, cell)
    if counter is None:
        raise ValidationError(
            f"cell type {type(cell)!r} has no registered repetition counter"
        )
    return int(counter(cell, settings))


def shard_runner_for(cell: CellSpec) -> Callable[[Any, "ExperimentSettings", int, int], Any]:
    """The registered shard runner for *cell*'s type."""
    runner = _lookup(_SHARD_RUNNERS, cell)
    if runner is None:
        raise ValidationError(
            f"no shard runner registered for cell type {type(cell)!r}"
        )
    return runner


def shard_reducer_for(cell: CellSpec) -> Callable[[Any, "ExperimentSettings", list], Any]:
    """The registered shard reducer for *cell*'s type."""
    reducer = _lookup(_SHARD_REDUCERS, cell)
    if reducer is None:
        raise ValidationError(
            f"no shard reducer registered for cell type {type(cell)!r}"
        )
    return reducer


# ----------------------------------------------------------------------
# Built-in runners
# ----------------------------------------------------------------------


def _study_evaluator(cell: StudyCell, settings: "ExperimentSettings") -> KGAccuracyEvaluator:
    """The deterministic evaluator behind a study cell (or its shards)."""
    kg = build_kg(cell.dataset, settings.dataset_seed)
    config = settings.evaluation_config(alpha=cell.alpha)
    if cell.units_per_iteration is not None:
        config = replace(config, units_per_iteration=cell.units_per_iteration)
    return KGAccuracyEvaluator(
        kg=kg,
        strategy=build_strategy(cell.strategy),
        method=cell_method(cell, settings),
        config=config,
    )


@register_cell_runner(StudyCell)
def run_study_cell(cell: StudyCell, settings: "ExperimentSettings") -> StudyResult:
    """One (dataset, strategy, method) Monte-Carlo study.

    Mirrors the pre-runtime ``run_configuration`` path exactly: the
    evaluator configuration, the per-cell ``derive_seed`` stream, and
    the per-repetition seeding are unchanged, so routed experiments
    reproduce their serial numbers bit for bit.
    """
    return run_study(
        _study_evaluator(cell, settings),
        repetitions=settings.repetitions,
        seed=derive_seed(settings.seed, *cell.seed_stream),
        label=cell.label,
    )


@register_cell_runner(CoverageCell)
def run_coverage_cell(cell: CoverageCell, settings: "ExperimentSettings") -> CoverageResult:
    """One fixed-n empirical coverage cell."""
    method = cell_method(cell, settings)
    alpha = settings.alpha if cell.alpha is None else cell.alpha
    repetitions = settings.repetitions if cell.repetitions is None else cell.repetitions
    return empirical_coverage(
        method,
        cell.mu,
        cell.n,
        alpha=alpha,
        repetitions=repetitions,
        rng=cell.seed,
    )


@register_cell_runner(SequentialCoverageCell)
def run_sequential_coverage_cell(
    cell: SequentialCoverageCell, settings: "ExperimentSettings"
) -> SequentialCoverageResult:
    """One stopped-interval coverage cell (full iterative procedure)."""
    method = cell_method(cell, settings)
    config = settings.evaluation_config(alpha=cell.alpha)
    repetitions = settings.repetitions if cell.repetitions is None else cell.repetitions
    return sequential_coverage(
        method,
        cell.mu,
        config=config,
        repetitions=repetitions,
        seed=cell.seed,
    )


# ----------------------------------------------------------------------
# Built-in shard runners and reducers
# ----------------------------------------------------------------------


def _study_cell_repetitions(cell: StudyCell, settings: "ExperimentSettings") -> int:
    return settings.repetitions


def _audit_cell_repetitions(cell, settings: "ExperimentSettings") -> int:
    return settings.repetitions if cell.repetitions is None else cell.repetitions


@register_shard_runner(StudyCell, repetitions=_study_cell_repetitions)
def run_study_cell_shard(
    cell: StudyCell, settings: "ExperimentSettings", rep_start: int, rep_stop: int
) -> StudyResult:
    """Repetitions ``[rep_start, rep_stop)`` of a study cell.

    Per-repetition seeds stay keyed on the global repetition index, so
    the shard's arrays are exactly the corresponding slice of the
    unsharded run's.
    """
    return run_study(
        _study_evaluator(cell, settings),
        repetitions=settings.repetitions,
        seed=derive_seed(settings.seed, *cell.seed_stream),
        label=cell.label,
        rep_range=(rep_start, rep_stop),
    )


@register_shard_reducer(StudyCell)
def merge_study_cell_shards(
    cell: StudyCell, settings: "ExperimentSettings", partials: list
) -> StudyResult:
    """Concatenate in-order study shards back into the full-cell result.

    Concatenation of the per-repetition arrays is lossless, and the
    summaries on :class:`StudyResult` are derived lazily from them, so
    the merged result is bit-identical to the unsharded run.
    """
    return StudyResult(
        label=cell.label,
        triples=np.concatenate([p.triples for p in partials]),
        cost_hours=np.concatenate([p.cost_hours for p in partials]),
        estimates=np.concatenate([p.estimates for p in partials]),
        entities=np.concatenate([p.entities for p in partials]),
        converged=np.concatenate([p.converged for p in partials]),
    )


@register_shard_runner(CoverageCell, repetitions=_audit_cell_repetitions)
def run_coverage_cell_shard(
    cell: CoverageCell, settings: "ExperimentSettings", rep_start: int, rep_stop: int
) -> np.ndarray:
    """Outcome histogram of one repetition window of a coverage cell.

    The partial payload is the integer ``tau`` histogram of the window;
    histograms of a partition sum exactly to the full histogram, and the
    reducer performs the (cheap, deduplicated) interval solves once on
    the merged counts — the identical computation the unsharded runner
    does.
    """
    return tau_counts(
        cell.mu,
        cell.n,
        _audit_cell_repetitions(cell, settings),
        rng=cell.seed,
        rep_range=(rep_start, rep_stop),
    )


@register_shard_reducer(CoverageCell)
def merge_coverage_cell_shards(
    cell: CoverageCell, settings: "ExperimentSettings", partials: list
) -> CoverageResult:
    """Sum shard histograms and solve the merged outcome set once."""
    counts = np.sum(partials, axis=0)
    method = cell_method(cell, settings)
    alpha = settings.alpha if cell.alpha is None else cell.alpha
    return coverage_from_counts(
        method,
        cell.mu,
        cell.n,
        alpha,
        counts,
        repetitions=_audit_cell_repetitions(cell, settings),
    )


@register_shard_runner(SequentialCoverageCell, repetitions=_audit_cell_repetitions)
def run_sequential_coverage_cell_shard(
    cell: SequentialCoverageCell,
    settings: "ExperimentSettings",
    rep_start: int,
    rep_stop: int,
) -> tuple[int, np.ndarray]:
    """Raw ``(hits, stopping)`` replay outcomes of one repetition window."""
    method = cell_method(cell, settings)
    config = settings.evaluation_config(alpha=cell.alpha)
    return sequential_replays(
        method,
        cell.mu,
        config=config,
        repetitions=_audit_cell_repetitions(cell, settings),
        seed=cell.seed,
        rep_range=(rep_start, rep_stop),
    )


@register_shard_reducer(SequentialCoverageCell)
def merge_sequential_coverage_cell_shards(
    cell: SequentialCoverageCell, settings: "ExperimentSettings", partials: list
) -> SequentialCoverageResult:
    """Sum hit counts, concatenate stopping sizes, summarise once.

    Hit counts are integers and the stopping-size concatenation is the
    unsharded run's array element for element, so the float summaries
    (mean/std over the full array) are computed on identical input —
    bit-identical output.
    """
    method = cell_method(cell, settings)
    config = settings.evaluation_config(alpha=cell.alpha)
    hits = sum(int(h) for h, _ in partials)
    stopping = np.concatenate([s for _, s in partials])
    return sequential_from_replays(method.name, cell.mu, config, hits, stopping)


# ----------------------------------------------------------------------
# Dynamic (evolving-KG) audit cells
# ----------------------------------------------------------------------

#: Per-process snapshot-stream memo, mirroring the KG cache: every
#: repetition shard of a dynamic cell replays the same evolving KG, so
#: workers build each stream once.  FIFO-capped like the KG cache.
_SNAPSHOT_CACHE: dict[tuple, list] = {}
_SNAPSHOT_CACHE_LIMIT = 4


def _dynamic_snapshots(cell: DynamicAuditCell) -> list:
    key = (cell.base_facts, cell.base_accuracy, cell.updates, cell.stream_seed)
    cached = _SNAPSHOT_CACHE.get(key)
    if cached is not None:
        return cached
    updates = [
        UpdateBatchSpec(
            num_facts=num_facts,
            accuracy=accuracy,
            intra_cluster_correlation=correlation,
        )
        for num_facts, accuracy, correlation in cell.updates
    ]
    snapshots = build_evolving_kg(
        base_facts=cell.base_facts,
        base_accuracy=cell.base_accuracy,
        updates=updates,
        seed=cell.stream_seed,
    )
    if len(_SNAPSHOT_CACHE) >= _SNAPSHOT_CACHE_LIMIT:
        _SNAPSHOT_CACHE.pop(next(iter(_SNAPSHOT_CACHE)))
    _SNAPSHOT_CACHE[key] = snapshots
    return snapshots


def _dynamic_auditor(cell: DynamicAuditCell, settings: "ExperimentSettings") -> DynamicAuditor:
    return DynamicAuditor(
        strategy=build_strategy(cell.strategy),
        config=settings.evaluation_config(alpha=cell.alpha),
        carryover=cell.carryover,
        max_prior_strength=cell.max_prior_strength,
        solver=settings.solver,
    )


@register_cell_runner(DynamicAuditCell)
def run_dynamic_audit_cell(
    cell: DynamicAuditCell, settings: "ExperimentSettings"
) -> DynamicAuditStudy:
    """All replications of one evolving-KG audit stream.

    Repetition 0 reproduces ``DynamicAuditor.audit_stream`` on the
    cell's audit seed exactly, so routing a single-replication
    experiment through the runtime changes scheduling, never numbers.
    """
    return _dynamic_auditor(cell, settings).audit_study(
        _dynamic_snapshots(cell),
        repetitions=_audit_cell_repetitions(cell, settings),
        seed=cell.seed,
        label=cell.label,
    )


@register_shard_runner(DynamicAuditCell, repetitions=_audit_cell_repetitions)
def run_dynamic_audit_cell_shard(
    cell: DynamicAuditCell,
    settings: "ExperimentSettings",
    rep_start: int,
    rep_stop: int,
) -> tuple:
    """Stream replications ``[rep_start, rep_stop)`` of a dynamic cell.

    Each replication is a complete multi-round stream with the carried
    prior threaded through its rounds, and its seed window is keyed on
    the global repetition index — so the shard payload is exactly the
    corresponding slice of the unsharded study's streams.
    """
    study = _dynamic_auditor(cell, settings).audit_study(
        _dynamic_snapshots(cell),
        repetitions=_audit_cell_repetitions(cell, settings),
        seed=cell.seed,
        label=cell.label,
        rep_range=(rep_start, rep_stop),
    )
    return study.streams


@register_shard_reducer(DynamicAuditCell)
def merge_dynamic_audit_cell_shards(
    cell: DynamicAuditCell, settings: "ExperimentSettings", partials: list
) -> DynamicAuditStudy:
    """Concatenate in-order stream windows back into the full study.

    Concatenation is lossless (the records themselves are the payload,
    carried-prior state included), so the merged study is bit-identical
    to the unsharded run for any chunking.
    """
    return DynamicAuditStudy(
        label=cell.label,
        streams=tuple(stream for part in partials for stream in part),
    )


# ----------------------------------------------------------------------
# Partitioned (per-predicate) audit cells
# ----------------------------------------------------------------------
#
# The shard dimension here is the *partition list*, not Monte-Carlo
# repetitions: "repetition" i is predicate i in the KG's deterministic
# sorted order.  Shards compute the expensive budget-independent
# trajectories of their partition window; the reducer merges the
# integer-evidence partials, replays the budget allocation, and runs
# the shared interval solves once.


def _partitioned_kg(cell: PartitionedAuditCell, settings: "ExperimentSettings") -> KnowledgeGraph:
    kg = build_kg(cell.dataset, settings.dataset_seed)
    if not isinstance(kg, KnowledgeGraph):
        raise ValidationError(
            f"partitioned audits need a materialised KnowledgeGraph; "
            f"dataset spec {cell.dataset!r} built {type(kg)!r}"
        )
    return kg


def _partitioned_cell_partitions(
    cell: PartitionedAuditCell, settings: "ExperimentSettings"
) -> int:
    # Counting needs the predicate list only — not the permutation
    # draws partition_order performs on top of it.
    return len(TripleIndex(_partitioned_kg(cell, settings)).predicates)


def _partition_trajectory_window(
    cell: PartitionedAuditCell,
    settings: "ExperimentSettings",
    start: int,
    stop: int | None,
) -> tuple:
    kg = _partitioned_kg(cell, settings)
    generator = spawn_rng(cell.seed)
    names, members, order = partition_order(kg, rng=generator)
    alpha = settings.alpha if cell.alpha is None else cell.alpha
    trajectories = partition_trajectories(
        kg,
        names[start:stop],
        members,
        order,
        cell_method(cell, settings),
        alpha,
        cell.epsilon,
        cell.min_per_partition,
        cell.max_triples,
        OracleAnnotator(),
        rng=generator,
    )
    return tuple(trajectories)


@register_cell_runner(PartitionedAuditCell)
def run_partitioned_audit_cell(
    cell: PartitionedAuditCell, settings: "ExperimentSettings"
) -> PartitionedAuditResult:
    """One whole partitioned audit (trajectories + allocation + solve)."""
    trajectories = _partition_trajectory_window(cell, settings, 0, None)
    return merge_partitioned_audit_cell_shards(cell, settings, [trajectories])


@register_shard_runner(PartitionedAuditCell, repetitions=_partitioned_cell_partitions)
def run_partitioned_audit_cell_shard(
    cell: PartitionedAuditCell,
    settings: "ExperimentSettings",
    rep_start: int,
    rep_stop: int,
) -> tuple:
    """Trajectories of partitions ``[rep_start, rep_stop)``.

    Every shard replays the full permutation schedule (cheap) and
    annotates only its own partitions (rng-free under the oracle
    annotator), so its payload is exactly the corresponding slice of
    the serial trajectory list.
    """
    return _partition_trajectory_window(cell, settings, rep_start, rep_stop)


@register_shard_reducer(PartitionedAuditCell)
def merge_partitioned_audit_cell_shards(
    cell: PartitionedAuditCell, settings: "ExperimentSettings", partials: list
) -> PartitionedAuditResult:
    """Merge integer trajectories, replay the budget, solve once.

    The partials are integer evidence only; every float the result
    carries is produced *after* the merge by the same allocation replay
    and interval solves the serial path runs — bit-identical output for
    any partition chunking.
    """
    trajectories = [trajectory for part in partials for trajectory in part]
    allocated, done, total = allocate_budget(trajectories, cell.max_triples)
    alpha = settings.alpha if cell.alpha is None else cell.alpha
    return finalize_audit(
        trajectories,
        allocated,
        done,
        total,
        cell_method(cell, settings),
        alpha,
        cell.epsilon,
    )
