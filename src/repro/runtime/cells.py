"""Cell runners: turn picklable cell specs into computed results.

Workers (or the serial fallback) receive a :class:`~.spec.CellSpec`
plus the plan settings and nothing else, so everything a cell needs —
the KG, the sampling strategy, the interval method — is rebuilt from
spec strings here.  Builders are deterministic: the same spec and
settings always construct identical objects, which is what makes
parallel execution bit-identical to serial and cache keys meaningful.

The runner registry is open: downstream code (and the test suite) can
register additional cell types with :func:`register_cell_runner`
without touching the executor.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable

from ..evaluation.coverage import CoverageResult, empirical_coverage
from ..evaluation.framework import KGAccuracyEvaluator
from ..evaluation.runner import StudyResult, run_study
from ..evaluation.sequential import SequentialCoverageResult, sequential_coverage
from ..exceptions import ValidationError
from ..intervals.agresti_coull import AgrestiCoullInterval
from ..intervals.ahpd import AdaptiveHPD
from ..intervals.base import IntervalMethod
from ..intervals.clopper_pearson import ClopperPearsonInterval
from ..intervals.et import ETCredibleInterval
from ..intervals.hpd import HPDCredibleInterval
from ..intervals.priors import JEFFREYS, KERMAN, UNIFORM, BetaPrior
from ..intervals.transforms import ArcsineInterval, LogitInterval
from ..intervals.wald import WaldInterval
from ..intervals.wilson import WilsonInterval
from ..kg.base import TripleStore
from ..kg.datasets import load_dataset, load_syn100m
from ..kg.io import load_kg
from ..sampling.base import SamplingStrategy
from ..sampling.srs import SimpleRandomSampling
from ..sampling.stratified import StratifiedPredicateSampling
from ..sampling.twcs import TwoStageWeightedClusterSampling
from ..sampling.wcs import WeightedClusterSampling
from ..stats.rng import derive_seed
from .spec import CellSpec, CoverageCell, SequentialCoverageCell, StudyCell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import ExperimentSettings

__all__ = [
    "build_kg",
    "build_method",
    "build_strategy",
    "register_cell_runner",
    "runner_for",
    "run_study_cell",
    "run_coverage_cell",
    "run_sequential_coverage_cell",
]

_PRIORS = {"kerman": KERMAN, "jeffreys": JEFFREYS, "uniform": UNIFORM}

#: Per-process KG memo: workers (and serial runs) load each dataset
#: once, not once per cell.  Capped because the SYN 100M backends hold
#: ~100 MB each; eviction is FIFO — grids sweep datasets in order, so
#: recency tracking buys nothing.
_KG_CACHE: dict[tuple[str, int], TripleStore] = {}
_KG_CACHE_LIMIT = 4


def build_kg(spec: str, dataset_seed: int) -> TripleStore:
    """Load the KG described by *spec*, memoised per process.

    Accepted forms: a profiled-dataset name (``"NELL"``),
    ``"SYN100M:<mu>"`` for the synthetic 100M-triple KG at accuracy
    ``mu``, or ``"file:<path>"`` for a labelled-TSV file.
    """
    key = (spec, dataset_seed)
    cached = _KG_CACHE.get(key)
    if cached is not None:
        return cached
    upper = spec.upper()
    if upper.startswith("SYN100M:"):
        kg: TripleStore = load_syn100m(
            accuracy=float(spec.split(":", 1)[1]), seed=dataset_seed
        )
    elif spec.startswith("file:"):
        kg = load_kg(spec.split(":", 1)[1])
    else:
        kg = load_dataset(spec, seed=dataset_seed)
    if len(_KG_CACHE) >= _KG_CACHE_LIMIT:
        _KG_CACHE.pop(next(iter(_KG_CACHE)))
    _KG_CACHE[key] = kg
    return kg


def build_strategy(spec: str) -> SamplingStrategy:
    """Instantiate the sampling design described by *spec*.

    Accepted forms: ``"SRS"``, ``"TWCS:<m>"`` (the stage-2 cap is
    explicit — plan builders resolve the per-dataset default),
    ``"WCS"``, and ``"STRAT"``.
    """
    head, _, arg = spec.partition(":")
    head = head.upper()
    if head == "SRS":
        return SimpleRandomSampling()
    if head == "TWCS":
        if not arg:
            raise ValidationError(
                "TWCS cell specs must carry an explicit stage-2 cap, "
                'e.g. "TWCS:3"'
            )
        return TwoStageWeightedClusterSampling(m=int(arg))
    if head == "WCS":
        return WeightedClusterSampling()
    if head == "STRAT":
        return StratifiedPredicateSampling()
    raise ValidationError(f"unknown sampling strategy spec {spec!r}")


def _prior(name: str) -> BetaPrior:
    prior = _PRIORS.get(name.strip().lower())
    if prior is None:
        known = ", ".join(sorted(_PRIORS))
        raise ValidationError(f"unknown prior {name!r}; expected one of: {known}")
    return prior


def build_method(
    spec: str,
    solver: str = "newton",
    priors: tuple[tuple[float, float, str], ...] | None = None,
) -> IntervalMethod:
    """Instantiate the interval method described by *spec*.

    Accepted forms (case-insensitive): ``Wald``, ``Wilson``, ``AC``,
    ``CP``, ``Arcsine``, ``Logit``, ``ET[:prior]``, ``HPD[:prior]``,
    and ``aHPD``.  *priors* (``(a, b, name)`` triples) equips aHPD with
    informative candidates instead of the uninformative trio.
    """
    head, _, arg = spec.partition(":")
    name = head.strip().lower()
    if name == "wald":
        return WaldInterval()
    if name == "wilson":
        return WilsonInterval()
    if name in ("ac", "agresti-coull"):
        return AgrestiCoullInterval()
    if name in ("cp", "clopper-pearson"):
        return ClopperPearsonInterval()
    if name == "arcsine":
        return ArcsineInterval()
    if name == "logit":
        return LogitInterval()
    if name == "et":
        return ETCredibleInterval(prior=_prior(arg)) if arg else ETCredibleInterval()
    if name == "hpd":
        if arg:
            return HPDCredibleInterval(prior=_prior(arg), solver=solver)
        return HPDCredibleInterval(solver=solver)
    if name == "ahpd":
        if priors is not None:
            candidates = tuple(BetaPrior(a, b, name=label) for a, b, label in priors)
            return AdaptiveHPD(priors=candidates, solver=solver)
        return AdaptiveHPD(solver=solver)
    raise ValidationError(f"unknown interval method spec {spec!r}")


# ----------------------------------------------------------------------
# Runner registry
# ----------------------------------------------------------------------

_RUNNERS: dict[type, Callable[[Any, "ExperimentSettings"], Any]] = {}


def register_cell_runner(cell_type: type):
    """Class decorator-style registration of a cell runner.

    The executor dispatches on the cell's type (walking the MRO, so
    subclasses inherit their parent's runner unless they register their
    own).
    """

    def decorate(fn: Callable[[Any, "ExperimentSettings"], Any]):
        _RUNNERS[cell_type] = fn
        return fn

    return decorate


def runner_for(cell: CellSpec) -> Callable[[Any, "ExperimentSettings"], Any]:
    """The registered runner for *cell*'s type."""
    for klass in type(cell).__mro__:
        runner = _RUNNERS.get(klass)
        if runner is not None:
            return runner
    raise ValidationError(f"no runner registered for cell type {type(cell)!r}")


# ----------------------------------------------------------------------
# Built-in runners
# ----------------------------------------------------------------------


@register_cell_runner(StudyCell)
def run_study_cell(cell: StudyCell, settings: "ExperimentSettings") -> StudyResult:
    """One (dataset, strategy, method) Monte-Carlo study.

    Mirrors the pre-runtime ``run_configuration`` path exactly: the
    evaluator configuration, the per-cell ``derive_seed`` stream, and
    the per-repetition seeding are unchanged, so routed experiments
    reproduce their serial numbers bit for bit.
    """
    kg = build_kg(cell.dataset, settings.dataset_seed)
    config = settings.evaluation_config(alpha=cell.alpha)
    if cell.units_per_iteration is not None:
        config = replace(config, units_per_iteration=cell.units_per_iteration)
    evaluator = KGAccuracyEvaluator(
        kg=kg,
        strategy=build_strategy(cell.strategy),
        method=build_method(cell.method, solver=settings.solver, priors=cell.priors),
        config=config,
    )
    return run_study(
        evaluator,
        repetitions=settings.repetitions,
        seed=derive_seed(settings.seed, *cell.seed_stream),
        label=cell.label,
    )


@register_cell_runner(CoverageCell)
def run_coverage_cell(cell: CoverageCell, settings: "ExperimentSettings") -> CoverageResult:
    """One fixed-n empirical coverage cell."""
    method = build_method(cell.method, solver=settings.solver)
    alpha = settings.alpha if cell.alpha is None else cell.alpha
    repetitions = settings.repetitions if cell.repetitions is None else cell.repetitions
    return empirical_coverage(
        method,
        cell.mu,
        cell.n,
        alpha=alpha,
        repetitions=repetitions,
        rng=cell.seed,
    )


@register_cell_runner(SequentialCoverageCell)
def run_sequential_coverage_cell(
    cell: SequentialCoverageCell, settings: "ExperimentSettings"
) -> SequentialCoverageResult:
    """One stopped-interval coverage cell (full iterative procedure)."""
    method = build_method(cell.method, solver=settings.solver)
    config = settings.evaluation_config(alpha=cell.alpha)
    repetitions = settings.repetitions if cell.repetitions is None else cell.repetitions
    return sequential_coverage(
        method,
        cell.mu,
        config=config,
        repetitions=repetitions,
        seed=cell.seed,
    )
