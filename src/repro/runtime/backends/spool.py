"""Spool-directory backend: a file-based work queue for detached workers.

The scheduler serialises each task into ``<spool>/tasks/<id>.task``;
any number of workers — started with ``python -m repro worker <spool>``
in other terminals, containers, or (on a shared filesystem) other hosts
— *lease* task files by atomically renaming them into
``<spool>/claimed/``, execute them through the same
:func:`~repro.runtime.backends.base.run_task` every backend uses, and
write ``<spool>/results/<id>.result`` (temp file + ``os.replace``, so
readers never see a partial payload).  The scheduler collects results,
consolidates them through the ordinary
:class:`~repro.runtime.store.ResultStore` path, and sweeps its own spool
files on close.

Leasing via ``os.rename`` is atomic on POSIX filesystems: exactly one
claimant wins a task, with no lock files or coordination service —
which is what makes the queue multi-process today and multi-host
tomorrow.  Five robustness rules keep it live:

* **participation** — by default the scheduler is itself a worker:
  whenever no result is ready it leases and executes a task in-process,
  so a run completes (serially) even with zero external workers;
* **poison handling** — a task a claimant cannot deserialise (a cell
  class importable only in the submitting process, or a corrupt file)
  is returned to the queue and remembered in a local skip-set, leaving
  it for a claimant that *can* run it instead of failing the run;
* **lease reclaim** — a task claimed by a worker that died is renamed
  back into the queue once its lease goes stale
  (``reclaim_seconds``), so a crashed worker delays a run instead of
  hanging it;
* **lease heartbeat** — a live claimant re-stamps its claim file
  (periodic ``os.utime`` from a daemon thread) while executing, so a
  genuinely long-running task is never mistaken for an orphaned lease
  and stolen by the reclaim sweep;
* **dead-letter spool** — every requeue stamps a delivery count into
  the task payload; a task that keeps killing its claimants (a poison
  task) is moved past the redelivery cap into ``<spool>/dead/`` with a
  sidecar diagnostics file instead of being redelivered forever, and
  the submitting run receives an error result so its retry/quarantine
  policy takes over.  Requeue a dead task by renaming its ``.task``
  file back into ``tasks/``.

Execution errors are real results: the worker pickles the exception
(or a :class:`SpoolTaskError` carrying the traceback when the exception
itself will not pickle) into the result file, and the scheduler
re-raises it with the worker-side traceback attached — the same
surfacing the process-pool backend gives.

Tasks that will not pickle at all fall back to inline execution in the
scheduler; they could never reach another process under *any* backend,
so the spool degrades to the serial path for exactly those units.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import threading
import time
import traceback
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Union

from ..settings import resolve_spool_dir
from .base import BackendFuture, ExecutionBackend, Task, register_backend, run_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...experiments.config import ExperimentSettings

__all__ = ["SpoolBackend", "SpoolTaskError", "run_worker"]

_TASK_DIR = "tasks"
_CLAIM_DIR = "claimed"
_RESULT_DIR = "results"
_DEAD_DIR = "dead"
_TASK_SUFFIX = ".task"
_RESULT_SUFFIX = ".result"

#: Default redelivery cap: a task requeued (reclaim or poison path)
#: this many times without ever producing a result is moved to
#: ``dead/`` instead of redelivered again.
_DEFAULT_REDELIVER_CAP = 5

#: Default seconds between lease-heartbeat ``os.utime`` stamps while a
#: claimant executes; comfortably inside the default 300s reclaim age.
_DEFAULT_HEARTBEAT = 20.0


class SpoolTaskError(RuntimeError):
    """A spooled task failed with an exception that would not pickle;
    carries the worker-side traceback text instead."""


def _resolve_root(root: Union[str, Path, None]) -> Path:
    return resolve_spool_dir(root)


def _ensure_layout(root: Path) -> None:
    for sub in (_TASK_DIR, _CLAIM_DIR, _RESULT_DIR, _DEAD_DIR):
        (root / sub).mkdir(parents=True, exist_ok=True)


def _atomic_write(path: Path, blob: bytes) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_bytes(blob)
    os.replace(tmp, path)


def _claim(root: Path, task_path: Path) -> Path | None:
    """Lease *task_path* by renaming it into ``claimed/``; ``None`` if lost.

    ``os.rename`` is atomic, so of any number of racing claimants
    exactly one sees the rename succeed — the others get
    ``FileNotFoundError`` and move on.  The lease clock starts *now*:
    rename preserves the file's submit-time mtime, so the claim is
    re-stamped or stale-lease reclaim would measure queue wait instead
    of execution time and steal live leases from busy workers.
    """
    target = root / _CLAIM_DIR / task_path.name
    try:
        os.rename(task_path, target)
    except FileNotFoundError:
        return None
    try:
        os.utime(target)
    except OSError:  # pragma: no cover - claim raced a reclaim/sweep
        pass
    return target


def _unclaim(root: Path, claimed: Path) -> None:
    """Return a leased task to the queue unchanged (interrupt path, or
    a payload this claimant cannot read to stamp)."""
    try:
        os.rename(claimed, root / _TASK_DIR / claimed.name)
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        pass


def _bury(
    root: Path,
    claimed: Path,
    payload: dict,
    reason: str,
    log: Callable[[str], None] | None = None,
) -> None:
    """Move a leased task into ``dead/`` with a diagnostics sidecar.

    The submitting run still gets an answer: a :class:`SpoolTaskError`
    result is written so its future completes with an error and the
    executor's retry/quarantine policy decides what happens next,
    instead of the run hanging on a task nobody will ever redeliver.
    """
    task_id = claimed.name[: -len(_TASK_SUFFIX)]
    dead = root / _DEAD_DIR
    dead.mkdir(parents=True, exist_ok=True)
    try:
        os.rename(claimed, dead / claimed.name)
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        return
    label = str(getattr(payload.get("task"), "label", task_id))
    diagnostics = {
        "id": task_id,
        "label": label,
        "deliveries": payload.get("deliveries"),
        "reason": reason,
        "buried_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "requeue": (
            f"rename {_DEAD_DIR}/{claimed.name} back into {_TASK_DIR}/ "
            "to redeliver"
        ),
    }
    _atomic_write(
        dead / f"{task_id}.json",
        json.dumps(diagnostics, indent=2, sort_keys=True).encode(),
    )
    message = (
        f"task {task_id} ({label}) moved to {_DEAD_DIR}/ after "
        f"{payload.get('deliveries')} deliveries: {reason}"
    )
    # ``buried`` marks the error result as a dead-letter answer: the
    # collecting run's future emits a ``dead_letter`` telemetry event
    # from it, so the journal records the burial even when it happened
    # in a detached worker on another host.
    _write_result(
        root,
        task_id,
        {
            "id": task_id,
            "error": SpoolTaskError(message),
            "traceback": None,
            "buried": True,
            "label": label,
            "deliveries": payload.get("deliveries"),
            "reason": reason,
        },
    )
    if log is not None:
        log(message)


def _requeue(
    root: Path,
    claimed: Path,
    redeliver_cap: int | None,
    reason: str,
    log: Callable[[str], None] | None = None,
) -> None:
    """Return a leased task to the queue, stamping its delivery count.

    Every requeue (stale-lease reclaim or poison skip) increments the
    ``deliveries`` counter *inside* the task payload, so the count
    survives any claimant — it travels with the file.  A task past
    *redeliver_cap* deliveries is buried in ``dead/`` instead of
    redelivered.  A payload this claimant cannot deserialise is renamed
    back unchanged: the next claimant that can read it keeps counting.
    """
    try:
        payload = pickle.loads(claimed.read_bytes())
        if not isinstance(payload, dict):
            raise ValueError("not a spool task payload")
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        raise
    except Exception:
        _unclaim(root, claimed)
        return
    payload["deliveries"] = int(payload.get("deliveries", 0)) + 1
    if redeliver_cap is not None and payload["deliveries"] > redeliver_cap:
        _bury(
            root,
            claimed,
            payload,
            f"{reason}; redelivery cap ({redeliver_cap}) exhausted",
            log=log,
        )
        return
    _atomic_write(
        root / _TASK_DIR / claimed.name,
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
    )
    claimed.unlink(missing_ok=True)


def _write_result(root: Path, task_id: str, payload: dict) -> None:
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        # The computed value itself would not pickle; surface that as
        # the task's error rather than wedging the queue.
        blob = pickle.dumps(
            {
                "id": task_id,
                "error": SpoolTaskError(
                    f"task {task_id} produced an unpicklable result"
                ),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    _atomic_write(root / _RESULT_DIR / f"{task_id}{_RESULT_SUFFIX}", blob)


def _execute_payload(task_id: str, payload: dict) -> dict:
    try:
        value, seconds = run_task(payload["task"], payload["settings"])
    except Exception as exc:
        text = traceback.format_exc()
        try:
            pickle.dumps(exc)
            error: Exception = exc
        except Exception:
            error = SpoolTaskError(f"task {task_id} failed:\n{text}")
        return {"id": task_id, "error": error, "traceback": text}
    return {"id": task_id, "value": value, "seconds": seconds, "error": None}


def _heartbeat(
    claimed: Path, interval: float
) -> tuple[threading.Event, threading.Thread, dict]:
    """Start a daemon thread re-stamping *claimed* every *interval* s.

    Keeps the lease visibly alive while its task executes, so a
    long-running task is never mistaken for an orphaned lease by the
    stale-lease reclaim sweep.  Stops at the returned event, or silently
    when the claim file disappears (the lease was taken away anyway).
    The returned counter dict tallies successful stamps — recorded in
    the task's worker-side span as evidence the lease stayed live.
    """
    stop = threading.Event()
    counter = {"beats": 0}

    def _beat() -> None:
        while not stop.wait(interval):
            try:
                os.utime(claimed)
            except OSError:
                return
            counter["beats"] += 1

    thread = threading.Thread(
        target=_beat, name=f"spool-heartbeat-{claimed.stem}", daemon=True
    )
    thread.start()
    return stop, thread, counter


def _drain_one(
    root: Path,
    poisoned: set[str],
    log: Callable[[str], None] | None = None,
    heartbeat_seconds: float | None = _DEFAULT_HEARTBEAT,
    redeliver_cap: int | None = _DEFAULT_REDELIVER_CAP,
) -> str | None:
    """Lease, execute, and answer one spooled task; its id, or ``None``.

    Shared by detached workers and the participating scheduler, so both
    kinds of claimant behave identically.  Tasks in *poisoned* — ids
    this claimant already failed to deserialise — are skipped; a newly
    undeserialisable task is returned to the queue and poisoned locally,
    leaving it for a claimant that has its cell types importable.  While
    a task executes its claim file is heartbeat-stamped every
    *heartbeat_seconds* so the lease never looks stale.
    """
    task_root = root / _TASK_DIR
    try:
        entries = sorted(task_root.glob(f"*{_TASK_SUFFIX}"))
    except OSError:  # pragma: no cover - spool removed underfoot
        return None
    for task_path in entries:
        task_id = task_path.name[: -len(_TASK_SUFFIX)]
        if task_id in poisoned:
            continue
        claimed = _claim(root, task_path)
        if claimed is None:
            continue  # another claimant won the rename
        try:
            with claimed.open("rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict) or "task" not in payload:
                raise ValueError("not a spool task payload")
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            _unclaim(root, claimed)
            raise
        except Exception:
            # Undeserialisable OR deserialised into something that is
            # not a task payload: either way this claimant cannot run
            # it — requeue (stamping the delivery count where the
            # payload allows) and poison locally, never crash the loop.
            poisoned.add(task_id)
            _requeue(root, claimed, redeliver_cap, "cannot deserialise", log=log)
            if log is not None:
                log(f"skipping task {task_id}: cannot deserialise here")
            continue
        claimed_at = time.time()
        beat = None
        if heartbeat_seconds is not None and heartbeat_seconds > 0:
            beat = _heartbeat(claimed, heartbeat_seconds)
        started = time.perf_counter()
        try:
            result = _execute_payload(task_id, payload)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            _unclaim(root, claimed)
            raise
        finally:
            if beat is not None:
                beat[0].set()
        label = str(getattr(payload.get("task"), "label", task_id))
        submitted_at = payload.get("submitted_at")
        # The worker-side span travels home inside the result payload,
        # so the scheduler's journal covers execution on other
        # processes and (on a shared filesystem) other hosts.  Claim
        # latency uses wall clocks from both sides — subject to clock
        # skew across hosts, exact on one.
        result["span"] = {
            "label": label,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "claim_latency": (
                round(max(0.0, claimed_at - submitted_at), 6)
                if isinstance(submitted_at, (int, float))
                else None
            ),
            "execute_seconds": round(time.perf_counter() - started, 6),
            "heartbeats": beat[2]["beats"] if beat is not None else 0,
            "deliveries": int(payload.get("deliveries", 0)),
        }
        if not claimed.exists():
            # The lease was taken away mid-execution — a stale-lease
            # reclaim (this claimant looked dead) or the owning run's
            # close-time sweep.  Whoever holds the task now owns the
            # answer; writing ours would clobber theirs or strand an
            # orphan result file in a shared spool directory.
            if log is not None:
                log(f"dropping {task_id}: lease was reclaimed during execution")
            continue
        _write_result(root, task_id, result)
        claimed.unlink(missing_ok=True)
        if log is not None:
            deliveries = result["span"]["deliveries"]
            if result.get("error") is None:
                log(
                    f"executed {task_id} ({label}) in "
                    f"{result['seconds']:.2f}s (deliveries {deliveries})"
                )
            else:
                log(
                    f"task {task_id} ({label}) failed after "
                    f"{deliveries} deliveries: {result['error']!r}"
                )
        return task_id
    return None


class _SpoolFuture(BackendFuture):
    """Completion handle backed by ``results/<id>.result``."""

    def __init__(self, backend: "SpoolBackend", task_id: str):
        self._backend = backend
        self.task_id = task_id
        self._payload: dict | None = None

    def _complete(self, payload: dict) -> None:
        self._payload = payload

    def done(self) -> bool:
        if self._payload is not None:
            return True
        path = (
            self._backend.root / _RESULT_DIR / f"{self.task_id}{_RESULT_SUFFIX}"
        )
        try:
            with path.open("rb") as handle:
                self._payload = pickle.load(handle)
        except FileNotFoundError:
            return False
        path.unlink(missing_ok=True)
        self._backend._note_payload(self.task_id, self._payload)
        return True

    def result(self) -> tuple[Any, float]:
        if self._payload is None:
            raise RuntimeError(
                "result() before done(): the spool future has not "
                "collected a result file yet"
            )
        error = self._payload.get("error")
        if error is not None:
            text = self._payload.get("traceback")
            if text:
                # Carry the worker-side traceback with the exception so
                # failure records (repro.runtime.faults) can show where
                # the task actually died, not where it was re-raised.
                error.__repro_traceback__ = text
            raise error
        return self._payload["value"], self._payload["seconds"]


@register_backend("spool")
def _make_spool(arg: str) -> "SpoolBackend":
    return SpoolBackend(arg or None)


class SpoolBackend(ExecutionBackend):
    """Dispatches tasks through a spool directory of leased files.

    Parameters
    ----------
    root:
        Spool directory; ``None`` reads ``REPRO_SPOOL_DIR`` at open
        time.  Created (with its ``tasks/``, ``claimed/``,
        ``results/`` subdirectories) on first use.
    poll_interval:
        Seconds between result scans while waiting.
    participate:
        Whether the scheduler leases and executes tasks itself whenever
        none of its results are ready (default ``True``).  Guarantees a
        run completes with zero workers attached; disable only to force
        every task through external workers (tests do).
    reclaim_seconds:
        Age after which a *claimed* task belonging to this run is
        presumed orphaned by a dead worker and returned to the queue;
        ``None`` disables reclaiming.  Live claimants heartbeat their
        claim files, so only genuinely dead workers go stale.
    redeliver_cap:
        Deliveries a task may consume before it is buried in ``dead/``
        instead of requeued again (``None`` disables the cap).
    heartbeat_seconds:
        Interval at which a participating scheduler re-stamps the claim
        of the task it is executing; ``None`` disables the heartbeat.
    """

    name = "spool"

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        poll_interval: float = 0.02,
        participate: bool = True,
        reclaim_seconds: float | None = 300.0,
        redeliver_cap: int | None = _DEFAULT_REDELIVER_CAP,
        heartbeat_seconds: float | None = _DEFAULT_HEARTBEAT,
    ):
        self._root_spec = root
        self.poll_interval = float(poll_interval)
        self.participate = bool(participate)
        self.reclaim_seconds = reclaim_seconds
        self.redeliver_cap = redeliver_cap
        self.heartbeat_seconds = heartbeat_seconds
        self.root: Path | None = None
        self._poisoned: set[str] = set()
        self._submitted: list[str] = []

    def open(self, workers: int, tasks: int, settings, telemetry=None) -> None:
        super().open(workers, tasks, settings, telemetry)
        self.root = _resolve_root(self._root_spec)
        _ensure_layout(self.root)
        self._run_id = uuid.uuid4().hex[:12]
        self._seq = 0
        self._poisoned = set()
        self._submitted = []

    def close(self) -> None:
        # Sweep this run's leftovers — queued tasks never collected
        # because an error aborted the drain, leases abandoned in
        # claimed/ (their holder, seeing its lease file gone, drops the
        # result instead of writing an orphan), and results of
        # reclaimed duplicates — so an aborted run cannot poison the
        # next one, strand a lease, or busy a worker with work nobody
        # will collect.
        if self.root is None:
            super().close()
            return
        for task_id in self._submitted:
            for directory, suffix in (
                (_TASK_DIR, _TASK_SUFFIX),
                (_CLAIM_DIR, _TASK_SUFFIX),
                (_RESULT_DIR, _RESULT_SUFFIX),
            ):
                (self.root / directory / f"{task_id}{suffix}").unlink(
                    missing_ok=True
                )
        self._submitted = []
        super().close()

    def submit(self, task: Task, settings: "ExperimentSettings") -> BackendFuture:
        task_id = f"{self._run_id}-{self._seq:06d}"
        self._seq += 1
        future = _SpoolFuture(self, task_id)
        try:
            # ``submitted_at`` is stamped unconditionally (trace on or
            # off) so telemetry never changes what travels through the
            # queue; claimants use it for span claim latency.
            blob = pickle.dumps(
                {
                    "id": task_id,
                    "task": task,
                    "settings": settings,
                    "deliveries": 0,
                    "submitted_at": time.time(),
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            # A task that cannot be serialised can never leave this
            # process under any backend; run it inline instead.
            future._complete(_execute_payload(task_id, {"task": task, "settings": settings}))
            return future
        _atomic_write(self.root / _TASK_DIR / f"{task_id}{_TASK_SUFFIX}", blob)
        self._submitted.append(task_id)
        return future

    def _note_payload(self, task_id: str, payload: dict) -> None:
        """Surface a collected result's embedded observability.

        Worker-side spans and dead-letter markers travel inside result
        payloads (the only channel back from detached workers); this
        re-emits them as telemetry events in the scheduler process when
        a bus is attached.  Pure observation — collection behaves
        identically without one.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return
        span = payload.get("span")
        if span:
            telemetry.emit("worker_span", task_id=task_id, **span)
        if payload.get("buried"):
            telemetry.emit(
                "dead_letter",
                task_id=task_id,
                label=payload.get("label"),
                deliveries=payload.get("deliveries"),
                reason=payload.get("reason"),
            )

    def wait_any(self, outstanding):
        while True:
            ready = {future for future in outstanding if future.done()}
            if ready:
                return ready, outstanding - ready
            if self.participate and _drain_one(
                self.root,
                self._poisoned,
                heartbeat_seconds=self.heartbeat_seconds,
                redeliver_cap=self.redeliver_cap,
            ):
                continue
            self._reclaim_stale(outstanding)
            time.sleep(self.poll_interval)

    def _reclaim_stale(self, outstanding) -> None:
        """Requeue this run's orphaned leases (or bury repeat offenders).

        A lease only goes stale when its claimant stopped heartbeating —
        i.e. the worker died.  The requeue stamps the task's delivery
        count, so a task that keeps killing workers ends up in ``dead/``
        with an error result instead of circulating forever.
        """
        if self.reclaim_seconds is None:
            return
        cutoff = time.time() - self.reclaim_seconds
        for future in outstanding:
            claimed = (
                self.root / _CLAIM_DIR / f"{future.task_id}{_TASK_SUFFIX}"
            )
            try:
                stale = claimed.stat().st_mtime < cutoff
            except OSError:
                continue
            if stale:
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "lease_reclaim",
                        task_id=future.task_id,
                        stale_seconds=round(self.reclaim_seconds, 6),
                    )
                _requeue(
                    self.root,
                    claimed,
                    self.redeliver_cap,
                    "lease went stale (claimant presumed dead)",
                )

    def __repr__(self) -> str:
        return (
            f"SpoolBackend(root={str(self._root_spec)!r}, "
            f"participate={self.participate})"
        )


def run_worker(
    root: Union[str, Path, None] = None,
    poll_interval: float = 0.1,
    max_tasks: int | None = None,
    idle_timeout: float | None = None,
    log: Callable[[str], None] | None = None,
    heartbeat_seconds: float | None = _DEFAULT_HEARTBEAT,
    redeliver_cap: int | None = _DEFAULT_REDELIVER_CAP,
) -> int:
    """Serve a spool directory: lease, execute, and answer tasks.

    The loop behind ``python -m repro worker <spool-dir>``.  Runs until
    stopped (Ctrl-C), until *max_tasks* tasks have executed, or — when
    *idle_timeout* is set — once the queue has stayed empty for that
    many seconds.  Returns the number of tasks executed.

    Workers are stateless with respect to the scheduler: everything a
    task needs travels inside the task file, results travel back as
    files, and per-process memos (the KG cache, snapshot streams) warm
    up across tasks exactly as pool workers' do.
    """
    root = _resolve_root(root)
    _ensure_layout(root)
    executed = 0
    poisoned: set[str] = set()
    last_activity = time.monotonic()
    while max_tasks is None or executed < max_tasks:
        if (
            _drain_one(
                root,
                poisoned,
                log=log,
                heartbeat_seconds=heartbeat_seconds,
                redeliver_cap=redeliver_cap,
            )
            is not None
        ):
            executed += 1
            last_activity = time.monotonic()
            continue
        if (
            idle_timeout is not None
            and time.monotonic() - last_activity >= idle_timeout
        ):
            break
        time.sleep(poll_interval)
    return executed
