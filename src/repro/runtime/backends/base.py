"""Execution backends: where a unit of work physically runs.

The scheduler core (:mod:`repro.runtime.scheduler`) decides *what* runs
next, which cache entries to reuse, and how shard partials merge back
into cell results.  An :class:`ExecutionBackend` decides *where* a unit
of work — a whole :class:`~repro.runtime.spec.CellSpec` or one
:class:`~repro.runtime.spec.CellShard` — physically executes: in the
scheduler's process (:class:`~repro.runtime.backends.serial.
SerialBackend`), on a local process pool (:class:`~repro.runtime.
backends.pool.ProcessPoolBackend`), or through a file-based work queue
served by detached workers (:class:`~repro.runtime.backends.spool.
SpoolBackend`).

The contract is deliberately narrow.  A backend receives fully
self-contained tasks (cells and shards are frozen dataclasses of
primitives; runners rebuild everything from spec), returns future-like
handles, and surfaces completions through :meth:`ExecutionBackend.
wait_any`.  Everything that makes results *correct* — plan-time
seeding, globally-indexed shard windows, lossless reducers — lives
outside the backend, which is why every backend is bit-identical to
every other and why cache tokens never depend on the backend choice: a
run started on one backend resumes on any other at the finished-shard
boundary.

Backends register under a spec-string name (``"serial"``,
``"process"``, ``"spool"``/``"spool:<dir>"``) resolved by
:func:`make_backend`; ``REPRO_BACKEND`` supplies the process-wide
default (see :func:`resolve_backend_spec`).
"""

from __future__ import annotations

import abc
import inspect
import time
from typing import TYPE_CHECKING, Any, Callable, Union

from ...exceptions import ValidationError
from ...intervals.base import active_solve_table, use_solve_table
from ...intervals.table import default_table
from ..cells import runner_for, shard_runner_for
from ..settings import resolve_backend
from ..spec import CellShard, CellSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...experiments.config import ExperimentSettings

__all__ = [
    "BackendFuture",
    "ExecutionBackend",
    "Task",
    "close_backend",
    "make_backend",
    "open_backend",
    "register_backend",
    "resolve_backend_spec",
    "run_cell",
    "run_shard",
    "run_task",
]

#: One schedulable unit of work: a whole cell or one repetition shard.
Task = Union[CellSpec, CellShard]


def run_cell(cell: CellSpec, settings: "ExperimentSettings") -> tuple[Any, float]:
    """Execute one cell; module-level so it pickles into workers."""
    start = time.perf_counter()
    value = runner_for(cell)(cell, settings)
    return value, time.perf_counter() - start


def run_shard(shard: CellShard, settings: "ExperimentSettings") -> tuple[Any, float]:
    """Execute one repetition shard; module-level so it pickles."""
    start = time.perf_counter()
    value = shard_runner_for(shard.cell)(
        shard.cell, settings, shard.rep_start, shard.rep_stop
    )
    return value, time.perf_counter() - start


def run_task(task: Task, settings: "ExperimentSettings") -> tuple[Any, float]:
    """Execute one unit of work, cell or shard; returns (value, seconds).

    The single entry point every backend dispatches through, so a task
    produces the same value no matter which process — scheduler, pool
    worker, or detached spool worker — runs it.

    Spawned pool workers and detached spool workers carry no ambient
    run context, so when no solve table is installed the
    environment-resolved shared table (``REPRO_SOLVE_TABLE`` /
    ``REPRO_CACHE_DIR``) is installed for the task — the worker-side
    mirror of the executor's run-scoped install.  Tables are pure
    memoisation, so this changes worker wall-clock, never results.
    The solver kernel needs no counterpart here:
    :func:`repro.intervals.kernels.active_kernel` already falls back to
    the environment when no kernel is installed.
    """
    if active_solve_table() is None:
        table = default_table()
        if table is not None:
            with use_solve_table(table):
                return _run_task_inner(task, settings)
    return _run_task_inner(task, settings)


def _run_task_inner(task: Task, settings: "ExperimentSettings") -> tuple[Any, float]:
    if isinstance(task, CellShard):
        return run_shard(task, settings)
    return run_cell(task, settings)


class BackendFuture(abc.ABC):
    """Future-like handle for one submitted task."""

    @abc.abstractmethod
    def done(self) -> bool:
        """Whether a result (or error) is available without blocking."""

    @abc.abstractmethod
    def result(self) -> tuple[Any, float]:
        """The task's ``(value, seconds)``; raises its error if it failed."""


class ExecutionBackend(abc.ABC):
    """Where tasks run.  Lifecycle: ``open`` → ``submit``* → drain → ``close``.

    ``open``/``close`` bracket one plan execution: the scheduler opens
    the backend with the run's worker count and task total (sizing
    hints), submits every runnable unit, drains completions with
    :meth:`wait_any`, and closes the backend in a ``finally`` so pools
    shut down and queues are swept even when a task raises.
    """

    #: Spec-string name, recorded on the run's :class:`PlanOutcome`.
    name: str = "?"

    #: The current run's :class:`~repro.runtime.telemetry.RunTelemetry`
    #: bus — *context-scoped*: it arrives as the ``telemetry`` keyword
    #: of :meth:`open` (one run's bus, never process state) and is
    #: cleared by :meth:`close`, so ``None`` between runs.  Backends
    #: with their own observability (chaos injections, spool worker
    #: spans, lease reclaims) emit through it when present — strictly
    #: optional, and strictly non-semantic: a backend must behave
    #: identically with telemetry attached or not.  Pre-telemetry
    #: backends whose ``open`` lacks the keyword still work: the
    #: executor falls back to assigning this slot (see
    #: :func:`open_backend`).
    telemetry = None

    def open(
        self,
        workers: int,
        tasks: int,
        settings: "ExperimentSettings",
        telemetry=None,
    ) -> None:
        """Prepare for one run of up to *tasks* units (lifecycle hook).

        *telemetry* is the run's event bus (or ``None``); the base hook
        binds it for the duration of the run.  Overrides should call
        ``super().open(workers, tasks, settings, telemetry)`` first.
        Passing ``None`` leaves an already-attached bus alone, so code
        written against the legacy slot protocol (assign
        ``backend.telemetry``, then ``open()``) still observes its bus
        during the run; :meth:`close` detaches either way.
        """
        if telemetry is not None:
            self.telemetry = telemetry

    def close(self) -> None:
        """Release run-scoped resources (lifecycle hook).

        The base hook detaches the run's telemetry bus; overrides
        should end with ``super().close()``.
        """
        self.telemetry = None

    @abc.abstractmethod
    def submit(self, task: Task, settings: "ExperimentSettings") -> BackendFuture:
        """Enqueue *task*; returns its future-like handle."""

    def wait_any(
        self, outstanding: set[BackendFuture]
    ) -> tuple[set[BackendFuture], set[BackendFuture]]:
        """Block until ≥1 of *outstanding* completes; returns (ready, rest).

        The default implementation polls :meth:`BackendFuture.done`
        with a short sleep — enough for file-based backends; in-process
        backends override it with a real wait primitive.
        """
        while True:
            ready = {future for future in outstanding if future.done()}
            if ready:
                return ready, outstanding - ready
            time.sleep(0.005)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def open_backend(
    backend: ExecutionBackend,
    *,
    workers: int,
    tasks: int,
    settings: "ExperimentSettings",
    telemetry=None,
) -> None:
    """Open *backend* with the run's context-scoped telemetry bus.

    The bus travels as the ``telemetry`` keyword of
    :meth:`ExecutionBackend.open` — per-run state, so two concurrently
    executing contexts in one process never trample each other's
    observability.  Custom backends written against the pre-telemetry
    protocol (``open(workers, tasks, settings)``) are still honoured:
    when the signature doesn't accept the keyword, the bus is assigned
    to the legacy ``telemetry`` slot around the call instead.
    """
    try:
        parameters = inspect.signature(backend.open).parameters
        accepts = "telemetry" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
    except (TypeError, ValueError):  # uninspectable callable: assume legacy
        accepts = False
    if accepts:
        backend.open(
            workers=workers, tasks=tasks, settings=settings, telemetry=telemetry
        )
    else:
        backend.telemetry = telemetry
        backend.open(workers=workers, tasks=tasks, settings=settings)


def close_backend(backend: ExecutionBackend) -> None:
    """Close *backend* and detach any telemetry bus it still holds.

    The trailing slot-clear is what keeps legacy backends (attached via
    the slot by :func:`open_backend`) from leaking one run's bus into
    the next; for context-scoped backends it is a no-op.
    """
    try:
        backend.close()
    finally:
        backend.telemetry = None


# ----------------------------------------------------------------------
# Registry and spec resolution
# ----------------------------------------------------------------------

_BACKENDS: dict[str, Callable[[str], ExecutionBackend]] = {}


def register_backend(name: str):
    """Register a backend factory under spec-string *name*.

    The factory receives the spec's argument part (the text after the
    first ``:``, empty when absent), so ``"spool:/var/q"`` reaches the
    spool factory as ``"/var/q"``.
    """

    def decorate(factory: Callable[[str], ExecutionBackend]):
        _BACKENDS[name.strip().lower()] = factory
        return factory

    return decorate


def _known() -> str:
    return ", ".join(sorted(_BACKENDS))


def make_backend(spec: str) -> ExecutionBackend:
    """Instantiate the backend described by *spec* (``name[:arg]``)."""
    head, _, arg = str(spec).partition(":")
    factory = _BACKENDS.get(head.strip().lower())
    if factory is None:
        raise ValidationError(
            f"unknown execution backend {spec!r}; expected one of: {_known()}"
        )
    return factory(arg)


def resolve_backend_spec(
    backend: Union[str, ExecutionBackend, None],
) -> Union[str, ExecutionBackend, None]:
    """Explicit backend, or the ``REPRO_BACKEND`` default (auto).

    Returns ``None`` for the automatic policy (serial at ``workers=1``,
    process pool otherwise), a validated spec string, or a ready
    instance passed through untouched.  The environment fallback comes
    from :mod:`repro.runtime.settings`; validation against the registry
    happens here — at context construction — so a typo in
    ``REPRO_BACKEND`` fails fast instead of at the first plan
    execution.
    """
    backend = resolve_backend(backend)
    if backend is None:
        return None
    if isinstance(backend, ExecutionBackend):
        return backend
    spec = str(backend)
    head = spec.partition(":")[0].strip().lower()
    if head not in _BACKENDS:
        raise ValidationError(
            f"unknown execution backend {spec!r}; expected one of: {_known()}"
        )
    return spec
