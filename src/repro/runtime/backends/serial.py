"""In-process serial backend: the ``workers=1`` path.

Execution is *lazy*: :meth:`SerialBackend.submit` only enqueues, and
each :meth:`wait_any` call runs exactly one task — the next in submit
(= plan) order — before handing it back.  That keeps the scheduler's
persistence incremental, exactly like the pre-backend serial loop: every
completed cell/shard hits the :class:`~repro.runtime.store.ResultStore`
before the next one starts, so an interrupted run loses at most the unit
in flight.

A task that raises completes its future with the error, surfaced by
:meth:`_SerialFuture.result` exactly like the pool and spool backends
surface theirs — which is what lets the executor's retry/quarantine
policy treat all backends uniformly.  ``KeyboardInterrupt`` (and other
``BaseException``) still propagates immediately: there is no pool to
unwind and nothing to retry.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from .base import BackendFuture, ExecutionBackend, Task, register_backend, run_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...experiments.config import ExperimentSettings

__all__ = ["SerialBackend"]


class _SerialFuture(BackendFuture):
    """A lazily-executed task; ``_run`` is driven by ``wait_any``."""

    def __init__(self, task: Task, settings: "ExperimentSettings"):
        self._task = task
        self._settings = settings
        self._value: tuple[Any, float] | None = None
        self._error: Exception | None = None

    def _run(self) -> None:
        try:
            self._value = run_task(self._task, self._settings)
        except Exception as exc:
            self._error = exc

    def done(self) -> bool:
        return self._value is not None or self._error is not None

    def result(self) -> tuple[Any, float]:
        if self._error is not None:
            raise self._error
        return self._value


@register_backend("serial")
def _make_serial(arg: str) -> "SerialBackend":
    return SerialBackend()


class SerialBackend(ExecutionBackend):
    """Runs every task in the scheduler's process, one at a time."""

    name = "serial"

    def __init__(self) -> None:
        self._queue: deque[_SerialFuture] = deque()

    def open(self, workers, tasks, settings, telemetry=None) -> None:
        super().open(workers, tasks, settings, telemetry)
        self._queue.clear()

    def close(self) -> None:
        self._queue.clear()
        super().close()

    def submit(self, task: Task, settings: "ExperimentSettings") -> BackendFuture:
        future = _SerialFuture(task, settings)
        self._queue.append(future)
        return future

    def wait_any(self, outstanding):
        future = self._queue.popleft()
        future._run()
        return {future}, outstanding - {future}
