"""Pluggable execution backends for the study-execution runtime.

``repro.runtime`` separates *scheduling* (what runs next, how shard
results merge, what the cache can serve — :mod:`repro.runtime.
scheduler`) from *dispatch* (where a unit of work physically executes —
this package).  Three backends ship:

* :class:`SerialBackend` — in-process, one task at a time; the
  ``workers=1`` path.
* :class:`ProcessPoolBackend` — a local ``ProcessPoolExecutor``; the
  classic ``--workers N`` fan-out.
* :class:`SpoolBackend` — a file-based work queue under a spool
  directory, served by detached ``python -m repro worker`` processes;
  multi-process today, multi-host on any shared filesystem.
* :class:`ChaosBackend` — a fault-injection wrapper around any of the
  above (``chaos:<inner-spec>``), driving the retry/quarantine
  machinery with a deterministic, seeded fault schedule.

Selection flows through ``--backend`` / ``REPRO_BACKEND`` (specs:
``serial``, ``process[:n]``, ``spool[:dir]``, ``chaos[:inner]``); unset
means automatic (serial at ``workers=1``, process pool otherwise).
Whatever the backend, results are bit-identical and cache tokens are
unchanged, so a run interrupted on one backend resumes on another.
"""

from .base import (
    BackendFuture,
    ExecutionBackend,
    Task,
    make_backend,
    register_backend,
    resolve_backend_spec,
    run_cell,
    run_shard,
    run_task,
)
from .chaos import ChaosBackend, ChaosFault
from .pool import ProcessPoolBackend
from .serial import SerialBackend
from .spool import SpoolBackend, SpoolTaskError, run_worker

__all__ = [
    "BackendFuture",
    "ChaosBackend",
    "ChaosFault",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SpoolBackend",
    "SpoolTaskError",
    "Task",
    "make_backend",
    "register_backend",
    "resolve_backend_spec",
    "run_cell",
    "run_shard",
    "run_task",
    "run_worker",
]
