"""Chaos backend: deterministic fault injection around any real backend.

``chaos:<inner-spec>`` wraps another backend (``chaos:serial``,
``chaos:process:4``, ``chaos:spool:/tmp/q`` — the inner spec is
everything after the first colon) and injects faults into a
reproducible subset of the units flowing through it:

* **raise-before** — the unit fails without ever reaching the inner
  backend (a submit-side crash);
* **raise-after** — the unit executes on the inner backend, then its
  result is replaced by an error (a crash between compute and
  delivery);
* **drop** — the computed result is discarded once, as if the
  transport lost it;
* **delay** — the unit is held for a deterministic few milliseconds
  before clean submission (no fault, just schedule perturbation).

The schedule is a pure function of ``(seed, unit token)`` —
``REPRO_CHAOS_SEED`` / ``REPRO_CHAOS_RATE`` — so a chaotic run is
*exactly* repeatable: same seed, same faults, same retry schedule.
Each unit is faulted at most once per run (its first submission), so
any retry policy with at least one retry is guaranteed to converge.

This is the executable proof of the runtime's central claim: because
every cell is seeded at plan-build time and retries recompute
byte-identical numbers, a run under injected faults plus retries must
produce bit-identical results and cache state to a fault-free serial
run.  The hypothesis suite drives exactly that property.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Union

from ...exceptions import ReproError
from ..faults import _unit_fraction, unit_token
from ..settings import resolve_chaos_rate, resolve_chaos_seed
from .base import (
    BackendFuture,
    ExecutionBackend,
    Task,
    close_backend,
    make_backend,
    open_backend,
    register_backend,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...experiments.config import ExperimentSettings

__all__ = ["ChaosBackend", "ChaosFault"]

#: Fault kinds, in hash-bucket order (index chosen by the unit's hash).
_FAULT_KINDS = ("before", "after", "drop", "delay")

#: Longest injected delay, seconds (the "delay" fault kind).
_MAX_DELAY = 0.05


class ChaosFault(ReproError):
    """An injected fault from the chaos backend — always transient:
    the same unit is never faulted twice in one run."""


class _FailedFuture(BackendFuture):
    """Already-failed future: the raise-before fault."""

    def __init__(self, error: Exception):
        self._error = error

    def done(self) -> bool:
        return True

    def result(self) -> tuple[Any, float]:
        raise self._error


class _ChaosFuture(BackendFuture):
    """Wraps an inner future; optionally swallows its result once."""

    def __init__(self, inner: BackendFuture, fault: Exception | None = None):
        self._inner = inner
        self._fault = fault

    def done(self) -> bool:
        return self._inner.done()

    def result(self) -> tuple[Any, float]:
        value = self._inner.result()
        if self._fault is not None:
            # The unit really executed; chaos loses the answer in
            # transit (raise-after / drop).  Retries recompute it.
            raise self._fault
        return value


@register_backend("chaos")
def _make_chaos(arg: str) -> "ChaosBackend":
    return ChaosBackend(arg or None)


class ChaosBackend(ExecutionBackend):
    """Injects deterministic faults around an inner backend.

    Parameters
    ----------
    inner:
        Inner backend spec (``"serial"``, ``"process:4"``,
        ``"spool:/dir"``) or a constructed :class:`ExecutionBackend`;
        ``None`` wraps a serial backend.
    seed:
        Fault-schedule seed; ``None`` reads ``REPRO_CHAOS_SEED``
        (default 0).  Same seed ⇒ identical fault schedule.
    rate:
        Fraction of units faulted, in ``[0, 1]``; ``None`` reads
        ``REPRO_CHAOS_RATE`` (default 0.25).
    """

    def __init__(
        self,
        inner: Union[str, ExecutionBackend, None] = None,
        seed: int | None = None,
        rate: float | None = None,
    ):
        if isinstance(inner, ExecutionBackend):
            self.inner = inner
        else:
            self.inner = make_backend(inner or "serial")
        self.seed = resolve_chaos_seed(seed)
        self.rate = resolve_chaos_rate(rate)
        self.name = f"chaos:{self.inner.name}"
        self._injected: set[str] = set()

    def open(self, workers: int, tasks: int, settings, telemetry=None) -> None:
        super().open(workers, tasks, settings, telemetry)
        self._injected = set()
        # Forward the run's telemetry bus so the inner backend's own
        # events (spool worker spans, lease reclaims) still surface
        # when wrapped in chaos.
        open_backend(
            self.inner,
            workers=workers,
            tasks=tasks,
            settings=settings,
            telemetry=telemetry,
        )

    def close(self) -> None:
        close_backend(self.inner)
        super().close()

    def _fault_for(self, token: str) -> str | None:
        """The fault kind scheduled for *token*, or ``None`` for a
        clean pass — a pure function of (seed, token)."""
        if _unit_fraction(f"chaos:{self.seed}:{token}:gate") >= self.rate:
            return None
        bucket = _unit_fraction(f"chaos:{self.seed}:{token}:kind")
        return _FAULT_KINDS[int(bucket * len(_FAULT_KINDS)) % len(_FAULT_KINDS)]

    def submit(self, task: Task, settings: "ExperimentSettings") -> BackendFuture:
        token = unit_token(task, settings)
        kind = None
        if token not in self._injected:
            kind = self._fault_for(token)
        if kind is not None:
            # At most one fault per unit per run, so retries converge.
            self._injected.add(token)
        label = getattr(task, "label", repr(task))
        if kind is not None and self.telemetry is not None:
            self.telemetry.emit(
                "chaos_inject", kind=kind, token=token, label=str(label)
            )
        if kind == "before":
            return _FailedFuture(
                ChaosFault(f"injected fault before executing {label}")
            )
        if kind == "delay":
            time.sleep(_MAX_DELAY * _unit_fraction(f"chaos:{self.seed}:{token}:delay"))
            return _ChaosFuture(self.inner.submit(task, settings))
        fault: Exception | None = None
        if kind == "after":
            fault = ChaosFault(f"injected fault after executing {label}")
        elif kind == "drop":
            fault = ChaosFault(f"injected result drop for {label}")
        return _ChaosFuture(self.inner.submit(task, settings), fault)

    def wait_any(self, outstanding):
        failed = {
            future for future in outstanding if isinstance(future, _FailedFuture)
        }
        if failed:
            return failed, outstanding - failed
        wrappers = {future._inner: future for future in outstanding}
        done_inner, _ = self.inner.wait_any(set(wrappers))
        done = {wrappers[future] for future in done_inner}
        return done, outstanding - done

    def __repr__(self) -> str:
        return (
            f"ChaosBackend(inner={self.inner!r}, seed={self.seed}, "
            f"rate={self.rate})"
        )
