"""Local process-pool backend: the extracted pre-refactor fan-out path.

Wraps a ``ProcessPoolExecutor`` sized to ``min(workers, tasks)`` with a
fork start method where available (cheap start-up, and runners
registered at runtime — custom cell types — are inherited by workers).
Futures are thin wrappers over :mod:`concurrent.futures` ones, so
``wait_any`` is a real OS-level wait, not a poll.

Worker-side failures surface through :meth:`_PoolFuture.result` with
the remote traceback chained on ``__cause__`` (stdlib behaviour), which
:func:`repro.runtime.faults.failure_from` folds into the
:class:`~repro.runtime.faults.TaskFailure` record when the executor's
retry policy gives up on a unit.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import Future as _Future
from concurrent.futures import wait as _wait
from typing import TYPE_CHECKING, Any

from .base import BackendFuture, ExecutionBackend, Task, register_backend, run_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...experiments.config import ExperimentSettings

__all__ = ["ProcessPoolBackend"]


def _pool_context():
    """Fork where available: cheap start-up, and runners registered at
    runtime (e.g. custom cell types) are inherited by workers."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else methods[0])


class _PoolFuture(BackendFuture):
    def __init__(self, future: _Future):
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self) -> tuple[Any, float]:
        return self._future.result()


@register_backend("process")
def _make_pool(arg: str) -> "ProcessPoolBackend":
    return ProcessPoolBackend(int(arg) if arg else None)


class ProcessPoolBackend(ExecutionBackend):
    """Fans tasks out over local worker processes.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses the worker count the executor passes
        to :meth:`open` (``--workers`` / ``REPRO_WORKERS``).  The spec
        string form ``"process:<n>"`` pins it explicitly.
    """

    name = "process"

    def __init__(self, workers: int | None = None):
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None

    def open(self, workers: int, tasks: int, settings, telemetry=None) -> None:
        super().open(workers, tasks, settings, telemetry)
        count = self.workers if self.workers is not None else workers
        self._pool = ProcessPoolExecutor(
            max_workers=max(1, min(count, tasks)), mp_context=_pool_context()
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        super().close()

    def submit(self, task: Task, settings: "ExperimentSettings") -> BackendFuture:
        return _PoolFuture(self._pool.submit(run_task, task, settings))

    def wait_any(self, outstanding):
        raw = {future._future: future for future in outstanding}
        ready, _ = _wait(raw.keys(), return_when=FIRST_COMPLETED)
        done = {raw[entry] for entry in ready}
        return done, outstanding - done

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(workers={self.workers})"
