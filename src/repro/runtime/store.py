"""Content-addressed disk cache for computed study cells.

Each cell result is stored in its own file named by the cell's
:func:`~repro.runtime.spec.cache_token` — a hash of the cell spec, the
settings it ran under, and the cache version.  That gives three
properties the execution layer relies on:

* **re-run skipping** — an unchanged grid is served entirely from disk;
* **resume after interruption** — cells are persisted one by one as
  they complete, so a killed grid continues where it stopped;
* **safety** — any input change (seed, repetitions, solver, code
  version) changes the token, so stale payloads are unreachable rather
  than wrong.

Writes are atomic (temp file + ``os.replace``), so a crash mid-write
leaves no corrupt entry; unreadable entries are treated as misses.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Union

__all__ = ["ResultStore"]


class ResultStore:
    """Pickle-per-entry result cache rooted at a directory.

    Parameters
    ----------
    root:
        Cache directory; created on first write.  Entries are sharded
        by the first two hex digits of the token to keep directories
        small on large grids.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def _path(self, token: str) -> Path:
        return self.root / token[:2] / f"{token}.pkl"

    def load(self, token: str) -> Any | None:
        """The stored payload for *token*, or ``None`` on any miss.

        Corrupt or truncated entries (e.g. from a pre-atomic-write
        crash of a foreign writer) are misses, not errors — the cell
        simply recomputes and overwrites.
        """
        path = self._path(token)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return None

    def save(self, token: str, payload: Any) -> Path:
        """Atomically persist *payload* under *token*; returns the path."""
        path = self._path(token)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    def contains(self, token: str) -> bool:
        """Whether an entry exists for *token* (without reading it)."""
        return self._path(token).exists()

    def discard(self, token: str) -> bool:
        """Remove the entry for *token*; returns whether one existed."""
        try:
            self._path(token).unlink()
            return True
        except FileNotFoundError:
            return False

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in list(self.root.glob("*/*.pkl")):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
