"""Content-addressed disk cache for computed study cells.

Each cell result is stored in its own file named by the cell's
:func:`~repro.runtime.spec.cache_token` — a hash of the cell spec, the
settings it ran under, and the cache version.  That gives three
properties the execution layer relies on:

* **re-run skipping** — an unchanged grid is served entirely from disk;
* **resume after interruption** — cells are persisted one by one as
  they complete, so a killed grid continues where it stopped;
* **safety** — any input change (seed, repetitions, solver, code
  version) changes the token, so stale payloads are unreachable rather
  than wrong.

Sharded cells additionally persist *per-shard* partial payloads.  Those
are transient scaffolding for resume, so they live in a **group** — a
subtree keyed by the parent cell's token — that the executor drops
wholesale once the merged result is durable.  Grouping by the
chunking-independent parent token means a resume under a *different*
chunk size still sweeps the stale windows of the old chunking away at
merge time instead of stranding them on disk.

Writes are atomic (temp file + ``os.replace``), so a crash mid-write
leaves no corrupt entry; unreadable entries are treated as misses.

The store is additionally safe for **concurrent same-process writers**:
the service front end (:mod:`repro.runtime.service`) shares one store
across many simultaneously-executing requests, so any number of
:class:`ResultStore` instances rooted at the same directory — in any
number of threads — may save, discard, consolidate, and scan at once.
A process-wide lock per resolved root serialises the mutating paths
(temp-file names are also thread-distinct, so two threads persisting
the same token can never collide on one temp file), and the scan paths
tolerate entries vanishing mid-iteration under a racing sweep.
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import threading
import warnings
from pathlib import Path
from typing import Any, Union

__all__ = ["ResultStore"]

#: Distinguishes concurrent writers' temp files within one process —
#: pid alone is not enough once two threads persist the same token.
_TMP_COUNTER = itertools.count()

#: One re-entrant lock per resolved store root, shared by every
#: ResultStore instance in the process that points at that directory.
#: Keyed by absolute path so two instances built from different
#: relative spellings of the same root still serialise against each
#: other.  Cross-*process* writers were already safe (atomic replace,
#: unreadable-entry-as-miss); this closes the same-process races the
#: service's shared store introduces (mkdir vs prune, save vs rmtree).
_ROOT_LOCKS: dict[str, threading.RLock] = {}
_ROOT_LOCKS_GUARD = threading.Lock()


def _lock_for(root: Path) -> threading.RLock:
    key = str(root.expanduser().absolute())
    with _ROOT_LOCKS_GUARD:
        lock = _ROOT_LOCKS.get(key)
        if lock is None:
            lock = _ROOT_LOCKS[key] = threading.RLock()
        return lock


class ResultStore:
    """Pickle-per-entry result cache rooted at a directory.

    Parameters
    ----------
    root:
        Cache directory; created on first write.  Top-level entries are
        sharded by the first two hex digits of the token to keep
        directories small on large grids; grouped entries live under
        ``shards/<prefix>/<group>/``.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._lock = _lock_for(self.root)

    def _path(self, token: str, group: str | None = None) -> Path:
        if group is None:
            return self.root / token[:2] / f"{token}.pkl"
        return self._group_dir(group) / f"{token}.pkl"

    def _group_dir(self, group: str) -> Path:
        return self.root / "shards" / group[:2] / group

    def load(self, token: str, group: str | None = None) -> Any | None:
        """The stored payload for *token*, or ``None`` on any miss.

        *Any* failure to read an entry — corrupt pickle, truncation
        from a pre-atomic-write crash of a foreign writer, a payload
        class no longer importable, permission trouble — is a miss, not
        an error: the cell simply recomputes and overwrites.  A
        :class:`RuntimeWarning` naming the unreadable path is emitted
        so a silently rotting cache is at least visible.
        """
        path = self._path(token, group)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception as exc:
            warnings.warn(
                f"ignoring unreadable cache entry {path} "
                f"({type(exc).__name__}: {exc}); the cell will recompute",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def save(self, token: str, payload: Any, group: str | None = None) -> Path:
        """Atomically persist *payload* under *token*; returns the path.

        Thread-safe: the root lock serialises the mkdir/replace pair
        against concurrent prunes and group sweeps, and the temp-file
        name is unique per writer (pid *and* a process-wide counter),
        so simultaneous saves of the same token from different threads
        each complete atomically — last replace wins, both payloads
        identical by content addressing.
        """
        path = self._path(token, group)
        tmp = path.with_name(
            f".{path.name}.tmp-{os.getpid()}-{next(_TMP_COUNTER)}"
        )
        with self._lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                with tmp.open("wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except FileNotFoundError:
                # A foreign *process* pruned the freshly-made parent
                # between mkdir and replace (same-process prunes hold
                # our lock).  Rebuild and retry once.
                path.parent.mkdir(parents=True, exist_ok=True)
                with tmp.open("wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
        return path

    def contains(self, token: str, group: str | None = None) -> bool:
        """Whether an entry exists for *token* (without reading it)."""
        return self._path(token, group).exists()

    def discard(self, token: str, group: str | None = None) -> bool:
        """Remove the entry for *token*; returns whether one existed.

        The entry's now-possibly-empty parent directories (the
        two-hex-digit prefix, or a group's whole ``shards/<prefix>/
        <group>`` chain) are pruned too, so discards leave no skeleton
        behind.
        """
        path = self._path(token, group)
        with self._lock:
            try:
                path.unlink()
            except FileNotFoundError:
                return False
            self._prune(path.parent)
        return True

    def discard_many(self, tokens, group: str | None = None) -> int:
        """Remove the entries for *tokens*; returns the number removed.

        The batch form of :meth:`discard` — one consolidation sweep,
        one empty-directory prune at the end instead of one per entry.
        """
        removed = 0
        parents = set()
        with self._lock:
            for token in tokens:
                path = self._path(token, group)
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                removed += 1
                parents.add(path.parent)
            for parent in parents:
                self._prune(parent)
        return removed

    def discard_group(self, group: str) -> int:
        """Remove every entry of *group*; returns the number removed.

        Used by the executor to drop a sharded cell's transient
        per-shard entries — of the current chunking *and* any stale
        chunking left by interrupted runs — once the merged cell result
        has been persisted.  The group's prefix directory (and the
        ``shards`` root after the last group) is pruned so swept
        scaffolding leaves no skeleton behind.
        """
        directory = self._group_dir(group)
        with self._lock:
            if not directory.exists():
                return 0
            removed = sum(1 for _ in directory.glob("*.pkl"))
            shutil.rmtree(directory, ignore_errors=True)
            self._prune(directory.parent)
        return removed

    def _prune(self, directory: Path) -> None:
        """Remove *directory* and its ancestors while empty, up to the root.

        Stops at the first non-empty level (``rmdir`` refuses to remove
        a populated directory) and never removes the store root itself,
        so pruning after any discard is always safe.
        """
        root = self.root.resolve()
        directory = directory.resolve()
        if directory != root and root not in directory.parents:
            return  # not inside this store; nothing to prune
        while directory != root:
            try:
                directory.rmdir()
            except OSError:
                return
            directory = directory.parent

    def _entries(self) -> list[Path]:
        """Snapshot of every ``.pkl`` entry currently on disk.

        Built on :func:`os.walk`, which skips directories that vanish
        mid-scan (a racing sweep in another process), instead of
        ``rglob`` which raises; same-process sweeps are excluded by the
        root lock callers hold.
        """
        entries = []
        for dirpath, _, filenames in os.walk(self.root):
            base = Path(dirpath)
            entries.extend(
                base / name for name in filenames if name.endswith(".pkl")
            )
        return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries())

    def stats(self, group_prefix: str | None = None) -> dict:
        """Entry counts and byte totals, broken down by group.

        Returns ``{"root": ..., "entries", "bytes", "cells": {...},
        "groups": {group: {"entries", "bytes"}, ...}}`` where
        ``cells`` covers the top-level (merged cell) entries and each
        ``groups`` key is one sharded cell's transient resume group.
        *group_prefix* restricts the group breakdown to groups whose
        token starts with the prefix.  Read-only: the operational
        companion (``python -m repro cache info``) to the journal's
        cache-hit metrics.
        """
        cells = {"entries": 0, "bytes": 0}
        groups: dict[str, dict] = {}
        with self._lock:
            shards_root = self.root / "shards"
            for path in self._entries():
                try:
                    size = path.stat().st_size
                except OSError:  # pragma: no cover - entry raced a sweep
                    continue
                try:
                    relative = path.relative_to(shards_root)
                except ValueError:
                    cells["entries"] += 1
                    cells["bytes"] += size
                    continue
                group = relative.parts[1] if len(relative.parts) > 2 else "?"
                if group_prefix is not None and not group.startswith(
                    group_prefix
                ):
                    continue
                entry = groups.setdefault(group, {"entries": 0, "bytes": 0})
                entry["entries"] += 1
                entry["bytes"] += size
        grouped = sum(entry["entries"] for entry in groups.values())
        grouped_bytes = sum(entry["bytes"] for entry in groups.values())
        return {
            "root": str(self.root),
            "entries": cells["entries"] + grouped,
            "bytes": cells["bytes"] + grouped_bytes,
            "cells": cells,
            "groups": dict(sorted(groups.items())),
        }

    def clear(self) -> int:
        """Remove every entry (grouped included); returns the number removed.

        Empty subdirectories are swept too: after a clear the store
        root holds nothing at all.
        """
        with self._lock:
            removed = 0
            for path in self._entries():
                path.unlink(missing_ok=True)
                removed += 1
            directories = [
                Path(dirpath)
                for dirpath, _, _ in os.walk(self.root)
                if Path(dirpath) != self.root
            ]
            for directory in sorted(directories, reverse=True):
                try:
                    directory.rmdir()
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
