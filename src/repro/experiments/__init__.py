"""Reproduction layer: one module per paper table / figure / example.

Every ``run_*`` function returns an
:class:`~repro.experiments.report.ExperimentReport` that renders as an
aligned text table.  The CLI (``python -m repro.experiments``) runs any
subset by experiment id; see DESIGN.md for the per-experiment index.
"""

from .ablation_m import run_m_ablation
from .appendix_sampling import run_appendix_sampling
from .budget_analysis import run_budget_analysis
from .ablations import run_batch_size_ablation, run_hpd_solver_ablation
from .config import DEFAULT_SETTINGS, FAST_SETTINGS, TWCS_M, ExperimentSettings
from .coverage_audit import run_coverage_audit
from .dynamic_audit import run_dynamic_audit
from .example1 import run_example1
from .example2 import run_example2
from .figure2 import run_figure2
from .human_machine import run_human_machine
from .figure3 import compute_figure3, expected_hpd_width, run_figure3
from .figure4 import run_figure4
from .partitioned_audit import run_partitioned_audit
from .report import ExperimentReport, render_table
from .sequential_coverage import run_sequential_coverage
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4

__all__ = [
    "ExperimentSettings",
    "DEFAULT_SETTINGS",
    "FAST_SETTINGS",
    "TWCS_M",
    "ExperimentReport",
    "render_table",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_figure2",
    "run_figure3",
    "compute_figure3",
    "expected_hpd_width",
    "run_figure4",
    "run_example1",
    "run_example2",
    "run_coverage_audit",
    "run_dynamic_audit",
    "run_partitioned_audit",
    "run_hpd_solver_ablation",
    "run_batch_size_ablation",
    "run_appendix_sampling",
    "run_sequential_coverage",
    "run_m_ablation",
    "run_budget_analysis",
    "run_human_machine",
]

#: Registry used by the CLI: experiment id -> runner.
EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "example1": run_example1,
    "example2": run_example2,
    "coverage": run_coverage_audit,
    "dynamic": run_dynamic_audit,
    "partitions": run_partitioned_audit,
    "ablation-hpd": run_hpd_solver_ablation,
    "ablation-batch": run_batch_size_ablation,
    "appendix-sampling": run_appendix_sampling,
    "sequential-coverage": run_sequential_coverage,
    "ablation-m": run_m_ablation,
    "budget": run_budget_analysis,
    "human-machine": run_human_machine,
}
