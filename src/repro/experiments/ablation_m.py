"""Ablation: the TWCS second-stage size ``m``.

The paper follows Gao et al.'s recommendation of ``m in {3, 5}``
(Sec. 5: 3 for the small-cluster datasets, 5 for SYN 100M) without
re-deriving it.  This ablation sweeps ``m`` on a real profile and shows
the trade-off that produces the recommendation:

* small ``m`` spreads annotations over many entities — better
  statistical efficiency per triple (less intra-cluster redundancy) but
  more entity-identification cost;
* large ``m`` amortises entity identification but wastes annotations on
  correlated triples from the same cluster.

The cost-optimal region sits exactly around the recommended 3-5 for
positively-correlated KGs.
"""

from __future__ import annotations

from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_cells
from .report import ExperimentReport

__all__ = ["run_m_ablation", "m_ablation_plan"]


def m_ablation_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    dataset: str = "DBPEDIA",
    ms: tuple[int, ...] = (1, 2, 3, 5, 8, 12),
) -> StudyPlan:
    """The stage-2 cap sweep as a study grid (one cell per m)."""
    cells = tuple(
        StudyCell(
            key=(dataset, m),
            label=f"{dataset}/TWCS(m={m})/aHPD",
            method="aHPD",
            dataset=dataset,
            strategy=f"TWCS:{m}",
            seed_stream=(11_000 + i,),
        )
        for i, m in enumerate(ms)
    )
    return StudyPlan(settings=settings, cells=cells, name="ablation-m")


def run_m_ablation(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    dataset: str = "DBPEDIA",
    ms: tuple[int, ...] = (1, 2, 3, 5, 8, 12),
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Sweep the TWCS stage-2 cap on one dataset under aHPD."""
    plan = m_ablation_plan(settings, dataset=dataset, ms=ms)
    studies = run_cells(plan, executor=executor)
    report = ExperimentReport(
        experiment_id="ablation-m",
        title=(
            f"TWCS second-stage size sweep on {dataset} "
            f"(aHPD, alpha={settings.alpha}, {settings.repetitions} reps)"
        ),
        headers=("m", "triples", "entities", "cost_hours"),
    )
    best_cost = None
    best_m = None
    for m in ms:
        study = studies[(dataset, m)]
        mean_cost = float(study.cost_hours.mean())
        if best_cost is None or mean_cost < best_cost:
            best_cost, best_m = mean_cost, m
        report.add_row(
            m=m,
            triples=study.triples_summary.format(0),
            entities=f"{study.entities.mean():.0f}",
            cost_hours=study.cost_summary.format(2),
        )
    report.notes.append(
        f"cost-optimal m on this run: {best_m} "
        "(paper adopts Gao et al.'s m in {3, 5})."
    )
    return report
