"""Figure 3 reproduction: expected HPD width by prior.

For ``n = 30`` and ``alpha = 0.05``, the paper plots the expected width
of the HPD credible interval under the Kerman, Jeffreys, and Uniform
priors across the accuracy space, annotating the regions where each
prior is optimal: Kerman wins at the extremes, Uniform in the centre,
and Jeffreys nowhere.

For a true accuracy ``mu`` the expected width is the binomial mixture

.. math::

    E[w] = \\sum_{\\tau=0}^{n} \\binom{n}{\\tau} \\mu^\\tau (1-\\mu)^{n-\\tau}
           \\; w(\\mathrm{HPD}(a + \\tau,\\ b + n - \\tau))

which we evaluate exactly (the per-outcome widths are computed once per
prior and reused across the whole accuracy sweep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_alpha, check_positive_int
from ..intervals.batch import hpd_bounds_batch, posterior_shapes_batch
from ..intervals.hpd import hpd_bounds
from ..intervals.posterior import BetaPosterior
from ..intervals.priors import UNINFORMATIVE_PRIORS, BetaPrior
from ..stats.binomial import binomial_pmf_matrix
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["expected_hpd_width", "run_figure3", "Figure3Series"]


def hpd_width_by_outcome(
    prior: BetaPrior, n: int, alpha: float, solver: str = "newton"
) -> np.ndarray:
    """HPD width for every annotation outcome ``tau in 0..n``.

    The default solver routes all ``n + 1`` posteriors through the
    vectorised batch engine in one call; a non-default solver choice
    falls back to the scalar per-outcome loop (the engines agree to
    ~1e-8, so this only matters for solver ablations).
    """
    if solver == "newton":
        taus = np.arange(n + 1, dtype=float)
        a, b = posterior_shapes_batch(prior, taus, np.full(n + 1, float(n)))
        lower, upper = hpd_bounds_batch(a, b, alpha)
        return upper - lower
    widths = np.empty(n + 1, dtype=float)
    for tau in range(n + 1):
        posterior = BetaPosterior.from_counts(prior, float(tau), float(n))
        lower, upper = hpd_bounds(posterior, alpha, solver=solver)
        widths[tau] = upper - lower
    return widths


def expected_hpd_width(
    prior: BetaPrior,
    n: int,
    alpha: float,
    mus: Sequence[float] | np.ndarray,
    solver: str = "newton",
) -> np.ndarray:
    """Expected ``1 - alpha`` HPD width under *prior* across *mus*."""
    alpha = check_alpha(alpha)
    n = check_positive_int(n, "n")
    mus_arr = np.asarray(mus, dtype=float)
    widths = hpd_width_by_outcome(prior, n, alpha, solver=solver)
    pmf = binomial_pmf_matrix(n, mus_arr)
    return pmf @ widths


@dataclass(frozen=True)
class Figure3Series:
    """The regenerated Figure 3 data: one expected-width curve per prior."""

    mus: np.ndarray
    widths_by_prior: dict[str, np.ndarray]
    n: int
    alpha: float

    def optimal_prior(self) -> list[str]:
        """Which prior yields the smallest expected width at each mu."""
        names = list(self.widths_by_prior)
        matrix = np.stack([self.widths_by_prior[name] for name in names])
        return [names[i] for i in matrix.argmin(axis=0)]

    def optimal_regions(self) -> dict[str, float]:
        """Fraction of the accuracy space where each prior is optimal."""
        winners = self.optimal_prior()
        return {
            name: winners.count(name) / len(winners)
            for name in self.widths_by_prior
        }


def compute_figure3(
    n: int = 30,
    alpha: float = 0.05,
    grid_points: int = 199,
    priors: Sequence[BetaPrior] = UNINFORMATIVE_PRIORS,
    solver: str = "newton",
) -> Figure3Series:
    """Compute the Figure 3 series on a uniform accuracy grid."""
    mus = np.linspace(0.005, 0.995, grid_points)
    widths = {
        prior.name: expected_hpd_width(prior, n, alpha, mus, solver=solver)
        for prior in priors
    }
    return Figure3Series(mus=mus, widths_by_prior=widths, n=n, alpha=alpha)


def run_figure3(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    n: int = 30,
    grid_points: int = 199,
) -> ExperimentReport:
    """Regenerate Figure 3 as a sampled table plus region summary."""
    series = compute_figure3(
        n=n, alpha=settings.alpha, grid_points=grid_points, solver=settings.solver
    )
    prior_names = list(series.widths_by_prior)
    report = ExperimentReport(
        experiment_id="figure3",
        title=f"Expected HPD width by prior (n={n}, alpha={settings.alpha})",
        headers=("mu", *prior_names, "optimal"),
    )
    winners = series.optimal_prior()
    # Sample the grid at readable steps for the table rendering.
    stride = max(1, grid_points // 20)
    for i in range(0, grid_points, stride):
        cells: dict[str, object] = {"mu": round(float(series.mus[i]), 3)}
        for name in prior_names:
            cells[name] = round(float(series.widths_by_prior[name][i]), 5)
        cells["optimal"] = winners[i]
        report.add_row(**cells)
    regions = series.optimal_regions()
    for name, fraction in regions.items():
        report.notes.append(f"{name} prior optimal on {fraction:.1%} of the accuracy space")
    report.notes.append(
        "Paper: Kerman optimal in the extreme regions, Uniform in the centre, "
        "Jeffreys never the shortest."
    )
    return report
