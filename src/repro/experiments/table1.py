"""Table 1 reproduction: dataset statistics.

Regenerates the paper's dataset overview — fact counts, cluster counts,
average cluster sizes, and ground-truth accuracies — from the profiled
dataset generators, verifying that the substitution datasets match the
published statistics exactly.
"""

from __future__ import annotations

from ..kg.datasets import SYN100M_ACCURACIES, load_dataset, load_syn100m
from ..kg.stats import describe_kg
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_table1"]


def run_table1(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    include_syn100m: bool = True,
) -> ExperimentReport:
    """Regenerate Table 1.

    Parameters
    ----------
    settings:
        Supplies the dataset seed.
    include_syn100m:
        Whether to instantiate the 100M-triple synthetic KG (a few
        seconds and ~100 MB for the cluster-size draw).
    """
    report = ExperimentReport(
        experiment_id="table1",
        title="Dataset statistics (paper Table 1)",
        headers=("dataset", "num_facts", "num_clusters", "avg_cluster_size", "accuracy"),
    )
    for name in settings.datasets:
        kg = load_dataset(name, seed=settings.dataset_seed)
        stats = describe_kg(kg, name=name)
        report.add_row(**stats.as_row())
    if include_syn100m:
        accuracies = "/".join(f"{mu:g}" for mu in SYN100M_ACCURACIES)
        kg = load_syn100m(accuracy=SYN100M_ACCURACIES[0], seed=settings.dataset_seed)
        stats = describe_kg(kg, name="SYN 100M")
        row = stats.as_row()
        row["accuracy"] = accuracies
        report.add_row(**row)
    report.notes.append(
        "Profiled datasets are regenerated from published statistics; "
        "counts and accuracies must match the paper exactly."
    )
    return report
