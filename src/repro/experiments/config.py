"""Shared experiment settings.

The paper's evaluation protocol (Sec. 5) in one value object: which
datasets, how many Monte-Carlo repetitions, which significance /
precision levels, and which HPD solver to use.  Every experiment module
accepts an :class:`ExperimentSettings` so that benchmarks can dial the
repetition count down while the CLI reproduces the paper's 1,000.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from .._validation import check_alpha, check_positive, check_positive_int
from ..evaluation.framework import EvaluationConfig
from ..exceptions import ValidationError
from ..intervals.hpd import HPD_SOLVERS

__all__ = ["ExperimentSettings", "DEFAULT_SETTINGS", "FAST_SETTINGS"]

#: TWCS second-stage sizes per dataset (paper Sec. 5: m=3 for the small
#: datasets with small clusters, m=5 for SYN 100M).
TWCS_M: Mapping[str, int] = {
    "YAGO": 3,
    "NELL": 3,
    "DBPEDIA": 3,
    "FACTBENCH": 3,
    "SYN100M": 5,
}


@dataclass(frozen=True)
class ExperimentSettings:
    """Evaluation-protocol parameters shared by all experiments.

    Attributes
    ----------
    repetitions:
        Monte-Carlo repetitions per configuration (paper: 1,000).
    seed:
        Base seed; every (experiment, configuration, repetition) derives
        an independent stream from it.
    dataset_seed:
        Seed of the profiled dataset generators, fixed separately so
        every configuration audits the *same* realised KG.
    alpha / epsilon:
        Default significance level and MoE threshold (both 0.05).
    solver:
        HPD solver used in the hot loops (``newton`` by default; pass
        ``slsqp`` for the paper's optimizer — identical to ~1e-8).
    datasets:
        Small-dataset roster for the real-data experiments.
    """

    repetitions: int = 1_000
    seed: int = 0
    dataset_seed: int = 42
    alpha: float = 0.05
    epsilon: float = 0.05
    solver: str = "newton"
    datasets: tuple[str, ...] = ("YAGO", "NELL", "DBPEDIA", "FACTBENCH")

    def __post_init__(self) -> None:
        check_positive_int(self.repetitions, "repetitions")
        check_alpha(self.alpha)
        check_positive(self.epsilon, "epsilon")
        if self.solver not in HPD_SOLVERS:
            known = ", ".join(sorted(HPD_SOLVERS))
            raise ValidationError(
                f"unknown HPD solver {self.solver!r}; expected one of: {known}"
            )

    def evaluation_config(self, alpha: float | None = None) -> EvaluationConfig:
        """The evaluation-loop config at (optionally overridden) alpha."""
        return EvaluationConfig(
            alpha=self.alpha if alpha is None else alpha,
            epsilon=self.epsilon,
        )

    def with_repetitions(self, repetitions: int) -> "ExperimentSettings":
        """A copy with a different repetition count."""
        return replace(self, repetitions=repetitions)


#: The paper's protocol: 1,000 repetitions.
DEFAULT_SETTINGS = ExperimentSettings()

#: A fast profile for benchmarks and CI (same protocol, fewer reps).
FAST_SETTINGS = ExperimentSettings(repetitions=100)
