"""Plain-text table rendering for regenerated paper artifacts.

Every experiment module produces an :class:`ExperimentReport` — a named
collection of rows — that renders as an aligned text table, mirroring
the layout of the paper's tables so measured and published values can be
compared side by side.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence, Union

from ..exceptions import ValidationError

__all__ = ["ExperimentReport", "render_table"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render *rows* under *headers* as an aligned text table."""
    if not headers:
        raise ValidationError("headers must not be empty")
    str_rows = [[_cell(value) for value in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValidationError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(widths[j]) for j, h in enumerate(headers)),
        sep,
    ]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentReport:
    """A regenerated paper artifact.

    Attributes
    ----------
    experiment_id:
        Identifier matching DESIGN.md's per-experiment index (e.g.
        ``"table3"``).
    title:
        Human-readable description.
    headers:
        Column names.
    rows:
        One mapping per table row, keyed by header name.
    notes:
        Free-form annotations (significance outcomes, paper references).
    volatile:
        Headers whose values vary run to run on identical inputs
        (wall-clock timings).  They render normally on stdout but are
        excluded from persisted artifacts (``render(volatile=False)``)
        so committed results files stay deterministic.
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[Mapping[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    volatile: tuple[str, ...] = ()

    def add_row(self, **cells: object) -> None:
        """Append a row; every header must be present in *cells*."""
        missing = [h for h in self.headers if h not in cells]
        if missing:
            raise ValidationError(f"row is missing cells for: {missing}")
        self.rows.append(dict(cells))

    def column(self, header: str) -> list[object]:
        """All values of one column, in row order."""
        if header not in self.headers:
            raise ValidationError(f"unknown column {header!r}")
        return [row[header] for row in self.rows]

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the rows as CSV (headers first); returns the path.

        Lets downstream plotting tools regenerate the paper's figures
        from the measured series.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            for row in self.rows:
                writer.writerow([row[h] for h in self.headers])
        return path

    def render(self, volatile: bool = True) -> str:
        """The text rendering: title, table, notes.

        ``volatile=False`` drops the columns listed in
        :attr:`volatile` — the form persisted under
        ``benchmarks/results/`` so that re-runs only diff when the
        numbers themselves change.
        """
        headers = (
            self.headers
            if volatile
            else tuple(h for h in self.headers if h not in self.volatile)
        )
        body = render_table(headers, [[row[h] for h in headers] for row in self.rows])
        parts = [f"== {self.experiment_id}: {self.title} ==", "", body]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
