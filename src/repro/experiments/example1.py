"""Example 1 reproduction: the Wald zero-width pathology on NELL.

The paper's running example: auditing NELL (mu = 0.91) with SRS, the
Wald interval, alpha = 0.05, and eps = 0.05.  When the first 30
annotated triples all happen to be correct, the estimated variance is 0,
the Wald interval is the zero-width [1.00, 1.00], and the evaluation
halts immediately — exhibiting all three CI interpretation fallacies.
The paper observes this outcome in 7% of 1,000 iterations (footnote 1;
the binomial prediction is 0.91^30 ≈ 5.9%).
"""

from __future__ import annotations

import numpy as np

from ..evaluation.framework import KGAccuracyEvaluator
from ..intervals.wald import WaldInterval
from ..kg.datasets import load_dataset
from ..sampling.srs import SimpleRandomSampling
from ..stats.rng import derive_seed, spawn_rng
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_example1"]


def run_example1(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    """Measure how often Wald halts at n=30 with a zero-width interval."""
    kg = load_dataset("NELL", seed=settings.dataset_seed)
    evaluator = KGAccuracyEvaluator(
        kg=kg,
        strategy=SimpleRandomSampling(),
        method=WaldInterval(),
        config=settings.evaluation_config(),
    )
    zero_width = 0
    halted_at_minimum = 0
    estimates_at_zero = []
    for i in range(settings.repetitions):
        rng = spawn_rng(derive_seed(settings.seed, 4_000, i))
        result = evaluator.run(rng=rng)
        if result.interval.width == 0.0:
            zero_width += 1
            estimates_at_zero.append(result.mu_hat)
        if result.n_annotated == evaluator.config.min_triples:
            halted_at_minimum += 1

    mu = kg.accuracy
    predicted = mu ** evaluator.config.min_triples + (1 - mu) ** evaluator.config.min_triples
    report = ExperimentReport(
        experiment_id="example1",
        title=(
            "Wald zero-width pathology on NELL "
            f"(SRS, alpha={settings.alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=("quantity", "value"),
    )
    report.add_row(quantity="zero-width interval rate", value=f"{zero_width / settings.repetitions:.1%}")
    report.add_row(
        quantity="halts at minimum sample (n=30)",
        value=f"{halted_at_minimum / settings.repetitions:.1%}",
    )
    report.add_row(
        quantity="binomial prediction mu^30 + (1-mu)^30",
        value=f"{predicted:.1%}",
    )
    if estimates_at_zero:
        report.add_row(
            quantity="estimate when zero-width",
            value=f"{float(np.mean(estimates_at_zero)):.2f}",
        )
    report.notes.append("Paper footnote 1 reports 7% over 1,000 iterations.")
    return report
