"""Budget-feasibility analysis (paper Sec. 6.5, quantified).

The paper notes that "depending on the available annotation budget, the
cost reduction introduced by aHPD can make the difference between an
evaluation process that concludes successfully (due to convergence) and
one that terminates prematurely (due to budget exhaustion)".  This
experiment quantifies that: for a grid of budgets (hours), it reports
each method's *completion probability* — the fraction of audits whose
realised cost fits the budget — from the Monte-Carlo cost
distributions, on the dataset and precision level where the methods
differ most (YAGO at alpha = 0.01, the Figure 4 peak).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..evaluation.runner import StudyResult
from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_cells
from .report import ExperimentReport

__all__ = ["run_budget_analysis", "budget_plan", "completion_probability"]


def completion_probability(study: StudyResult, budget_hours: float) -> float:
    """Fraction of audits whose realised cost fits *budget_hours*."""
    return float(np.mean(study.cost_hours <= budget_hours))


def budget_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    dataset: str = "YAGO",
    alpha: float = 0.01,
) -> StudyPlan:
    """The budget-feasibility grid: three methods, paired seeds."""
    cells = tuple(
        StudyCell(
            key=(name,),
            label=f"{dataset}/budget/{name}",
            method=name,
            alpha=alpha,
            dataset=dataset,
            strategy="SRS",
            seed_stream=(12_000,),  # paired across methods
        )
        for name in ("Wald", "Wilson", "aHPD")
    )
    return StudyPlan(settings=settings, cells=cells, name="budget")


def run_budget_analysis(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    dataset: str = "YAGO",
    alpha: float = 0.01,
    budgets: Sequence[float] | None = None,
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Completion probability per budget for Wald / Wilson / aHPD.

    Parameters
    ----------
    dataset / alpha:
        Default to YAGO at the high-precision level, where the paper's
        Figure 4 peak (-47%) makes the feasibility gap widest.
    budgets:
        Budget grid in hours; defaults to quantiles spanning the two
        methods' cost ranges.
    """
    plan = budget_plan(settings, dataset=dataset, alpha=alpha)
    by_key = run_cells(plan, executor=executor)
    methods = ("Wald", "Wilson", "aHPD")
    studies = {name: by_key[(name,)] for name in methods}
    if budgets is None:
        pooled = np.concatenate([s.cost_hours for s in studies.values()])
        budgets = [round(float(q), 2) for q in np.quantile(pooled, (0.1, 0.25, 0.5, 0.75, 0.9))]
        budgets = sorted(set(budgets))

    report = ExperimentReport(
        experiment_id="budget",
        title=(
            f"Audit completion probability vs budget on {dataset} "
            f"(SRS, alpha={alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=("budget_hours", *methods),
    )
    for budget in budgets:
        cells: dict[str, object] = {"budget_hours": budget}
        for name in methods:
            cells[name] = f"{completion_probability(studies[name], budget):.0%}"
        report.add_row(**cells)
    gap_budget = float(np.median(studies["Wilson"].cost_hours))
    gap = completion_probability(studies["aHPD"], gap_budget) - completion_probability(
        studies["Wilson"], gap_budget
    )
    report.notes.append(
        f"At Wilson's median cost ({gap_budget:.2f}h) aHPD completes "
        f"{gap:+.0%} more audits — the Sec. 6.5 budget-exhaustion gap."
    )
    return report
