"""CLI for regenerating paper artifacts.

Usage::

    python -m repro.experiments                      # list experiments
    python -m repro.experiments table3               # paper protocol (1,000 reps)
    python -m repro.experiments table3 --reps 200    # faster
    python -m repro.experiments all --reps 100       # everything
    python -m repro.experiments table2 --solver slsqp

Output is written to stdout; redirect to capture EXPERIMENTS.md inputs.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..runtime import RunContext, configure
from . import EXPERIMENTS, ExperimentSettings


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables and figures from the paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (or 'all'); omit to list available ids",
    )
    parser.add_argument("--reps", type=int, default=1_000, help="Monte-Carlo repetitions")
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--solver",
        default="newton",
        choices=("newton", "slsqp", "scalar"),
        help="HPD solver (slsqp = the paper's optimizer)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each regenerated table as CSV under DIR",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for grid-shaped experiments "
        "(default: $REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-store directory: completed cells are cached there, "
        "re-runs and interrupted grids resume from it "
        "(default: $REPRO_CACHE_DIR or no cache)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="REPS",
        help="repetition-sharding granularity: cells with more "
        "repetitions split into chunks of at most this many, executed "
        "in parallel and merged bit-identically "
        "(default: $REPRO_CHUNK_SIZE or no sharding)",
    )
    parser.add_argument(
        "--chunk-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="adaptive sharding: target this many wall-clock seconds "
        "per chunk, calibrated from a timed pilot shard; mutually "
        "exclusive with --chunk-size "
        "(default: $REPRO_CHUNK_SECONDS or off)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help="execution backend for grid-shaped experiments: serial, "
        "process, spool[:dir] (a spool-directory work queue served "
        "by 'python -m repro worker' processes), or chaos[:inner] "
        "for fault injection (default: $REPRO_BACKEND or automatic)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="resubmissions allowed per failed unit of work "
        "(default: $REPRO_MAX_RETRIES or 0, fail fast)",
    )
    parser.add_argument(
        "--on-error",
        default=None,
        choices=("raise", "continue"),
        help="after retries run out: 'raise' aborts, 'continue' "
        "quarantines the failed cell and keeps going "
        "(default: $REPRO_ON_ERROR or raise)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="append structured lifecycle events (JSONL) of every "
        "runtime-routed experiment to this journal; digest with "
        "'python -m repro trace summarize' "
        "(default: $REPRO_TRACE_FILE or off)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=("auto", "numpy", "native"),
        help="interval solver kernel (numpy reference, JIT-compiled "
        "native, or auto with loud fallback); never changes results "
        "(default: $REPRO_KERNEL or numpy)",
    )
    parser.add_argument(
        "--solve-table",
        type=int,
        default=None,
        metavar="N",
        help="precompute/memoise interval tables for integer-count "
        "solves with n <= N; 0 disables "
        "(default: $REPRO_SOLVE_TABLE or 2048)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-cell progress/timing lines to stderr",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if not args.experiments:
        print("Available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0
    # Route every grid-shaped experiment through the runtime layer:
    # resolve the requested parallelism / cache / fault knobs (unset
    # values fall back to the REPRO_* environment) into one immutable
    # RunContext, installed as the session default for every execute()
    # call the experiments make.
    configure(
        context=RunContext(
            workers=args.workers,
            store=args.cache_dir,
            progress=args.progress,
            chunk_size=args.chunk_size,
            chunk_seconds=args.chunk_seconds,
            backend=args.backend,
            max_retries=args.max_retries,
            on_error=args.on_error,
            trace=args.trace,
            kernel=args.kernel,
            solve_table=args.solve_table,
        )
    )
    requested = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    settings = ExperimentSettings(
        repetitions=args.reps, seed=args.seed, solver=args.solver
    )
    for name in requested:
        start = time.perf_counter()
        report = EXPERIMENTS[name](settings)
        elapsed = time.perf_counter() - start
        print(report.render())
        if args.csv:
            path = report.to_csv(f"{args.csv}/{report.experiment_id}.csv")
            print(f"[csv written to {path}]")
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
