"""Figure 4 reproduction: aHPD vs Wilson across precision levels.

Annotation costs of aHPD and Wilson at significance levels
``alpha in {0.10, 0.05, 0.01}`` under SRS and TWCS on the four real
profiles, together with aHPD's reduction ratio over Wilson — the
paper's robustness result, peaking at a 47% (SRS) / 39% (TWCS) cost
reduction on YAGO at alpha = 0.01, and ~0% on the quasi-symmetric
FACTBENCH at every level.
"""

from __future__ import annotations

from ..evaluation.metrics import cost_reduction
from ..evaluation.runner import StudyResult
from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_cells, strategy_spec
from .report import ExperimentReport

__all__ = ["run_figure4", "figure4_plan", "figure4_studies", "FIGURE4_ALPHAS"]

#: The precision levels swept by the paper.
FIGURE4_ALPHAS: tuple[float, ...] = (0.10, 0.05, 0.01)


def figure4_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    alphas: tuple[float, ...] = FIGURE4_ALPHAS,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
) -> StudyPlan:
    """The Figure 4 grid: datasets x strategies x alphas x {Wilson, aHPD}."""
    cells: list[StudyCell] = []
    for dataset_index, dataset in enumerate(settings.datasets):
        for strategy_index, strategy_name in enumerate(strategies):
            for alpha_index, alpha in enumerate(alphas):
                # Paired seeds per (dataset, strategy, alpha) cell so the
                # Wilson-vs-aHPD reduction ratio is a within-path
                # comparison (see table3).
                stream = 3_000 + 100 * dataset_index + 10 * strategy_index + alpha_index
                for method_name in ("Wilson", "aHPD"):
                    cells.append(
                        StudyCell(
                            key=(dataset, strategy_name, alpha, method_name),
                            label=(
                                f"{dataset}/{strategy_name}/alpha={alpha:g}/"
                                f"{method_name}"
                            ),
                            method=method_name,
                            alpha=alpha,
                            dataset=dataset,
                            strategy=strategy_spec(strategy_name, dataset),
                            seed_stream=(stream,),
                        )
                    )
    return StudyPlan(settings=settings, cells=tuple(cells), name="figure4")


def figure4_studies(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    alphas: tuple[float, ...] = FIGURE4_ALPHAS,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
    executor: ParallelExecutor | None = None,
) -> dict[tuple[str, str, float, str], StudyResult]:
    """Studies keyed by ``(dataset, strategy, alpha, method)``."""
    plan = figure4_plan(settings, alphas=alphas, strategies=strategies)
    return dict(run_cells(plan, executor=executor))


def run_figure4(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    alphas: tuple[float, ...] = FIGURE4_ALPHAS,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
) -> ExperimentReport:
    """Regenerate Figure 4 as a cost table with reduction ratios."""
    studies = figure4_studies(settings, alphas=alphas, strategies=strategies)
    report = ExperimentReport(
        experiment_id="figure4",
        title=(
            "aHPD vs Wilson annotation cost across precision levels "
            f"(eps={settings.epsilon}, {settings.repetitions} reps)"
        ),
        headers=(
            "sampling",
            "dataset",
            "alpha",
            "wilson_cost",
            "ahpd_cost",
            "reduction",
        ),
    )
    for strategy_name in strategies:
        for dataset in settings.datasets:
            for alpha in alphas:
                wilson = studies[(dataset, strategy_name, alpha, "Wilson")]
                ahpd = studies[(dataset, strategy_name, alpha, "aHPD")]
                report.add_row(
                    sampling=strategy_name,
                    dataset=dataset,
                    alpha=f"{alpha:g}",
                    wilson_cost=wilson.cost_summary.format(2),
                    ahpd_cost=ahpd.cost_summary.format(2),
                    reduction=f"{cost_reduction(wilson, ahpd):+.0%}",
                )
    report.notes.append(
        "reduction: aHPD mean cost relative to Wilson (negative = cheaper); "
        "paper peaks at -47% (YAGO, SRS, alpha=0.01)."
    )
    return report
