"""Coverage audit (extension of paper Sec. 3.3).

The paper argues that validating a CI's nominal guarantee requires
coverage-probability studies that are impractical in the field.  In
simulation they are cheap: this experiment sweeps the accuracy space
and measures the empirical coverage of every interval family at a fixed
sample size, exposing

* Wald's collapse near the boundaries (the Example 1 pathology),
* Wilson's and the credible intervals' stability,
* Clopper-Pearson's conservatism (over-coverage, wider intervals).
"""

from __future__ import annotations

from typing import Sequence

from ..runtime import CoverageCell, ParallelExecutor, StudyPlan, execute
from ..stats.rng import derive_seed
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_coverage_audit", "coverage_audit_plan", "COVERAGE_MUS"]

#: The accuracy sweep: boundary-adjacent, skewed, and central values.
COVERAGE_MUS: tuple[float, ...] = (0.99, 0.95, 0.91, 0.85, 0.70, 0.54, 0.50)

#: Method specs in display order (display names come from the results).
_METHOD_SPECS = ("Wald", "Wilson", "CP", "Arcsine", "Logit", "ET", "HPD", "aHPD")


def coverage_audit_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    mus: Sequence[float] = COVERAGE_MUS,
    n: int = 30,
) -> StudyPlan:
    """The coverage grid: every interval family x the accuracy sweep."""
    cells = tuple(
        CoverageCell(
            key=(spec, mu),
            label=f"coverage/{spec}/mu={mu:g}",
            method=spec,
            mu=mu,
            n=n,
            seed=derive_seed(settings.seed, 6_000, mi, ui),
        )
        for mi, spec in enumerate(_METHOD_SPECS)
        for ui, mu in enumerate(mus)
    )
    return StudyPlan(settings=settings, cells=cells, name="coverage")


def run_coverage_audit(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    mus: Sequence[float] = COVERAGE_MUS,
    n: int = 30,
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Empirical coverage of each method at sample size *n*."""
    plan = coverage_audit_plan(settings, mus=mus, n=n)
    results = execute(plan, executor=executor).results
    report = ExperimentReport(
        experiment_id="coverage",
        title=(
            f"Empirical coverage at n={n}, alpha={settings.alpha} "
            f"({settings.repetitions} reps per cell; nominal "
            f"{1 - settings.alpha:.0%})"
        ),
        headers=("method", *[f"mu={mu:g}" for mu in mus], "mean width @0.91"),
    )
    for spec in _METHOD_SPECS:
        first = results[(spec, mus[0])]
        cells: dict[str, object] = {"method": first.method}
        width_at_091 = None
        for mu in mus:
            result = results[(spec, mu)]
            cells[f"mu={mu:g}"] = f"{result.coverage:.1%}"
            if mu == 0.91:
                width_at_091 = result.mean_width
        cells["mean width @0.91"] = (
            f"{width_at_091:.3f}" if width_at_091 is not None else "-"
        )
        report.add_row(**cells)
    report.notes.append(
        "Frequentist coverage of a credible interval is not its design "
        "guarantee (it promises posterior mass), but calibration under "
        "uninformative priors is expected and observed."
    )
    return report
