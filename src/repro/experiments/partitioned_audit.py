"""Per-predicate audit experiment (library extension).

One global accuracy number says whether a KG is usable; the partitioned
audit says *where* it is broken.  This experiment audits every predicate
of the profiled NELL dataset under a shared annotation budget and
reports the per-predicate intervals plus the stratified global
estimate, routed through the runtime layer: the per-partition
trajectory stage shards over worker processes (``--workers`` /
``--chunk-size`` / ``--chunk-seconds``) and caches like any other cell,
bit-identically to the serial loop.
"""

from __future__ import annotations

from ..runtime import ParallelExecutor, PartitionedAuditCell, StudyPlan, execute
from ..stats.rng import derive_seed
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_partitioned_audit", "partitioned_audit_plan"]

_DATASET = "NELL"


def partitioned_audit_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    dataset: str = _DATASET,
) -> StudyPlan:
    """A single partitioned-audit cell, sharded over the KG's predicates."""
    cell = PartitionedAuditCell(
        key=("partitions", dataset),
        label=f"partitions/{dataset}",
        method="aHPD",
        dataset=dataset,
        epsilon=settings.epsilon,
        seed=derive_seed(settings.seed, 7_500),
    )
    return StudyPlan(settings=settings, cells=(cell,), name="partitions")


def run_partitioned_audit(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Audit every predicate of the NELL profile under a shared budget."""
    plan = partitioned_audit_plan(settings)
    result = execute(plan, executor=executor).results[("partitions", _DATASET)]
    report = ExperimentReport(
        experiment_id="partitions",
        title=(
            f"Per-predicate audit of {_DATASET} "
            f"(aHPD, alpha={settings.alpha}, MoE <= {settings.epsilon})"
        ),
        headers=(
            "predicate",
            "share",
            "annotated",
            "estimate",
            "interval",
            "converged",
        ),
    )
    for audit in sorted(result.partitions, key=lambda p: p.mu_hat):
        report.add_row(
            predicate=audit.partition,
            share=f"{audit.weight:.1%}",
            annotated=audit.n_annotated,
            estimate=f"{audit.mu_hat:.3f}",
            interval=(
                f"[{audit.interval.lower:.3f}, {audit.interval.upper:.3f}]"
            ),
            converged="yes" if audit.converged else "no",
        )
    worst = result.worst_partition
    report.notes.append(
        f"global accuracy {result.global_mu_hat:.3f} "
        f"(interval [{result.global_interval.lower:.3f}, "
        f"{result.global_interval.upper:.3f}]), "
        f"{result.cost.num_triples} annotations / "
        f"{result.cost_hours:.2f} modelled hours; curation priority: "
        f"'{worst.partition}' ({worst.mu_hat:.0%} accurate, "
        f"{worst.weight:.0%} of the KG)."
    )
    return report
