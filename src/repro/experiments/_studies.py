"""Internal helpers shared by the study-based experiment modules."""

from __future__ import annotations

from ..evaluation.framework import KGAccuracyEvaluator
from ..evaluation.runner import StudyResult, run_study
from ..exceptions import ValidationError
from ..intervals.base import IntervalMethod
from ..kg.base import TripleStore
from ..sampling.base import SamplingStrategy
from ..sampling.srs import SimpleRandomSampling
from ..sampling.twcs import TwoStageWeightedClusterSampling
from ..stats.rng import derive_seed
from .config import TWCS_M, ExperimentSettings

__all__ = ["build_strategy", "run_configuration"]


def build_strategy(kind: str, dataset: str) -> SamplingStrategy:
    """Instantiate a sampling strategy by name with the paper's m."""
    kind = kind.upper()
    if kind == "SRS":
        return SimpleRandomSampling()
    if kind == "TWCS":
        m = TWCS_M.get(dataset.upper())
        if m is None:
            raise ValidationError(f"no TWCS second-stage size configured for {dataset!r}")
        return TwoStageWeightedClusterSampling(m=m)
    raise ValidationError(f"unknown sampling strategy {kind!r}")


def run_configuration(
    kg: TripleStore,
    strategy: SamplingStrategy,
    method: IntervalMethod,
    settings: ExperimentSettings,
    alpha: float | None = None,
    label: str = "",
    seed_stream: int = 0,
) -> StudyResult:
    """Run one (dataset, strategy, method) Monte-Carlo study.

    Per-configuration seeds are derived from the settings seed and a
    caller-provided stream index so that adding configurations never
    perturbs existing ones.
    """
    evaluator = KGAccuracyEvaluator(
        kg=kg,
        strategy=strategy,
        method=method,
        config=settings.evaluation_config(alpha=alpha),
    )
    return run_study(
        evaluator,
        repetitions=settings.repetitions,
        seed=derive_seed(settings.seed, seed_stream),
        label=label or f"{strategy.name}/{method.name}",
    )
