"""Internal helpers shared by the study-based experiment modules.

Experiment modules describe their Monte-Carlo grids as
:class:`~repro.runtime.spec.StudyCell` tuples and execute them through
:func:`run_cells`, which routes through the runtime layer — giving
every grid-shaped workload worker-process parallelism, disk caching,
and resume for free (``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``, or an
explicit executor).

``run_configuration`` remains the serial single-cell primitive (the
runtime's study runner reproduces it exactly), and ``build_strategy``
the by-name strategy factory; both predate the runtime layer and stay
for direct use.
"""

from __future__ import annotations

from typing import Mapping

from ..evaluation.framework import KGAccuracyEvaluator
from ..evaluation.runner import StudyResult, run_study
from ..exceptions import ValidationError
from ..intervals.base import IntervalMethod
from ..kg.base import TripleStore
from ..runtime import ParallelExecutor, RunContext, StudyPlan, execute
from ..sampling.base import SamplingStrategy
from ..sampling.srs import SimpleRandomSampling
from ..sampling.twcs import TwoStageWeightedClusterSampling
from ..stats.rng import derive_seed
from .config import TWCS_M, ExperimentSettings

__all__ = ["build_strategy", "run_configuration", "strategy_spec", "run_cells"]


def build_strategy(kind: str, dataset: str) -> SamplingStrategy:
    """Instantiate a sampling strategy by name with the paper's m."""
    kind = kind.upper()
    if kind == "SRS":
        return SimpleRandomSampling()
    if kind == "TWCS":
        m = TWCS_M.get(dataset.upper())
        if m is None:
            raise ValidationError(f"no TWCS second-stage size configured for {dataset!r}")
        return TwoStageWeightedClusterSampling(m=m)
    raise ValidationError(f"unknown sampling strategy {kind!r}")


def strategy_spec(kind: str, dataset: str) -> str:
    """The runtime spec string for *kind* on *dataset*.

    Resolves the paper's per-dataset TWCS stage-2 cap at plan-build
    time so cells stay self-contained (``"TWCS:3"``, not ``"TWCS"``).
    """
    kind = kind.upper()
    if kind == "TWCS":
        m = TWCS_M.get(dataset.upper())
        if m is None:
            raise ValidationError(f"no TWCS second-stage size configured for {dataset!r}")
        return f"TWCS:{m}"
    if kind in ("SRS", "WCS", "STRAT"):
        return kind
    raise ValidationError(f"unknown sampling strategy {kind!r}")


def run_cells(
    plan: StudyPlan,
    executor: ParallelExecutor | None = None,
    context: "RunContext | None" = None,
) -> Mapping[tuple, StudyResult]:
    """Execute *plan* through the runtime; results keyed by cell key.

    Pass an *executor*, an immutable per-request *context* (see
    :class:`~repro.runtime.settings.RunContext`), or neither to run
    under the session default installed by
    :func:`~repro.runtime.executor.configure`.
    """
    return execute(plan, executor=executor, context=context).results


def run_configuration(
    kg: TripleStore,
    strategy: SamplingStrategy,
    method: IntervalMethod,
    settings: ExperimentSettings,
    alpha: float | None = None,
    label: str = "",
    seed_stream: int = 0,
) -> StudyResult:
    """Run one (dataset, strategy, method) Monte-Carlo study.

    Per-configuration seeds are derived from the settings seed and a
    caller-provided stream index so that adding configurations never
    perturbs existing ones.
    """
    evaluator = KGAccuracyEvaluator(
        kg=kg,
        strategy=strategy,
        method=method,
        config=settings.evaluation_config(alpha=alpha),
    )
    return run_study(
        evaluator,
        repetitions=settings.repetitions,
        seed=derive_seed(settings.seed, seed_stream),
        label=label or f"{strategy.name}/{method.name}",
    )
