"""Table 4 reproduction: scalability on SYN 100M.

Wald / Wilson / aHPD on the 101M-triple synthetic KG at ground-truth
accuracies 0.9 / 0.5 / 0.1, under SRS and TWCS (m = 5).  The paper's
point: dataset size does not affect convergence — the methods behave as
on the small datasets, with aHPD best where the accuracy is skewed and
tied with Wilson at mu = 0.5 — and the symmetric pair (0.9, 0.1) costs
the same.
"""

from __future__ import annotations

from ..evaluation.runner import StudyResult
from ..evaluation.significance import significance_markers
from ..kg.datasets import SYN100M_ACCURACIES
from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, TWCS_M, ExperimentSettings
from ._studies import run_cells
from .report import ExperimentReport

__all__ = ["run_table4", "table4_plan", "table4_studies"]

_METHOD_ORDER = ("Wald", "Wilson", "aHPD")


def table4_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    accuracies: tuple[float, ...] = SYN100M_ACCURACIES,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
) -> StudyPlan:
    """The Table 4 grid on SYN 100M: accuracies x strategies x methods."""
    cells: list[StudyCell] = []
    for mu_index, mu in enumerate(accuracies):
        for strategy_index, strategy_name in enumerate(strategies):
            strategy = (
                "SRS" if strategy_name == "SRS" else f"TWCS:{TWCS_M['SYN100M']}"
            )
            # Paired seeds per (mu, strategy) cell (see table3).
            stream = 2_000 + 10 * mu_index + strategy_index
            for method_name in _METHOD_ORDER:
                cells.append(
                    StudyCell(
                        key=(mu, strategy_name, method_name),
                        label=f"SYN100M(mu={mu})/{strategy_name}/{method_name}",
                        method=method_name,
                        dataset=f"SYN100M:{mu}",
                        strategy=strategy,
                        seed_stream=(stream,),
                    )
                )
    return StudyPlan(settings=settings, cells=tuple(cells), name="table4")


def table4_studies(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    accuracies: tuple[float, ...] = SYN100M_ACCURACIES,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
    executor: ParallelExecutor | None = None,
) -> dict[tuple[float, str, str], StudyResult]:
    """All Table 4 studies keyed by ``(mu, strategy, method)``."""
    plan = table4_plan(settings, accuracies=accuracies, strategies=strategies)
    return dict(run_cells(plan, executor=executor))


def run_table4(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    accuracies: tuple[float, ...] = SYN100M_ACCURACIES,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
) -> ExperimentReport:
    """Regenerate Table 4 (triples and cost on SYN 100M)."""
    studies = table4_studies(settings, accuracies=accuracies, strategies=strategies)
    headers: list[str] = ["sampling", "interval"]
    for mu in accuracies:
        headers.append(f"mu={mu:g} triples")
        headers.append(f"mu={mu:g} cost")
    report = ExperimentReport(
        experiment_id="table4",
        title=(
            "SYN 100M scalability (TWCS m=5, "
            f"alpha={settings.alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=tuple(headers),
    )
    for strategy_name in strategies:
        for method_name in _METHOD_ORDER:
            cells: dict[str, object] = {
                "sampling": strategy_name,
                "interval": method_name,
            }
            for mu in accuracies:
                study = studies[(mu, strategy_name, method_name)]
                markers = ""
                if method_name == "aHPD":
                    markers = significance_markers(
                        study,
                        versus_wald=studies[(mu, strategy_name, "Wald")],
                        versus_wilson=studies[(mu, strategy_name, "Wilson")],
                    )
                cells[f"mu={mu:g} triples"] = study.triples_summary.format(0)
                cells[f"mu={mu:g} cost"] = study.cost_summary.format(2) + markers
            report.add_row(**cells)
    report.notes.append(
        "† = aHPD vs Wald significant, ‡ = aHPD vs Wilson significant "
        "(independent t-tests on cost, p < 0.01)."
    )
    return report
