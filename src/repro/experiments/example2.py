"""Example 2 reproduction: informative priors on DBPEDIA.

An analyst auditing DBPEDIA (mu = 0.85) under TWCS already knows two
similar KGs with accuracies 0.80 and 0.90 and encodes them as
informative priors Beta(80, 20) and Beta(90, 10).  The paper reports
63 ± 36 triples / 0.72 ± 0.41 hours with those priors, versus 222 ± 83
triples / 2.55 ± 0.95 hours with the uninformative trio.
"""

from __future__ import annotations

from ..intervals.priors import BetaPrior
from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_cells, strategy_spec
from .report import ExperimentReport

__all__ = ["run_example2", "example2_plan", "EXAMPLE2_INFORMATIVE_PRIORS"]

#: The analyst's two similar-KG priors from the paper's Example 2.
EXAMPLE2_INFORMATIVE_PRIORS: tuple[BetaPrior, ...] = (
    BetaPrior(80.0, 20.0, name="Similar KG (0.80)"),
    BetaPrior(90.0, 10.0, name="Similar KG (0.90)"),
)


def example2_plan(settings: ExperimentSettings = DEFAULT_SETTINGS) -> StudyPlan:
    """The Example 2 pair: informative vs uninformative aHPD."""
    informative = tuple(
        (prior.a, prior.b, prior.name) for prior in EXAMPLE2_INFORMATIVE_PRIORS
    )
    twcs = strategy_spec("TWCS", "DBPEDIA")
    cells = (
        # Paired seeds: both configurations audit the same sample paths.
        StudyCell(
            key=("aHPD informative",),
            label="aHPD informative",
            method="aHPD",
            dataset="DBPEDIA",
            strategy=twcs,
            seed_stream=(5_000,),
            priors=informative,
        ),
        StudyCell(
            key=("aHPD uninformative",),
            label="aHPD uninformative",
            method="aHPD",
            dataset="DBPEDIA",
            strategy=twcs,
            seed_stream=(5_000,),
        ),
    )
    return StudyPlan(settings=settings, cells=cells, name="example2")


def run_example2(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Compare informative-prior aHPD with uninformative aHPD on DBPEDIA."""
    plan = example2_plan(settings)
    studies = run_cells(plan, executor=executor)
    report = ExperimentReport(
        experiment_id="example2",
        title=(
            "Informative vs uninformative aHPD on DBPEDIA under TWCS "
            f"(m=3, alpha={settings.alpha}, {settings.repetitions} reps)"
        ),
        headers=("configuration", "triples", "cost_hours"),
    )
    for label in ("aHPD informative", "aHPD uninformative"):
        study = studies[(label,)]
        report.add_row(
            configuration=label,
            triples=study.triples_summary.format(0),
            cost_hours=study.cost_summary.format(2),
        )
    report.notes.append(
        "Paper reports 63±36 triples / 0.72±0.41h (informative) vs "
        "222±83 / 2.55±0.95h (uninformative)."
    )
    return report
