"""Example 2 reproduction: informative priors on DBPEDIA.

An analyst auditing DBPEDIA (mu = 0.85) under TWCS already knows two
similar KGs with accuracies 0.80 and 0.90 and encodes them as
informative priors Beta(80, 20) and Beta(90, 10).  The paper reports
63 ± 36 triples / 0.72 ± 0.41 hours with those priors, versus 222 ± 83
triples / 2.55 ± 0.95 hours with the uninformative trio.
"""

from __future__ import annotations

from ..intervals.ahpd import AdaptiveHPD
from ..intervals.priors import BetaPrior
from ..kg.datasets import load_dataset
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import build_strategy, run_configuration
from .report import ExperimentReport

__all__ = ["run_example2", "EXAMPLE2_INFORMATIVE_PRIORS"]

#: The analyst's two similar-KG priors from the paper's Example 2.
EXAMPLE2_INFORMATIVE_PRIORS: tuple[BetaPrior, ...] = (
    BetaPrior(80.0, 20.0, name="Similar KG (0.80)"),
    BetaPrior(90.0, 10.0, name="Similar KG (0.90)"),
)


def run_example2(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    """Compare informative-prior aHPD with uninformative aHPD on DBPEDIA."""
    kg = load_dataset("DBPEDIA", seed=settings.dataset_seed)
    configurations = (
        ("aHPD informative", AdaptiveHPD(
            priors=EXAMPLE2_INFORMATIVE_PRIORS, solver=settings.solver
        )),
        ("aHPD uninformative", AdaptiveHPD(solver=settings.solver)),
    )
    report = ExperimentReport(
        experiment_id="example2",
        title=(
            "Informative vs uninformative aHPD on DBPEDIA under TWCS "
            f"(m=3, alpha={settings.alpha}, {settings.repetitions} reps)"
        ),
        headers=("configuration", "triples", "cost_hours"),
    )
    for label, method in configurations:
        # Paired seeds: both configurations audit the same sample paths.
        study = run_configuration(
            kg,
            build_strategy("TWCS", "DBPEDIA"),
            method,
            settings,
            label=label,
            seed_stream=5_000,
        )
        report.add_row(
            configuration=label,
            triples=study.triples_summary.format(0),
            cost_hours=study.cost_summary.format(2),
        )
    report.notes.append(
        "Paper reports 63±36 triples / 0.72±0.41h (informative) vs "
        "222±83 / 2.55±0.95h (uninformative)."
    )
    return report
