"""Evolving-KG audit experiment (paper Sec. 8, future work).

Scenario: a DBPEDIA-like KG is audited once, then receives content
batches over time and is re-audited after each batch.  The Bayesian
framing lets each audit's posterior seed the next audit's prior.  Two
regimes are measured:

* **stable** — new content has the same accuracy as the base KG; the
  carried prior is reliable and re-audits converge dramatically faster;
* **drift** — a massive update halves the accuracy; the carried prior
  is deceptive.  Because aHPD races the carried prior *against* the
  uninformative trio, the audit still converges correctly (the paper's
  noted limitation, mitigated by the competing-priors design).

The experiment is Monte-Carlo: every (regime, mode) cell replays its
full audit stream several times (``audit_study``'s multi-replication
arrays, sharded by the runtime like any repetition dimension), and the
report aggregates the replications as mean ± sd per regime and round.
Replication 0 reproduces the pre-runtime single-stream numbers exactly
— ``DynamicAuditor.audit_stream`` on the cell's audit seed — so the
original single-replication columns stay bit-identical alongside the
new aggregates.
"""

from __future__ import annotations

import numpy as np

from ..kg.evolution import UpdateBatchSpec, build_evolving_kg
from ..kg.graph import KnowledgeGraph
from ..runtime import DynamicAuditCell, ParallelExecutor, StudyPlan, execute
from ..stats.rng import derive_seed
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_dynamic_audit", "dynamic_audit_plan", "build_snapshot_stream"]

#: The two Sec.-8 regimes: (name, base accuracy, update accuracies).
SCENARIOS: tuple[tuple[str, float, tuple[float, ...]], ...] = (
    ("stable", 0.85, (0.85, 0.85)),
    ("drift", 0.85, (0.85, 0.45)),
)

_BASE_FACTS = 6_000
_UPDATE_FACTS = 3_000

#: Stream replications per cell, capped so the experiment's cost stays
#: bounded by the scenario (each replication is a full multi-round
#: audit of a ~10k-fact KG) rather than scaling with the protocol's
#: 1,000 Monte-Carlo repetitions.  Small settings lower it further so
#: smoke tests stay fast; the sd needs at least 2.
_MAX_REPLICATIONS = 5


def _replications(settings: ExperimentSettings) -> int:
    return max(2, min(_MAX_REPLICATIONS, settings.repetitions))


def build_snapshot_stream(
    base_accuracy: float,
    update_accuracies: tuple[float, ...],
    seed: int,
    base_facts: int = 6_000,
    update_facts: int = 3_000,
) -> list[KnowledgeGraph]:
    """A growing KG: a base snapshot plus cumulative update batches."""
    updates = [
        UpdateBatchSpec(num_facts=update_facts, accuracy=accuracy)
        for accuracy in update_accuracies
    ]
    return build_evolving_kg(
        base_facts=base_facts,
        base_accuracy=base_accuracy,
        updates=updates,
        seed=seed,
    )


def dynamic_audit_plan(settings: ExperimentSettings = DEFAULT_SETTINGS) -> StudyPlan:
    """The dynamic-audit grid: (regime) x (carried, independent).

    Each cell replays its full audit stream :func:`_replications` times
    (``audit_study``'s multi-replication arrays; the runtime shards the
    replications like any repetition dimension).  Replication 0 of a
    :class:`~repro.runtime.spec.DynamicAuditCell` is exactly the
    pre-runtime ``DynamicAuditor.audit_stream`` run, so the routed
    experiment reproduces its original single-stream numbers bit for
    bit while adding the Monte-Carlo aggregate — and keeps worker
    fan-out, disk caching, and resume.
    """
    stream_seed = derive_seed(settings.seed, 7_000)
    cells = tuple(
        DynamicAuditCell(
            key=(regime, mode),
            label=f"dynamic/{regime}/{mode}",
            method="aHPD",
            base_facts=_BASE_FACTS,
            base_accuracy=base_mu,
            updates=tuple((_UPDATE_FACTS, accuracy, 0.3) for accuracy in updates),
            stream_seed=stream_seed,
            strategy="TWCS:3",
            carryover=carryover,
            seed=settings.seed,
            repetitions=_replications(settings),
        )
        for regime, base_mu, updates in SCENARIOS
        for mode, carryover in (("carried", 1.0), ("independent", 0.0))
    )
    return StudyPlan(settings=settings, cells=cells, name="dynamic")


def _mean_sd(values: np.ndarray) -> str:
    """``mean ± sd`` (sample sd) of one round's replication values."""
    mean = float(np.mean(values))
    sd = float(np.std(values, ddof=1)) if len(values) > 1 else 0.0
    return f"{mean:.1f} ± {sd:.1f}"


def run_dynamic_audit(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Compare carried-prior audits against independent re-audits.

    The single-replication columns (``estimate``, ``triples``) report
    replication 0 — the pre-runtime single-stream numbers, unchanged —
    while the ``mc`` columns aggregate every stream replication of the
    cell as mean ± sample sd of the annotated-triples cost per round.
    """
    plan = dynamic_audit_plan(settings)
    results = execute(plan, executor=executor).results
    replications = _replications(settings)
    report = ExperimentReport(
        experiment_id="dynamic",
        title=(
            "Evolving-KG audits with posterior carry-over "
            f"(TWCS m=3, alpha={settings.alpha}, "
            f"{replications} stream replications)"
        ),
        headers=(
            "regime",
            "round",
            "true_mu",
            "estimate",
            "triples (carried)",
            "triples (independent)",
            "mc carried (mean±sd)",
            "mc independent (mean±sd)",
        ),
    )
    for regime, base_mu, updates in SCENARIOS:
        snapshots = build_snapshot_stream(
            base_mu, updates, seed=derive_seed(settings.seed, 7_000)
        )
        carried_study = results[(regime, "carried")]
        independent_study = results[(regime, "independent")]
        carried = carried_study.streams[0]
        independent = independent_study.streams[0]
        carried_triples = carried_study.triples
        independent_triples = independent_study.triples
        for rec_c, rec_i, kg in zip(carried, independent, snapshots):
            rnd = rec_c.round_index
            report.add_row(
                regime=regime,
                round=rnd,
                true_mu=round(kg.accuracy, 3),
                estimate=round(rec_c.result.mu_hat, 3),
                **{
                    "triples (carried)": rec_c.result.n_triples,
                    "triples (independent)": rec_i.result.n_triples,
                    "mc carried (mean±sd)": _mean_sd(carried_triples[:, rnd]),
                    "mc independent (mean±sd)": _mean_sd(
                        independent_triples[:, rnd]
                    ),
                },
            )
    report.notes.append(
        "Carried priors compete inside aHPD alongside the uninformative "
        "trio, so a deceptive prior (drift regime) slows but cannot "
        "corrupt the audit."
    )
    report.notes.append(
        f"mc columns aggregate {replications} independent stream "
        "replications (mean ± sample sd of annotated triples per round); "
        "estimate/triples columns report replication 0, the original "
        "single-stream numbers."
    )
    return report
