"""Evolving-KG audit experiment (paper Sec. 8, future work).

Scenario: a DBPEDIA-like KG is audited once, then receives content
batches over time and is re-audited after each batch.  The Bayesian
framing lets each audit's posterior seed the next audit's prior.  Two
regimes are measured:

* **stable** — new content has the same accuracy as the base KG; the
  carried prior is reliable and re-audits converge dramatically faster;
* **drift** — a massive update halves the accuracy; the carried prior
  is deceptive.  Because aHPD races the carried prior *against* the
  uninformative trio, the audit still converges correctly (the paper's
  noted limitation, mitigated by the competing-priors design).
"""

from __future__ import annotations

from ..kg.evolution import UpdateBatchSpec, build_evolving_kg
from ..kg.graph import KnowledgeGraph
from ..runtime import DynamicAuditCell, ParallelExecutor, StudyPlan, execute
from ..stats.rng import derive_seed
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_dynamic_audit", "dynamic_audit_plan", "build_snapshot_stream"]

#: The two Sec.-8 regimes: (name, base accuracy, update accuracies).
SCENARIOS: tuple[tuple[str, float, tuple[float, ...]], ...] = (
    ("stable", 0.85, (0.85, 0.85)),
    ("drift", 0.85, (0.85, 0.45)),
)

_BASE_FACTS = 6_000
_UPDATE_FACTS = 3_000


def build_snapshot_stream(
    base_accuracy: float,
    update_accuracies: tuple[float, ...],
    seed: int,
    base_facts: int = 6_000,
    update_facts: int = 3_000,
) -> list[KnowledgeGraph]:
    """A growing KG: a base snapshot plus cumulative update batches."""
    updates = [
        UpdateBatchSpec(num_facts=update_facts, accuracy=accuracy)
        for accuracy in update_accuracies
    ]
    return build_evolving_kg(
        base_facts=base_facts,
        base_accuracy=base_accuracy,
        updates=updates,
        seed=seed,
    )


def dynamic_audit_plan(settings: ExperimentSettings = DEFAULT_SETTINGS) -> StudyPlan:
    """The dynamic-audit grid: (regime) x (carried, independent).

    Each cell replays a single audit stream (``repetitions=1``):
    repetition 0 of a :class:`~repro.runtime.spec.DynamicAuditCell` is
    exactly the pre-runtime ``DynamicAuditor.audit_stream`` run, so the
    routed experiment reproduces its serial numbers bit for bit while
    gaining worker fan-out, disk caching, and resume.
    """
    stream_seed = derive_seed(settings.seed, 7_000)
    cells = tuple(
        DynamicAuditCell(
            key=(regime, mode),
            label=f"dynamic/{regime}/{mode}",
            method="aHPD",
            base_facts=_BASE_FACTS,
            base_accuracy=base_mu,
            updates=tuple((_UPDATE_FACTS, accuracy, 0.3) for accuracy in updates),
            stream_seed=stream_seed,
            strategy="TWCS:3",
            carryover=carryover,
            seed=settings.seed,
            repetitions=1,
        )
        for regime, base_mu, updates in SCENARIOS
        for mode, carryover in (("carried", 1.0), ("independent", 0.0))
    )
    return StudyPlan(settings=settings, cells=cells, name="dynamic")


def run_dynamic_audit(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Compare carried-prior audits against independent re-audits."""
    plan = dynamic_audit_plan(settings)
    results = execute(plan, executor=executor).results
    report = ExperimentReport(
        experiment_id="dynamic",
        title=(
            "Evolving-KG audits with posterior carry-over "
            f"(TWCS m=3, alpha={settings.alpha})"
        ),
        headers=(
            "regime",
            "round",
            "true_mu",
            "estimate",
            "triples (carried)",
            "triples (independent)",
        ),
    )
    for regime, base_mu, updates in SCENARIOS:
        snapshots = build_snapshot_stream(
            base_mu, updates, seed=derive_seed(settings.seed, 7_000)
        )
        carried = results[(regime, "carried")].streams[0]
        independent = results[(regime, "independent")].streams[0]
        for rec_c, rec_i, kg in zip(carried, independent, snapshots):
            report.add_row(
                regime=regime,
                round=rec_c.round_index,
                true_mu=round(kg.accuracy, 3),
                estimate=round(rec_c.result.mu_hat, 3),
                **{
                    "triples (carried)": rec_c.result.n_triples,
                    "triples (independent)": rec_i.result.n_triples,
                },
            )
    report.notes.append(
        "Carried priors compete inside aHPD alongside the uninformative "
        "trio, so a deceptive prior (drift regime) slows but cannot "
        "corrupt the audit."
    )
    return report
