"""Human-machine collaboration experiment (paper Sec. 7 integration).

Measures the manual-cost reduction from plugging aHPD into an
inference-assisted evaluation (Qi et al. [46]'s mechanism): on a KG
with inferable structure, sampled facts whose labels the rule engine
already knows cost nothing, and every manual verification propagates.
Compared against the same audit without inference, with paired seeds.
"""

from __future__ import annotations

import numpy as np

from ..evaluation.framework import KGAccuracyEvaluator
from ..inference.engine import InferenceEngine
from ..inference.evaluation import InferenceAssistedEvaluator
from ..inference.generators import default_rules, generate_inferable_kg
from ..intervals.ahpd import AdaptiveHPD
from ..sampling.twcs import TwoStageWeightedClusterSampling
from ..stats.describe import summarize
from ..stats.rng import derive_seed
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_human_machine"]


def run_human_machine(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    accuracy: float = 0.80,
) -> ExperimentReport:
    """Manual effort with and without inference assistance."""
    # A rule-dense KG: half the functional groups carry competing
    # candidates, so cluster draws regularly hit inferable siblings.
    kg = generate_inferable_kg(
        distractor_rate=0.5, accuracy=accuracy, seed=settings.dataset_seed
    )
    strategy = TwoStageWeightedClusterSampling(m=3)
    method = AdaptiveHPD(solver=settings.solver)
    config = settings.evaluation_config()

    assisted = InferenceAssistedEvaluator(
        kg=kg,
        strategy=strategy,
        method=method,
        engine_factory=lambda: InferenceEngine(kg, default_rules()),
        config=config,
    )
    manual_only = KGAccuracyEvaluator(
        kg=kg, strategy=strategy, method=method, config=config
    )

    a_manual = np.empty(settings.repetitions, dtype=float)
    a_cost = np.empty(settings.repetitions, dtype=float)
    a_share = np.empty(settings.repetitions, dtype=float)
    a_est = np.empty(settings.repetitions, dtype=float)
    m_triples = np.empty(settings.repetitions, dtype=float)
    m_cost = np.empty(settings.repetitions, dtype=float)
    for i in range(settings.repetitions):
        seed = derive_seed(settings.seed, 13_000, i)
        result = assisted.run(rng=seed)
        a_manual[i] = result.n_manual
        a_cost[i] = result.cost_hours
        a_share[i] = result.inference_share
        a_est[i] = result.mu_hat
        baseline = manual_only.run(rng=seed)  # paired sample path
        m_triples[i] = baseline.n_triples
        m_cost[i] = baseline.cost_hours

    report = ExperimentReport(
        experiment_id="human-machine",
        title=(
            "Inference-assisted vs manual-only aHPD audits "
            f"(TWCS m=3, mu={accuracy}, alpha={settings.alpha}, "
            f"{settings.repetitions} reps)"
        ),
        headers=("configuration", "manual triples", "cost_hours", "inferred share"),
    )
    report.add_row(
        configuration="aHPD + inference",
        **{
            "manual triples": summarize(a_manual).format(0),
            "cost_hours": summarize(a_cost).format(2),
            "inferred share": f"{float(a_share.mean()):.0%}",
        },
    )
    report.add_row(
        configuration="aHPD manual-only",
        **{
            "manual triples": summarize(m_triples).format(0),
            "cost_hours": summarize(m_cost).format(2),
            "inferred share": "0%",
        },
    )
    bias = float(a_est.mean()) - kg.accuracy
    saving = 1.0 - float(a_cost.mean()) / float(m_cost.mean())
    report.notes.append(
        f"inference saves {saving:.0%} of the manual cost; "
        f"estimate bias {bias:+.3f} (rules are sound, so the estimator "
        "stays unbiased)."
    )
    return report
