"""Sequential-coverage experiment (extension of paper Sec. 3.3).

Measures what survives the stopping rule: the fraction of *stopped*
audits whose final interval contains the true accuracy, for each
interval method, across the accuracy regimes of the paper's datasets.
Fixed-n coverage (the ``coverage`` experiment) isolates the interval;
this experiment evaluates the procedure practitioners actually run.
"""

from __future__ import annotations

from typing import Sequence

from ..runtime import ParallelExecutor, SequentialCoverageCell, StudyPlan, execute
from ..stats.rng import derive_seed
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_sequential_coverage", "sequential_coverage_plan", "SEQUENTIAL_MUS"]

#: Accuracy regimes mirroring the paper's datasets.
SEQUENTIAL_MUS: tuple[float, ...] = (0.99, 0.91, 0.85, 0.54)

_METHOD_SPECS = ("Wald", "Wilson", "aHPD")


def sequential_coverage_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    mus: Sequence[float] = SEQUENTIAL_MUS,
) -> StudyPlan:
    """The stopped-interval coverage grid: methods x accuracy regimes."""
    cells = tuple(
        SequentialCoverageCell(
            key=(spec, mu),
            label=f"sequential/{spec}/mu={mu:g}",
            method=spec,
            mu=mu,
            seed=derive_seed(settings.seed, 10_000, mi, ui),
        )
        for mi, spec in enumerate(_METHOD_SPECS)
        for ui, mu in enumerate(mus)
    )
    return StudyPlan(settings=settings, cells=cells, name="sequential-coverage")


def run_sequential_coverage(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    mus: Sequence[float] = SEQUENTIAL_MUS,
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Coverage of the stopped interval per method and accuracy."""
    plan = sequential_coverage_plan(settings, mus=mus)
    results = execute(plan, executor=executor).results
    report = ExperimentReport(
        experiment_id="sequential-coverage",
        title=(
            "Coverage of the stopped interval under the full iterative "
            f"procedure (alpha={settings.alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=(
            "method",
            *[f"mu={mu:g}" for mu in mus],
            "mean n @0.91",
        ),
    )
    for spec in _METHOD_SPECS:
        cells: dict[str, object] = {"method": results[(spec, mus[0])].method}
        mean_n = None
        for mu in mus:
            result = results[(spec, mu)]
            cells[f"mu={mu:g}"] = f"{result.coverage:.1%}"
            if mu == 0.91:
                mean_n = result.mean_stopping_n
        cells["mean n @0.91"] = f"{mean_n:.0f}" if mean_n is not None else "-"
        report.add_row(**cells)
    report.notes.append(
        "Optional stopping erodes frequentist coverage relative to the "
        "fixed-n audit; Wald additionally collapses near the boundary "
        "(its zero-width stop is a guaranteed miss unless mu_hat is "
        "exactly right)."
    )
    return report
