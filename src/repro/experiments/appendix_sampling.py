"""Online-appendix experiment: additional sampling strategies.

The paper's online repository evaluates sampling strategies beyond the
SRS / TWCS pair of the main text and reports results "consistent with
those given in the main text".  This experiment runs the full strategy
family — SRS, TWCS (m=3), one-stage WCS, and stratified-by-predicate
sampling — under aHPD on the real-profile datasets, reporting annotated
triples and cost so the designs' cost/precision trade-offs are visible:

* TWCS trades a mild triple-count penalty for large entity-
  identification savings (cheapest overall);
* WCS saves even more per entity but over-annotates large clusters;
* stratification helps when labels correlate with predicates and is
  otherwise SRS-equivalent.
"""

from __future__ import annotations

from ..evaluation.runner import StudyResult
from ..intervals.ahpd import AdaptiveHPD
from ..kg.datasets import load_dataset
from ..sampling.srs import SimpleRandomSampling
from ..sampling.stratified import StratifiedPredicateSampling
from ..sampling.twcs import TwoStageWeightedClusterSampling
from ..sampling.wcs import WeightedClusterSampling
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_configuration
from .report import ExperimentReport

__all__ = ["run_appendix_sampling", "appendix_sampling_studies"]

_STRATEGY_ORDER = ("SRS", "TWCS", "WCS", "STRAT")


def _make_strategy(name: str):
    if name == "SRS":
        return SimpleRandomSampling()
    if name == "TWCS":
        return TwoStageWeightedClusterSampling(m=3)
    if name == "WCS":
        return WeightedClusterSampling()
    return StratifiedPredicateSampling()


def appendix_sampling_studies(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> dict[tuple[str, str], StudyResult]:
    """Studies keyed by ``(dataset, strategy)`` under aHPD."""
    studies: dict[tuple[str, str], StudyResult] = {}
    for dataset_index, dataset in enumerate(settings.datasets):
        kg = load_dataset(dataset, seed=settings.dataset_seed)
        for strategy_name in _STRATEGY_ORDER:
            studies[(dataset, strategy_name)] = run_configuration(
                kg,
                _make_strategy(strategy_name),
                AdaptiveHPD(solver=settings.solver),
                settings,
                label=f"{dataset}/{strategy_name}/aHPD",
                seed_stream=9_000 + dataset_index,
            )
    return studies


def run_appendix_sampling(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> ExperimentReport:
    """Regenerate the online-appendix strategy comparison."""
    studies = appendix_sampling_studies(settings)
    headers: list[str] = ["sampling"]
    for dataset in settings.datasets:
        headers.append(f"{dataset} triples")
        headers.append(f"{dataset} cost")
    report = ExperimentReport(
        experiment_id="appendix-sampling",
        title=(
            "Sampling-strategy family under aHPD "
            f"(alpha={settings.alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=tuple(headers),
    )
    for strategy_name in _STRATEGY_ORDER:
        cells: dict[str, object] = {"sampling": strategy_name}
        for dataset in settings.datasets:
            study = studies[(dataset, strategy_name)]
            cells[f"{dataset} triples"] = study.triples_summary.format(0)
            cells[f"{dataset} cost"] = study.cost_summary.format(2)
        report.add_row(**cells)
    report.notes.append(
        "Paper (online appendix): additional strategies behave "
        "consistently with the main-text SRS/TWCS results."
    )
    return report
