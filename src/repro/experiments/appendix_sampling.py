"""Online-appendix experiment: additional sampling strategies.

The paper's online repository evaluates sampling strategies beyond the
SRS / TWCS pair of the main text and reports results "consistent with
those given in the main text".  This experiment runs the full strategy
family — SRS, TWCS (m=3), one-stage WCS, and stratified-by-predicate
sampling — under aHPD on the real-profile datasets, reporting annotated
triples and cost so the designs' cost/precision trade-offs are visible:

* TWCS trades a mild triple-count penalty for large entity-
  identification savings (cheapest overall);
* WCS saves even more per entity but over-annotates large clusters;
* stratification helps when labels correlate with predicates and is
  otherwise SRS-equivalent.
"""

from __future__ import annotations

from ..evaluation.runner import StudyResult
from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_cells
from .report import ExperimentReport

__all__ = ["run_appendix_sampling", "appendix_sampling_plan", "appendix_sampling_studies"]

_STRATEGY_ORDER = ("SRS", "TWCS", "WCS", "STRAT")
#: The appendix fixes m=3 for TWCS on every real profile.
_STRATEGY_SPECS = {"SRS": "SRS", "TWCS": "TWCS:3", "WCS": "WCS", "STRAT": "STRAT"}


def appendix_sampling_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> StudyPlan:
    """The appendix grid: the full strategy family under aHPD."""
    cells: list[StudyCell] = []
    for dataset_index, dataset in enumerate(settings.datasets):
        for strategy_name in _STRATEGY_ORDER:
            cells.append(
                StudyCell(
                    key=(dataset, strategy_name),
                    label=f"{dataset}/{strategy_name}/aHPD",
                    method="aHPD",
                    dataset=dataset,
                    strategy=_STRATEGY_SPECS[strategy_name],
                    seed_stream=(9_000 + dataset_index,),
                )
            )
    return StudyPlan(settings=settings, cells=tuple(cells), name="appendix-sampling")


def appendix_sampling_studies(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    executor: ParallelExecutor | None = None,
) -> dict[tuple[str, str], StudyResult]:
    """Studies keyed by ``(dataset, strategy)`` under aHPD."""
    plan = appendix_sampling_plan(settings)
    return dict(run_cells(plan, executor=executor))


def run_appendix_sampling(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> ExperimentReport:
    """Regenerate the online-appendix strategy comparison."""
    studies = appendix_sampling_studies(settings)
    headers: list[str] = ["sampling"]
    for dataset in settings.datasets:
        headers.append(f"{dataset} triples")
        headers.append(f"{dataset} cost")
    report = ExperimentReport(
        experiment_id="appendix-sampling",
        title=(
            "Sampling-strategy family under aHPD "
            f"(alpha={settings.alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=tuple(headers),
    )
    for strategy_name in _STRATEGY_ORDER:
        cells: dict[str, object] = {"sampling": strategy_name}
        for dataset in settings.datasets:
            study = studies[(dataset, strategy_name)]
            cells[f"{dataset} triples"] = study.triples_summary.format(0)
            cells[f"{dataset} cost"] = study.cost_summary.format(2)
        report.add_row(**cells)
    report.notes.append(
        "Paper (online appendix): additional strategies behave "
        "consistently with the main-text SRS/TWCS results."
    )
    return report
