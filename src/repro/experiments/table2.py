"""Table 2 reproduction: prior selection under SRS.

ET and HPD credible intervals under the Kerman, Jeffreys, and Uniform
priors — plus aHPD equipped with all three — on the four real-profile
datasets, sampled with SRS.  The paper's findings to reproduce:

* Kerman is best in the extreme accuracy regions (YAGO, NELL, DBPEDIA),
  Uniform in the central one (FACTBENCH), Jeffreys never;
* HPD dominates ET wherever the accuracy is skewed and ties on the
  quasi-symmetric FACTBENCH;
* aHPD matches the best fixed-prior HPD everywhere.
"""

from __future__ import annotations

from ..evaluation.runner import StudyResult
from ..intervals.ahpd import AdaptiveHPD
from ..intervals.et import ETCredibleInterval
from ..intervals.hpd import HPDCredibleInterval
from ..intervals.priors import UNINFORMATIVE_PRIORS
from ..kg.datasets import load_dataset
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import build_strategy, run_configuration
from .report import ExperimentReport

__all__ = ["run_table2", "table2_studies"]


def table2_studies(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> dict[tuple[str, str], StudyResult]:
    """All Table 2 studies keyed by ``(dataset, method-label)``."""
    methods = []
    for prior in UNINFORMATIVE_PRIORS:
        methods.append(("ET", prior.name, ETCredibleInterval(prior=prior)))
    for prior in UNINFORMATIVE_PRIORS:
        methods.append(
            ("HPD", prior.name, HPDCredibleInterval(prior=prior, solver=settings.solver))
        )
    methods.append(("aHPD", "{K, J, U}", AdaptiveHPD(solver=settings.solver)))

    studies: dict[tuple[str, str], StudyResult] = {}
    for dataset_index, dataset in enumerate(settings.datasets):
        kg = load_dataset(dataset, seed=settings.dataset_seed)
        for family, prior_name, method in methods:
            label = f"{family}[{prior_name}]"
            # Paired seeds: every method replays the same sample paths,
            # so the theorem-backed orderings (HPD <= ET per prior, aHPD
            # <= every HPD) hold run by run, not just in expectation.
            studies[(dataset, label)] = run_configuration(
                kg,
                build_strategy("SRS", dataset),
                method,
                settings,
                label=f"{dataset}/{label}",
                seed_stream=dataset_index,
            )
    return studies


def run_table2(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    """Regenerate Table 2 (annotated triples, mean ± std)."""
    studies = table2_studies(settings)
    method_labels = [
        "ET[Kerman]",
        "ET[Jeffreys]",
        "ET[Uniform]",
        "HPD[Kerman]",
        "HPD[Jeffreys]",
        "HPD[Uniform]",
        "aHPD[{K, J, U}]",
    ]
    report = ExperimentReport(
        experiment_id="table2",
        title=(
            "ET / HPD / aHPD triples to convergence under SRS "
            f"(alpha={settings.alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=("interval", *settings.datasets),
    )
    for label in method_labels:
        cells: dict[str, object] = {"interval": label}
        for dataset in settings.datasets:
            cells[dataset] = studies[(dataset, label)].triples_summary.format(0)
        report.add_row(**cells)
    # Annotate per-dataset winners within each family.
    for dataset in settings.datasets:
        for family in ("ET", "HPD"):
            family_labels = [l for l in method_labels if l.startswith(f"{family}[")]
            best = min(
                family_labels,
                key=lambda l: studies[(dataset, l)].triples.mean(),
            )
            report.notes.append(f"{dataset}: best {family} prior = {best}")
    return report
