"""Table 2 reproduction: prior selection under SRS.

ET and HPD credible intervals under the Kerman, Jeffreys, and Uniform
priors — plus aHPD equipped with all three — on the four real-profile
datasets, sampled with SRS.  The paper's findings to reproduce:

* Kerman is best in the extreme accuracy regions (YAGO, NELL, DBPEDIA),
  Uniform in the central one (FACTBENCH), Jeffreys never;
* HPD dominates ET wherever the accuracy is skewed and ties on the
  quasi-symmetric FACTBENCH;
* aHPD matches the best fixed-prior HPD everywhere.
"""

from __future__ import annotations

from ..evaluation.runner import StudyResult
from ..intervals.priors import UNINFORMATIVE_PRIORS
from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_cells
from .report import ExperimentReport

__all__ = ["run_table2", "table2_plan", "table2_studies"]


def table2_plan(settings: ExperimentSettings = DEFAULT_SETTINGS) -> StudyPlan:
    """The Table 2 grid: 7 interval methods x the real-profile datasets."""
    methods = [("ET", prior.name, f"ET:{prior.name}") for prior in UNINFORMATIVE_PRIORS]
    methods += [
        ("HPD", prior.name, f"HPD:{prior.name}") for prior in UNINFORMATIVE_PRIORS
    ]
    methods.append(("aHPD", "{K, J, U}", "aHPD"))

    cells: list[StudyCell] = []
    for dataset_index, dataset in enumerate(settings.datasets):
        for family, prior_name, method_spec in methods:
            label = f"{family}[{prior_name}]"
            # Paired seeds: every method replays the same sample paths,
            # so the theorem-backed orderings (HPD <= ET per prior, aHPD
            # <= every HPD) hold run by run, not just in expectation.
            cells.append(
                StudyCell(
                    key=(dataset, label),
                    label=f"{dataset}/{label}",
                    method=method_spec,
                    dataset=dataset,
                    strategy="SRS",
                    seed_stream=(dataset_index,),
                )
            )
    return StudyPlan(settings=settings, cells=tuple(cells), name="table2")


def table2_studies(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    executor: ParallelExecutor | None = None,
) -> dict[tuple[str, str], StudyResult]:
    """All Table 2 studies keyed by ``(dataset, method-label)``."""
    plan = table2_plan(settings)
    return dict(run_cells(plan, executor=executor))


def run_table2(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ExperimentReport:
    """Regenerate Table 2 (annotated triples, mean ± std)."""
    studies = table2_studies(settings)
    method_labels = [
        "ET[Kerman]",
        "ET[Jeffreys]",
        "ET[Uniform]",
        "HPD[Kerman]",
        "HPD[Jeffreys]",
        "HPD[Uniform]",
        "aHPD[{K, J, U}]",
    ]
    report = ExperimentReport(
        experiment_id="table2",
        title=(
            "ET / HPD / aHPD triples to convergence under SRS "
            f"(alpha={settings.alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=("interval", *settings.datasets),
    )
    for label in method_labels:
        cells: dict[str, object] = {"interval": label}
        for dataset in settings.datasets:
            cells[dataset] = studies[(dataset, label)].triples_summary.format(0)
        report.add_row(**cells)
    # Annotate per-dataset winners within each family.
    for dataset in settings.datasets:
        for family in ("ET", "HPD"):
            family_labels = [l for l in method_labels if l.startswith(f"{family}[")]
            best = min(
                family_labels,
                key=lambda l: studies[(dataset, l)].triples.mean(),
            )
            report.notes.append(f"{dataset}: best {family} prior = {best}")
    return report
