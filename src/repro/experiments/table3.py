"""Table 3 reproduction: aHPD vs Wald and Wilson on the real profiles.

The paper's headline efficiency table: annotated triples and annotation
cost (hours) for Wald, Wilson, and aHPD under both SRS and TWCS (m = 3)
on YAGO, NELL, DBPEDIA, and FACTBENCH — with independent t-tests
(p < 0.01) between aHPD and each baseline.

Findings to reproduce: aHPD statistically beats both baselines on the
skewed datasets (YAGO, NELL, DBPEDIA) and ties Wilson on the
quasi-symmetric FACTBENCH.
"""

from __future__ import annotations

from ..evaluation.runner import StudyResult
from ..evaluation.significance import significance_markers
from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_cells, strategy_spec
from .report import ExperimentReport

__all__ = ["run_table3", "table3_plan", "table3_studies"]

_METHOD_ORDER = ("Wald", "Wilson", "aHPD")


def table3_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
) -> StudyPlan:
    """The Table 3 grid: datasets x strategies x {Wald, Wilson, aHPD}."""
    cells: list[StudyCell] = []
    for dataset_index, dataset in enumerate(settings.datasets):
        for strategy_index, strategy_name in enumerate(strategies):
            # Paired seeds per (dataset, strategy) cell: all three
            # interval methods replay the same sample paths, which makes
            # the efficiency comparison a within-path one (and leaves
            # the independent t-test conservative).
            stream = 1_000 + 10 * dataset_index + strategy_index
            for method_name in _METHOD_ORDER:
                cells.append(
                    StudyCell(
                        key=(dataset, strategy_name, method_name),
                        label=f"{dataset}/{strategy_name}/{method_name}",
                        method=method_name,
                        dataset=dataset,
                        strategy=strategy_spec(strategy_name, dataset),
                        seed_stream=(stream,),
                    )
                )
    return StudyPlan(settings=settings, cells=tuple(cells), name="table3")


def table3_studies(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
    executor: ParallelExecutor | None = None,
) -> dict[tuple[str, str, str], StudyResult]:
    """All Table 3 studies keyed by ``(dataset, strategy, method)``."""
    plan = table3_plan(settings, strategies=strategies)
    return dict(run_cells(plan, executor=executor))


def run_table3(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    strategies: tuple[str, ...] = ("SRS", "TWCS"),
) -> ExperimentReport:
    """Regenerate Table 3 (triples and cost, with dagger markers)."""
    studies = table3_studies(settings, strategies=strategies)
    headers: list[str] = ["sampling", "interval"]
    for dataset in settings.datasets:
        headers.append(f"{dataset} triples")
        headers.append(f"{dataset} cost")
    report = ExperimentReport(
        experiment_id="table3",
        title=(
            "Wald / Wilson / aHPD efficiency "
            f"(alpha={settings.alpha}, eps={settings.epsilon}, "
            f"{settings.repetitions} reps)"
        ),
        headers=tuple(headers),
    )
    for strategy_name in strategies:
        for method_name in _METHOD_ORDER:
            cells: dict[str, object] = {
                "sampling": strategy_name,
                "interval": method_name,
            }
            for dataset in settings.datasets:
                study = studies[(dataset, strategy_name, method_name)]
                markers = ""
                if method_name == "aHPD":
                    markers = significance_markers(
                        study,
                        versus_wald=studies[(dataset, strategy_name, "Wald")],
                        versus_wilson=studies[(dataset, strategy_name, "Wilson")],
                    )
                cells[f"{dataset} triples"] = study.triples_summary.format(0)
                cells[f"{dataset} cost"] = study.cost_summary.format(2) + markers
            report.add_row(**cells)
    report.notes.append(
        "† = aHPD vs Wald significant, ‡ = aHPD vs Wilson significant "
        "(independent t-tests on cost, p < 0.01)."
    )
    return report
