"""Figure 2 reproduction: ET vs HPD across posterior skewness.

The paper's Figure 2 contrasts ET and HPD credible intervals on three
posteriors of increasing skewness.  Quantitatively it reports that the
probability mass ET "wastes" — the mass of any region covered by ET but
outside the HPD region, relative to the mass of the HPD region ET
excludes *of equal width* — is below 75% in the moderately skewed case
and below 20% in the highly skewed case.

We reproduce the three scenarios with realistic annotation posteriors
(n = 30 under the Jeffreys prior at increasing accuracy) and compute:

* both intervals and their widths (HPD must never be wider);
* the equal-width mass ratio described above, maximised over all
  admissible regions (the most favourable region for ET), so the
  paper's "always less than" claims are checked against the worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_alpha
from ..intervals.et import et_bounds
from ..intervals.hpd import hpd_bounds
from ..intervals.posterior import BetaPosterior
from ..intervals.priors import JEFFREYS
from .config import DEFAULT_SETTINGS, ExperimentSettings
from .report import ExperimentReport

__all__ = ["run_figure2", "SkewScenario", "FIGURE2_SCENARIOS", "et_waste_ratio"]


@dataclass(frozen=True)
class SkewScenario:
    """One panel of Figure 2: an annotation outcome and its posterior."""

    label: str
    tau: float
    n: float

    def posterior(self) -> BetaPosterior:
        """Jeffreys posterior of the annotation outcome."""
        return BetaPosterior.from_counts(JEFFREYS, self.tau, self.n)


#: Panels (a)-(c): symmetric, moderately skewed, highly skewed —
#: annotation outcomes of 30 triples at accuracies 0.5 / 0.9 / ~0.97.
FIGURE2_SCENARIOS: tuple[SkewScenario, ...] = (
    SkewScenario("symmetric", tau=15.0, n=30.0),
    SkewScenario("moderately skewed", tau=27.0, n=30.0),
    SkewScenario("highly skewed", tau=29.0, n=30.0),
)


def et_waste_ratio(posterior: BetaPosterior, alpha: float, solver: str = "newton") -> float:
    """Worst-case mass ratio of ET's non-HPD coverage vs excluded HPD.

    Let ``w`` be the width of the HPD region that the ET interval
    excludes.  Among all width-``w`` regions covered by ET but outside
    the HPD interval, take the one with maximal posterior mass and
    return ``mass(best non-HPD region) / mass(excluded HPD region)``.
    A ratio of 1.0 means ET wastes nothing (symmetric case); small
    ratios mean ET trades high-density HPD mass for low-density tail
    mass.
    """
    alpha = check_alpha(alpha)
    l_et, u_et = et_bounds(posterior, alpha)
    l_hpd, u_hpd = hpd_bounds(posterior, alpha, solver=solver)
    if abs(l_hpd - l_et) < 1e-12 and abs(u_hpd - u_et) < 1e-12:
        return 1.0
    if l_hpd > l_et:
        # Left-skewed posterior: ET excludes (u_et, u_hpd] of the HPD
        # region and covers the non-HPD region [l_et, l_hpd).
        excluded_lo, excluded_hi = u_et, u_hpd
        covered_lo, covered_hi = l_et, l_hpd
    else:
        excluded_lo, excluded_hi = l_hpd, l_et
        covered_lo, covered_hi = u_hpd, u_et
    width = excluded_hi - excluded_lo
    excluded_mass = posterior.interval_mass(excluded_lo, excluded_hi)
    if excluded_mass <= 0.0:
        return 1.0
    # The highest-mass width-`width` subregion of the covered non-HPD
    # band hugs the HPD boundary (density increases toward the mode).
    if l_hpd > l_et:
        best_lo = max(covered_lo, covered_hi - width)
        best_hi = covered_hi
    else:
        best_lo = covered_lo
        best_hi = min(covered_hi, covered_lo + width)
    covered_mass = posterior.interval_mass(best_lo, best_hi)
    return covered_mass / excluded_mass


def run_figure2(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> ExperimentReport:
    """Regenerate the quantitative content of Figure 2."""
    alpha = settings.alpha
    report = ExperimentReport(
        experiment_id="figure2",
        title=f"ET vs HPD credible intervals across skewness (alpha={alpha})",
        headers=(
            "scenario",
            "posterior",
            "skewness",
            "et_interval",
            "hpd_interval",
            "et_width",
            "hpd_width",
            "width_gain",
            "waste_ratio",
        ),
    )
    for scenario in FIGURE2_SCENARIOS:
        posterior = scenario.posterior()
        l_et, u_et = et_bounds(posterior, alpha)
        l_hpd, u_hpd = hpd_bounds(posterior, alpha, solver=settings.solver)
        et_width = u_et - l_et
        hpd_width = u_hpd - l_hpd
        report.add_row(
            scenario=scenario.label,
            posterior=f"Beta({posterior.a:g},{posterior.b:g})",
            skewness=round(posterior.skewness, 3),
            et_interval=f"[{l_et:.4f}, {u_et:.4f}]",
            hpd_interval=f"[{l_hpd:.4f}, {u_hpd:.4f}]",
            et_width=round(et_width, 4),
            hpd_width=round(hpd_width, 4),
            width_gain=f"{(et_width - hpd_width) / et_width:.1%}",
            waste_ratio=f"{et_waste_ratio(posterior, alpha, settings.solver):.1%}",
        )
    report.notes.append(
        "waste_ratio: mass of the best equal-width non-HPD region covered by ET "
        "relative to the HPD mass ET excludes; the paper reports <75% "
        "(moderate) and <20% (high skew)."
    )
    return report
