"""Ablation studies for design choices called out in DESIGN.md.

* **HPD solver ablation** — the paper prescribes SLSQP; we default to a
  damped Newton iteration on the optimality system for speed.  The
  ablation quantifies agreement (max bound deviation) and relative
  runtime across a posterior sweep.
* **Batch-size ablation** — the paper leaves the iteration granularity
  implicit; we calibrated "check after every unit beyond a minimum of
  30 triples".  The ablation measures how the converged sample size
  responds to coarser batch sizes (coarser batches overshoot the
  stopping point and waste annotations).
"""

from __future__ import annotations

import time

import numpy as np

from ..intervals.hpd import HPD_SOLVERS, hpd_bounds
from ..intervals.posterior import BetaPosterior
from ..intervals.priors import JEFFREYS
from ..runtime import ParallelExecutor, StudyCell, StudyPlan
from .config import DEFAULT_SETTINGS, ExperimentSettings
from ._studies import run_cells
from .report import ExperimentReport

__all__ = ["run_hpd_solver_ablation", "run_batch_size_ablation", "batch_size_plan"]


def run_hpd_solver_ablation(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    n: int = 50,
) -> ExperimentReport:
    """Agreement and runtime of the three interior-mode HPD solvers.

    The per-solve timing column is marked volatile: it still prints
    with the table (and drives the benchmark's newton-vs-slsqp
    assertion) but is excluded from the persisted results file, which
    must carry only run-to-run deterministic fields.
    """
    outcomes = [(tau, n) for tau in range(1, n)]
    posteriors = [
        BetaPosterior.from_counts(JEFFREYS, float(tau), float(total))
        for tau, total in outcomes
    ]
    reference: dict[int, tuple[float, float]] = {}
    report = ExperimentReport(
        experiment_id="ablation-hpd",
        title=f"HPD solver ablation over {len(posteriors)} Jeffreys posteriors (n={n})",
        headers=("solver", "max_dev_vs_slsqp", "mean_width", "usec_per_solve"),
        volatile=("usec_per_solve",),
    )
    for solver in ("slsqp", "newton", "scalar"):
        assert solver in HPD_SOLVERS
        bounds = []
        start = time.perf_counter()
        for posterior in posteriors:
            bounds.append(hpd_bounds(posterior, settings.alpha, solver=solver))
        elapsed = time.perf_counter() - start
        if solver == "slsqp":
            reference = dict(enumerate(bounds))
            max_dev = 0.0
        else:
            max_dev = max(
                max(abs(b[0] - reference[i][0]), abs(b[1] - reference[i][1]))
                for i, b in enumerate(bounds)
            )
        widths = [b[1] - b[0] for b in bounds]
        report.add_row(
            solver=solver,
            max_dev_vs_slsqp=f"{max_dev:.2e}",
            mean_width=round(float(np.mean(widths)), 6),
            usec_per_solve=round(elapsed / len(posteriors) * 1e6, 1),
        )
    report.notes.append(
        "All solvers must agree to <1e-6 on bounds; newton is the "
        "default in Monte-Carlo loops purely for speed."
    )
    return report


def batch_size_plan(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    dataset: str = "NELL",
    batch_sizes: tuple[int, ...] = (1, 5, 10, 30),
) -> StudyPlan:
    """The batch-granularity sweep as a study grid (one cell per size)."""
    cells = tuple(
        StudyCell(
            key=(dataset, batch),
            label=f"batch={batch}",
            method="aHPD",
            dataset=dataset,
            strategy="SRS",
            seed_stream=(8_000, i),
            units_per_iteration=batch,
        )
        for i, batch in enumerate(batch_sizes)
    )
    return StudyPlan(settings=settings, cells=cells, name="ablation-batch")


def run_batch_size_ablation(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    dataset: str = "NELL",
    batch_sizes: tuple[int, ...] = (1, 5, 10, 30),
    executor: ParallelExecutor | None = None,
) -> ExperimentReport:
    """Sensitivity of the converged sample size to batch granularity."""
    plan = batch_size_plan(settings, dataset=dataset, batch_sizes=batch_sizes)
    studies = run_cells(plan, executor=executor)
    report = ExperimentReport(
        experiment_id="ablation-batch",
        title=(
            f"Batch-size sensitivity on {dataset} "
            f"(SRS + aHPD, {settings.repetitions} reps)"
        ),
        headers=("batch_size", "triples", "cost_hours", "overshoot_vs_1"),
    )
    baseline_mean = None
    for batch in batch_sizes:
        study = studies[(dataset, batch)]
        mean_triples = float(study.triples.mean())
        if baseline_mean is None:
            baseline_mean = mean_triples
            overshoot = "0%"
        else:
            overshoot = f"{(mean_triples - baseline_mean) / baseline_mean:+.0%}"
        report.add_row(
            batch_size=batch,
            triples=study.triples_summary.format(0),
            cost_hours=study.cost_summary.format(2),
            overshoot_vs_1=overshoot,
        )
    report.notes.append(
        "Larger batches overshoot the MoE stopping point; per-unit "
        "checking (batch=1) is the cost-optimal convention used in all "
        "reproductions."
    )
    return report
