"""Simple Random Sampling (paper Sec. 2.4).

Draws triples uniformly *without replacement* across the whole
evaluation run (the paper notes with-replacement is an acceptable
approximation at scale, but without-replacement is what SRS means and is
exact for the small datasets).  Rejection sampling keeps the draw O(1)
per unit even for the 100M-triple synthetic KG, where collisions are
vanishingly rare.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..estimators.base import Evidence
from ..estimators.proportion import srs_evidence
from ..exceptions import InsufficientSampleError, SamplingError
from ..kg.base import TripleStore
from .base import Batch, SampleState, SamplingStrategy

__all__ = ["SimpleRandomSampling", "SRSState"]


@dataclass
class SRSState(SampleState):
    """SRS accumulator: the counts are the sufficient statistics."""


class SimpleRandomSampling(SamplingStrategy):
    """Uniform triple-level sampling without replacement."""

    name = "SRS"
    unit_label = "triple"

    def new_state(self) -> SRSState:
        return SRSState()

    def draw(
        self,
        kg: TripleStore,
        state: SampleState,
        units: int,
        rng: np.random.Generator,
    ) -> Batch:
        if units <= 0:
            raise SamplingError(f"units must be > 0, got {units}")
        remaining = kg.num_triples - len(state.seen_triples)
        if units > remaining:
            raise InsufficientSampleError(
                f"requested {units} new triples but only {remaining} remain unannotated"
            )
        chosen: list[int] = []
        seen = state.seen_triples
        pending: set[int] = set()
        while len(chosen) < units:
            # Oversample to amortise rejections; collisions are rare
            # unless the sample approaches the full KG.
            need = units - len(chosen)
            candidates = rng.integers(0, kg.num_triples, size=max(2 * need, 8))
            for idx in candidates:
                idx = int(idx)
                if idx in seen or idx in pending:
                    continue
                pending.add(idx)
                chosen.append(idx)
                if len(chosen) == units:
                    break
        indices = np.asarray(chosen, dtype=np.int64)
        subjects = kg.subjects(indices)
        unit_slices = tuple(slice(i, i + 1) for i in range(units))
        return Batch(indices=indices, unit_slices=unit_slices, subjects=subjects)

    def update(self, state: SampleState, batch: Batch, labels: np.ndarray) -> None:
        state._record(batch, np.asarray(labels, dtype=bool))

    def evidence(self, state: SampleState) -> Evidence:
        if state.n_annotated == 0:
            raise InsufficientSampleError("no annotations accumulated yet")
        return srs_evidence(state.n_correct, state.n_annotated)
