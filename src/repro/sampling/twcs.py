"""Two-stage Weighted Cluster Sampling (paper Sec. 2.4).

Stage 1 draws entity clusters with probability proportional to their
size ``pi_i = M_i / M`` (with replacement, as required for the
Hansen-Hurwitz mean-of-means estimator to be unbiased).  Stage 2 draws
``min(M_i, m)`` triples from each sampled cluster by SRS without
replacement.

The size-proportional draw is implemented by picking a uniform triple
index and mapping it to its owning cluster through the offsets array —
O(log N) per draw with no per-draw normalisation, which is what makes
the 5M-cluster synthetic KG workable.

Both stages are array-level: stage 1 is one ``searchsorted`` over the
anchors, and stage 2 materialises every unit at once — whole clusters
through offset arithmetic, capped clusters through a batched
random-keys subset (the ``m`` smallest of iid uniform keys per row is
a uniform ``m``-subset without replacement).  The evidence reduction
aggregates per-cluster means with one ``reduceat`` instead of a
per-unit Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_int
from ..estimators.base import Evidence
from ..estimators.cluster import twcs_evidence
from ..exceptions import InsufficientSampleError, SamplingError
from ..kg.base import TripleStore
from .base import Batch, SampleState, SamplingStrategy

__all__ = ["TwoStageWeightedClusterSampling", "TWCSState"]


@dataclass
class TWCSState(SampleState):
    """TWCS accumulator: per-cluster stage-2 accuracies."""

    cluster_means: list[float] = field(default_factory=list)


class TwoStageWeightedClusterSampling(SamplingStrategy):
    """Size-weighted cluster sampling with a stage-2 cap.

    Parameters
    ----------
    m:
        Stage-2 sample size cap: ``min(M_i, m)`` triples are annotated
        per sampled cluster.  The paper recommends 3-5 (3 for the small
        datasets, 5 for SYN 100M).  ``None`` annotates whole clusters,
        which degenerates to one-stage Weighted Cluster Sampling.
    """

    name = "TWCS"
    unit_label = "cluster"

    def __init__(self, m: int | None = 3):
        if m is not None:
            m = check_positive_int(m, "m")
        self.m = m

    def new_state(self) -> TWCSState:
        return TWCSState()

    #: Upper bound on the (capped clusters x widest cluster) key matrix
    #: of the batched stage-2 subset; pathological draws beyond it fall
    #: back to per-cluster sampling rather than allocating gigabytes.
    _KEYS_BUDGET = 8_000_000

    def draw(
        self,
        kg: TripleStore,
        state: SampleState,
        units: int,
        rng: np.random.Generator,
    ) -> Batch:
        if units <= 0:
            raise SamplingError(f"units must be > 0, got {units}")
        offsets = kg.cluster_offsets
        # PPS-with-replacement stage 1: a uniform triple index lands in
        # cluster i with probability M_i / M.
        anchors = rng.integers(0, kg.num_triples, size=units)
        cluster_ids = np.searchsorted(offsets, anchors, side="right") - 1
        lo = np.asarray(offsets[cluster_ids], dtype=np.int64)
        sizes = np.asarray(offsets[cluster_ids + 1], dtype=np.int64) - lo

        # Stage 2, all units at once.  Units at or under the cap take
        # the whole cluster (pure offset arithmetic, no randomness);
        # larger units take a uniform m-subset via random keys.
        take = sizes if self.m is None else np.minimum(sizes, self.m)
        bounds = np.concatenate(([0], np.cumsum(take)))
        total = int(bounds[-1])
        indices = np.empty(total, dtype=np.int64)
        within = np.arange(total, dtype=np.int64) - np.repeat(bounds[:-1], take)
        whole = sizes == take
        whole_rows = np.repeat(whole, take)
        indices[whole_rows] = np.repeat(lo[whole], take[whole]) + within[whole_rows]
        if not whole.all():
            capped = ~whole
            sub_lo = lo[capped]
            sub_sizes = sizes[capped]
            width = int(sub_sizes.max())
            if sub_sizes.size * width <= self._KEYS_BUDGET:
                # One uniform key per candidate position; the m smallest
                # keys of each row are a uniform m-subset without
                # replacement.  Invalid positions get +inf keys.
                keys = rng.random((sub_sizes.size, width))
                keys[np.arange(width) >= sub_sizes[:, None]] = np.inf
                cols = np.argpartition(keys, self.m - 1, axis=1)[:, : self.m]
                picked = (sub_lo[:, None] + cols).ravel()
            else:
                picked = np.concatenate(
                    [
                        start + rng.choice(int(size), size=self.m, replace=False)
                        for start, size in zip(sub_lo, sub_sizes)
                    ]
                )
            indices[np.repeat(capped, take)] = picked
        unit_slices = tuple(
            slice(int(start), int(stop))
            for start, stop in zip(bounds[:-1], bounds[1:])
        )
        return Batch(
            indices=indices,
            unit_slices=unit_slices,
            subjects=kg.subjects(indices),
        )

    def update(self, state: SampleState, batch: Batch, labels: np.ndarray) -> None:
        if not isinstance(state, TWCSState):
            raise SamplingError("TWCS update requires a TWCSState")
        labels = np.asarray(labels, dtype=bool)
        if batch.num_units:
            # Unit slices are contiguous by construction, so one
            # reduceat replaces the per-unit mean loop; bool sums are
            # exact in float64, keeping the means bit-identical.
            starts = np.fromiter(
                (unit.start for unit in batch.unit_slices),
                dtype=np.int64,
                count=batch.num_units,
            )
            counts = np.diff(np.append(starts, labels.size))
            sums = np.add.reduceat(labels.astype(np.float64), starts)
            state.cluster_means.extend((sums / counts).tolist())
        state._record(batch, labels)

    def evidence(self, state: SampleState) -> Evidence:
        if not isinstance(state, TWCSState):
            raise SamplingError("TWCS evidence requires a TWCSState")
        if len(state.cluster_means) < self.min_units:
            raise InsufficientSampleError(
                "TWCS evidence needs at least 2 sampled clusters, got "
                f"{len(state.cluster_means)}"
            )
        return twcs_evidence(state.cluster_means, state.n_annotated)

    @property
    def min_units(self) -> int:
        # The between-cluster variance needs two observations.
        return 2

    def __repr__(self) -> str:
        return f"TwoStageWeightedClusterSampling(m={self.m})"
