"""Two-stage Weighted Cluster Sampling (paper Sec. 2.4).

Stage 1 draws entity clusters with probability proportional to their
size ``pi_i = M_i / M`` (with replacement, as required for the
Hansen-Hurwitz mean-of-means estimator to be unbiased).  Stage 2 draws
``min(M_i, m)`` triples from each sampled cluster by SRS without
replacement.

The size-proportional draw is implemented by picking a uniform triple
index and mapping it to its owning cluster through the offsets array —
O(log N) per draw with no per-draw normalisation, which is what makes
the 5M-cluster synthetic KG workable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_int
from ..estimators.base import Evidence
from ..estimators.cluster import twcs_evidence
from ..exceptions import InsufficientSampleError, SamplingError
from ..kg.base import TripleStore
from .base import Batch, SampleState, SamplingStrategy

__all__ = ["TwoStageWeightedClusterSampling", "TWCSState"]


@dataclass
class TWCSState(SampleState):
    """TWCS accumulator: per-cluster stage-2 accuracies."""

    cluster_means: list[float] = field(default_factory=list)


class TwoStageWeightedClusterSampling(SamplingStrategy):
    """Size-weighted cluster sampling with a stage-2 cap.

    Parameters
    ----------
    m:
        Stage-2 sample size cap: ``min(M_i, m)`` triples are annotated
        per sampled cluster.  The paper recommends 3-5 (3 for the small
        datasets, 5 for SYN 100M).  ``None`` annotates whole clusters,
        which degenerates to one-stage Weighted Cluster Sampling.
    """

    name = "TWCS"
    unit_label = "cluster"

    def __init__(self, m: int | None = 3):
        if m is not None:
            m = check_positive_int(m, "m")
        self.m = m

    def new_state(self) -> TWCSState:
        return TWCSState()

    def draw(
        self,
        kg: TripleStore,
        state: SampleState,
        units: int,
        rng: np.random.Generator,
    ) -> Batch:
        if units <= 0:
            raise SamplingError(f"units must be > 0, got {units}")
        offsets = kg.cluster_offsets
        # PPS-with-replacement stage 1: a uniform triple index lands in
        # cluster i with probability M_i / M.
        anchors = rng.integers(0, kg.num_triples, size=units)
        cluster_ids = np.searchsorted(offsets, anchors, side="right") - 1

        all_indices: list[np.ndarray] = []
        unit_slices: list[slice] = []
        cursor = 0
        for cluster_id in cluster_ids:
            lo = int(offsets[cluster_id])
            hi = int(offsets[cluster_id + 1])
            size = hi - lo
            if self.m is None or size <= self.m:
                picked = np.arange(lo, hi, dtype=np.int64)
            else:
                picked = lo + rng.choice(size, size=self.m, replace=False).astype(np.int64)
            all_indices.append(picked)
            unit_slices.append(slice(cursor, cursor + picked.size))
            cursor += picked.size
        indices = np.concatenate(all_indices)
        subjects = kg.subjects(indices)
        return Batch(
            indices=indices,
            unit_slices=tuple(unit_slices),
            subjects=subjects,
        )

    def update(self, state: SampleState, batch: Batch, labels: np.ndarray) -> None:
        if not isinstance(state, TWCSState):
            raise SamplingError("TWCS update requires a TWCSState")
        labels = np.asarray(labels, dtype=bool)
        for unit in batch.unit_slices:
            unit_labels = labels[unit]
            state.cluster_means.append(float(unit_labels.mean()))
        state._record(batch, labels)

    def evidence(self, state: SampleState) -> Evidence:
        if not isinstance(state, TWCSState):
            raise SamplingError("TWCS evidence requires a TWCSState")
        if len(state.cluster_means) < self.min_units:
            raise InsufficientSampleError(
                "TWCS evidence needs at least 2 sampled clusters, got "
                f"{len(state.cluster_means)}"
            )
        return twcs_evidence(state.cluster_means, state.n_annotated)

    @property
    def min_units(self) -> int:
        # The between-cluster variance needs two observations.
        return 2

    def __repr__(self) -> str:
        return f"TwoStageWeightedClusterSampling(m={self.m})"
