"""Sampling-strategy interface.

A strategy owns three things:

* a mutable :class:`SampleState` accumulating the annotated sample over
  the iterative evaluation (paper Fig. 1);
* a ``draw`` step producing the next :class:`Batch` of triples to
  annotate (*units* are triples for SRS, clusters for TWCS);
* an ``update`` step folding annotations into the state, after which
  the state can produce the design-aware
  :class:`~repro.estimators.base.Evidence` consumed by every interval
  method.

Annotation itself is *not* the strategy's job — the evaluation framework
routes batches through an :class:`~repro.annotation.annotator.Annotator`
so that noisy / crowdsourced label sources compose with any strategy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..annotation.cost import AnnotationCost, CostModel
from ..estimators.base import Evidence
from ..kg.base import TripleStore

__all__ = ["Batch", "SampleState", "SamplingStrategy"]


@dataclass(frozen=True)
class Batch:
    """One draw of triples to annotate.

    Attributes
    ----------
    indices:
        Global triple indices to annotate, concatenated across units.
    unit_slices:
        One slice into :attr:`indices` per sampled unit (a single triple
        for SRS; a cluster's stage-2 draw for TWCS).
    subjects:
        Cluster id owning each entry of :attr:`indices`.
    """

    indices: np.ndarray
    unit_slices: tuple[slice, ...]
    subjects: np.ndarray
    #: Optional per-unit stratum ids (set by stratified designs only).
    strata: tuple[int, ...] | None = None

    @property
    def num_units(self) -> int:
        """Number of sampled units in this batch."""
        return len(self.unit_slices)

    @property
    def num_triples(self) -> int:
        """Number of triples to annotate in this batch."""
        return int(self.indices.size)


@dataclass
class SampleState:
    """Accumulated annotated sample shared by all strategies.

    Strategy subclasses extend this with design-specific sufficient
    statistics; the base class tracks the bookkeeping every design
    needs — annotation counts and the distinct entities / triples that
    drive the cost model (paper Eq. 12).
    """

    n_annotated: int = 0
    n_correct: int = 0
    n_units: int = 0
    seen_triples: set[int] = field(default_factory=set)
    seen_entities: set[int] = field(default_factory=set)

    @property
    def mu_hat_raw(self) -> float:
        """Raw proportion of correct annotations (diagnostic only)."""
        if self.n_annotated == 0:
            return 0.0
        return self.n_correct / self.n_annotated

    def cost(self, model: CostModel) -> AnnotationCost:
        """Price the accumulated annotation effort under *model*.

        Distinct entities and triples are charged once — repeated draws
        of an already-annotated fact reuse the recorded judgement.
        """
        return model.price(len(self.seen_entities), len(self.seen_triples))

    def _record(self, batch: Batch, labels: np.ndarray) -> None:
        self.n_annotated += int(labels.size)
        self.n_correct += int(labels.sum())
        self.n_units += batch.num_units
        self.seen_triples.update(int(i) for i in batch.indices)
        self.seen_entities.update(int(s) for s in batch.subjects)


class SamplingStrategy(ABC):
    """Abstract sampling design (paper Sec. 2.4)."""

    #: Human-readable strategy name used in reports.
    name: str = "abstract"
    #: What one "unit" means for this design.
    unit_label: str = "unit"

    @abstractmethod
    def new_state(self) -> SampleState:
        """A fresh, empty accumulator for one evaluation run."""

    @abstractmethod
    def draw(
        self,
        kg: TripleStore,
        state: SampleState,
        units: int,
        rng: np.random.Generator,
    ) -> Batch:
        """Draw the next *units* sampling units from *kg*."""

    @abstractmethod
    def update(self, state: SampleState, batch: Batch, labels: np.ndarray) -> None:
        """Fold a batch's annotations into *state*."""

    @abstractmethod
    def evidence(self, state: SampleState) -> Evidence:
        """Design-aware evidence summary of the accumulated sample."""

    @property
    def min_units(self) -> int:
        """Fewest units required before evidence is well-defined."""
        return 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
