"""One-stage Weighted Cluster Sampling.

The paper's online appendix evaluates additional sampling strategies
beyond SRS and TWCS; one-stage WCS — annotate *every* triple of each
size-weighted sampled cluster — is the natural member of the family and
the limiting case ``m -> infinity`` of TWCS.  It shares the TWCS
estimator (the Hansen-Hurwitz mean of cluster accuracies is unbiased
under PPS-with-replacement regardless of the stage-2 design).
"""

from __future__ import annotations

from .twcs import TwoStageWeightedClusterSampling

__all__ = ["WeightedClusterSampling"]


class WeightedClusterSampling(TwoStageWeightedClusterSampling):
    """Size-weighted cluster sampling that annotates whole clusters."""

    name = "WCS"
    unit_label = "cluster"

    def __init__(self):
        super().__init__(m=None)

    def __repr__(self) -> str:
        return "WeightedClusterSampling()"
