"""Sampling strategies for KG accuracy evaluation (paper Sec. 2.4)."""

from ..estimators.cluster import kish_design_effect
from .base import Batch, SampleState, SamplingStrategy
from .srs import SimpleRandomSampling, SRSState
from .stratified import StratifiedPredicateSampling, StratifiedState
from .twcs import TwoStageWeightedClusterSampling, TWCSState
from .wcs import WeightedClusterSampling

__all__ = [
    "SamplingStrategy",
    "SampleState",
    "Batch",
    "SimpleRandomSampling",
    "SRSState",
    "StratifiedPredicateSampling",
    "StratifiedState",
    "TwoStageWeightedClusterSampling",
    "TWCSState",
    "WeightedClusterSampling",
    "kish_design_effect",
]
