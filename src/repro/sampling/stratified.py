"""Stratified random sampling by predicate (library extension).

Not part of the paper's head-to-head, but a natural member of the
design family its framework supports: facts are partitioned into strata
(here: by predicate, the typical stratification for KGs, since error
rates vary sharply by relation type), samples are drawn from every
stratum with allocation proportional to stratum size, and the estimator
is the stratum-weighted mean

.. math::

    \\hat\\mu_{STR} = \\sum_h W_h \\hat\\mu_h, \\qquad
    V(\\hat\\mu_{STR}) = \\sum_h W_h^2 \\frac{\\hat\\mu_h (1-\\hat\\mu_h)}{n_h}

with ``W_h = M_h / M``.  When labels correlate with predicates the
design effect drops below 1 and stratification beats SRS; the appendix
experiment quantifies this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..estimators.base import Evidence
from ..estimators.cluster import kish_design_effect
from ..exceptions import InsufficientSampleError, SamplingError
from ..kg.base import TripleStore
from ..kg.graph import KnowledgeGraph
from .base import Batch, SampleState, SamplingStrategy

__all__ = ["StratifiedPredicateSampling", "StratifiedState"]


@dataclass
class StratifiedState(SampleState):
    """Per-stratum annotation tallies."""

    stratum_correct: dict[int, int] = field(default_factory=dict)
    stratum_annotated: dict[int, int] = field(default_factory=dict)


class StratifiedPredicateSampling(SamplingStrategy):
    """Proportional-allocation stratified sampling over predicates.

    Requires an in-memory :class:`~repro.kg.graph.KnowledgeGraph`
    (predicates are not materialised by the lazy synthetic backend).
    One *unit* is one triple; units cycle through strata
    proportionally to stratum size so the realised allocation tracks
    the proportional design at every sample size.
    """

    name = "STRAT"
    unit_label = "triple"

    def __init__(self):
        self._strata_cache: dict[int, tuple[np.ndarray, list[np.ndarray]]] = {}

    def new_state(self) -> StratifiedState:
        return StratifiedState()

    # ------------------------------------------------------------------
    # Stratum index
    # ------------------------------------------------------------------

    def _strata(self, kg: TripleStore) -> tuple[np.ndarray, list[np.ndarray]]:
        """Stratum weights and member-index lists for *kg* (cached)."""
        if not isinstance(kg, KnowledgeGraph):
            raise SamplingError(
                "stratified sampling needs a materialised KnowledgeGraph "
                "with predicates"
            )
        key = id(kg)
        if key not in self._strata_cache:
            by_predicate: dict[str, list[int]] = {}
            for index, triple in enumerate(kg.triples):
                by_predicate.setdefault(triple.predicate, []).append(index)
            members = [
                np.asarray(indices, dtype=np.int64)
                for _, indices in sorted(by_predicate.items())
            ]
            weights = np.asarray([m.size for m in members], dtype=float)
            weights /= weights.sum()
            self._strata_cache[key] = (weights, members)
        return self._strata_cache[key]

    # ------------------------------------------------------------------
    # SamplingStrategy interface
    # ------------------------------------------------------------------

    def draw(
        self,
        kg: TripleStore,
        state: SampleState,
        units: int,
        rng: np.random.Generator,
    ) -> Batch:
        if units <= 0:
            raise SamplingError(f"units must be > 0, got {units}")
        if not isinstance(state, StratifiedState):
            raise SamplingError("stratified draw requires a StratifiedState")
        weights, members = self._strata(kg)
        strata_of_chosen = self._allocate(weights, members, state, units)
        if units == 1:
            # Scalar path: the evaluation framework draws one unit per
            # iteration, and this path consumes the generator exactly as
            # the historical per-unit loop did — routed experiment
            # numbers are unchanged.
            chosen = self._draw_scalar(members, state, strata_of_chosen, rng)
        else:
            chosen = self._draw_batched(members, state, strata_of_chosen, rng)
        indices = np.asarray(chosen, dtype=np.int64)
        return Batch(
            indices=indices,
            unit_slices=tuple(slice(i, i + 1) for i in range(units)),
            subjects=kg.subjects(indices),
            strata=tuple(strata_of_chosen),
        )

    def _allocate(
        self,
        weights: np.ndarray,
        members: list[np.ndarray],
        state: StratifiedState,
        units: int,
    ) -> list[int]:
        """The proportional-allocation stratum sequence for *units* draws.

        Deterministic greedy: each unit goes to the non-exhausted
        stratum with the largest deficit against the proportional
        target, counting within-batch allocations toward the targets
        (or every unit of a batch would chase the same, largest,
        stratum).  No randomness is consumed, so precomputing the whole
        sequence is exactly equivalent to the historical
        allocate-then-draw-per-unit interleaving.
        """
        counts = np.asarray(
            [state.stratum_annotated.get(h, 0) for h in range(weights.size)],
            dtype=float,
        )
        capacity = np.asarray([m.size for m in members], dtype=np.int64)
        total = counts.sum()
        strata: list[int] = []
        for _ in range(units):
            deficit = weights * (total + 1) - counts
            # Same selection (argsort tie-breaking included) as the
            # historical per-unit loop, so allocation sequences — and
            # therefore routed experiment numbers — are unchanged; only
            # the per-unit counts rebuild became incremental.
            for h in np.argsort(-deficit):
                if counts[h] < capacity[h]:  # skip exhausted strata
                    break
            else:
                raise InsufficientSampleError("all strata exhausted")
            stratum = int(h)
            strata.append(stratum)
            counts[stratum] += 1.0
            total += 1.0
        return strata

    def _draw_scalar(
        self,
        members: list[np.ndarray],
        state: StratifiedState,
        strata_of_chosen: list[int],
        rng: np.random.Generator,
    ) -> list[int]:
        """Per-unit rejection sampling (historical RNG consumption)."""
        chosen: list[int] = []
        pending: set[int] = set()
        for stratum in strata_of_chosen:
            index = self._draw_from_stratum(members[stratum], state, pending, rng)
            chosen.append(index)
            pending.add(index)
        return chosen

    def _draw_batched(
        self,
        members: list[np.ndarray],
        state: StratifiedState,
        strata_of_chosen: list[int],
        rng: np.random.Generator,
    ) -> list[int]:
        """All strata at once via random keys (TWCS stage-2 idiom).

        For each stratum needing ``k`` units, every member gets an iid
        uniform key (already-annotated members get ``+inf``); the ``k``
        smallest keys are a uniform ``k``-subset of the available
        members without replacement — one vectorised pass instead of
        ``k`` rejection loops, and immune to the rejection path's
        degradation on nearly-drained strata.
        """
        needed: dict[int, int] = {}
        for stratum in strata_of_chosen:
            needed[stratum] = needed.get(stratum, 0) + 1
        seen = state.seen_triples
        seen_array = (
            np.fromiter(seen, dtype=np.int64, count=len(seen)) if seen else None
        )
        picks: dict[int, list[int]] = {}
        for stratum in sorted(needed):
            member_indices = members[stratum]
            k = needed[stratum]
            keys = rng.random(member_indices.size)
            if seen_array is not None:
                keys[np.isin(member_indices, seen_array)] = np.inf
            order = np.argpartition(keys, k - 1)[:k]
            if not np.isfinite(keys[order]).all():
                raise InsufficientSampleError("stratum exhausted")
            # Sort the winning keys so pick order is deterministic
            # regardless of argpartition's internal tie-breaking.
            order = order[np.argsort(keys[order], kind="stable")]
            picks[stratum] = [int(member_indices[i]) for i in order]
        return [picks[stratum].pop(0) for stratum in strata_of_chosen]

    def _draw_from_stratum(
        self,
        member_indices: np.ndarray,
        state: StratifiedState,
        pending: set[int],
        rng: np.random.Generator,
    ) -> int:
        for _ in range(10_000):
            index = int(member_indices[rng.integers(0, member_indices.size)])
            if index not in state.seen_triples and index not in pending:
                return index
        # Fall back to an exhaustive scan when the stratum is nearly drained.
        available = [
            int(i)
            for i in member_indices
            if int(i) not in state.seen_triples and int(i) not in pending
        ]
        if not available:
            raise InsufficientSampleError("stratum exhausted")
        return int(rng.choice(available))

    def update(self, state: SampleState, batch: Batch, labels: np.ndarray) -> None:
        if not isinstance(state, StratifiedState):
            raise SamplingError("stratified update requires a StratifiedState")
        labels = np.asarray(labels, dtype=bool)
        strata = batch.strata
        if strata is None or len(strata) != batch.num_units:
            raise SamplingError("batch was not drawn by StratifiedPredicateSampling")
        for stratum, label in zip(strata, labels):
            state.stratum_annotated[stratum] = state.stratum_annotated.get(stratum, 0) + 1
            state.stratum_correct[stratum] = state.stratum_correct.get(stratum, 0) + int(label)
        state._record(batch, labels)

    def evidence(self, state: SampleState) -> Evidence:
        if not isinstance(state, StratifiedState):
            raise SamplingError("stratified evidence requires a StratifiedState")
        if state.n_annotated == 0:
            raise InsufficientSampleError("no annotations accumulated yet")
        sampled = sorted(state.stratum_annotated)
        n_total = state.n_annotated
        # Realised weights: proportional allocation makes n_h / n track
        # W_h, so the realised-weight estimator is consistent and keeps
        # mu_hat inside [0, 1] even while small strata are still filling.
        mu_hat = 0.0
        variance = 0.0
        for stratum in sampled:
            n_h = state.stratum_annotated[stratum]
            tau_h = state.stratum_correct[stratum]
            weight = n_h / n_total
            mu_h = tau_h / n_h
            mu_hat += weight * mu_h
            variance += weight * weight * mu_h * (1.0 - mu_h) / n_h
        mu_hat = min(max(mu_hat, 0.0), 1.0)
        deff = kish_design_effect(mu_hat, variance, n_total)
        n_effective = n_total / deff
        return Evidence(
            mu_hat=mu_hat,
            variance=variance,
            n_effective=float(n_effective),
            tau_effective=float(mu_hat * n_effective),
            n_annotated=int(n_total),
        )
