"""Shared argument-validation helpers.

These helpers centralise the range and type checks used across the
library so that every public function reports errors with the same
vocabulary.  All of them raise :class:`repro.exceptions.ValidationError`
on failure and return the (possibly coerced) value on success.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

from .exceptions import ValidationError

__all__ = [
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_positive_int",
    "check_non_negative_int",
    "check_in_unit_interval",
    "check_alpha",
    "check_counts",
    "check_fraction_pair",
    "check_not_empty",
    "check_rep_range",
]


def check_probability(value: float, name: str = "value") -> float:
    """Validate that *value* is a probability in the closed ``[0, 1]``."""
    value = _check_finite_float(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_unit_interval(
    value: float,
    name: str = "value",
    *,
    open_left: bool = False,
    open_right: bool = False,
) -> float:
    """Validate membership of the unit interval with optional open ends."""
    value = _check_finite_float(value, name)
    low_ok = value > 0.0 if open_left else value >= 0.0
    high_ok = value < 1.0 if open_right else value <= 1.0
    if not (low_ok and high_ok):
        left = "(" if open_left else "["
        right = ")" if open_right else "]"
        raise ValidationError(
            f"{name} must be in {left}0, 1{right}, got {value!r}"
        )
    return value


def check_alpha(alpha: float, name: str = "alpha") -> float:
    """Validate a significance level, which must lie strictly in (0, 1)."""
    return check_in_unit_interval(name=name, value=alpha, open_left=True, open_right=True)


def check_positive(value: float, name: str = "value") -> float:
    """Validate that *value* is a finite, strictly positive float."""
    value = _check_finite_float(value, name)
    if value <= 0.0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that *value* is a finite, non-negative float."""
    value = _check_finite_float(value, name)
    if value < 0.0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive_int(value: Any, name: str = "value") -> int:
    """Validate that *value* is an integer greater than zero."""
    value = _check_int(value, name)
    if value <= 0:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_non_negative_int(value: Any, name: str = "value") -> int:
    """Validate that *value* is an integer greater than or equal to zero."""
    value = _check_int(value, name)
    if value < 0:
        raise ValidationError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def check_counts(successes: Any, trials: Any) -> tuple[int, int]:
    """Validate a (successes, trials) pair with ``0 <= successes <= trials``."""
    successes = check_non_negative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValidationError(
            f"successes ({successes}) cannot exceed trials ({trials})"
        )
    return successes, trials


def check_fraction_pair(lower: float, upper: float) -> tuple[float, float]:
    """Validate an ordered pair of probabilities ``0 <= lower <= upper <= 1``."""
    lower = check_probability(lower, "lower")
    upper = check_probability(upper, "upper")
    if lower > upper:
        raise ValidationError(
            f"lower ({lower}) cannot exceed upper ({upper})"
        )
    return lower, upper


def check_rep_range(
    rep_range: Any, repetitions: int, name: str = "rep_range"
) -> tuple[int, int]:
    """Validate a half-open repetition window against a total count.

    ``None`` means the full range ``(0, repetitions)``; otherwise the
    pair must satisfy ``0 <= start < stop <= repetitions``.  Returns the
    resolved ``(start, stop)``.
    """
    if rep_range is None:
        return 0, repetitions
    try:
        start, stop = rep_range
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"{name} must be a (start, stop) pair or None, got {rep_range!r}"
        ) from exc
    start = check_non_negative_int(start, f"{name} start")
    stop = check_positive_int(stop, f"{name} stop")
    if start >= stop or stop > repetitions:
        raise ValidationError(
            f"{name} must satisfy 0 <= start < stop <= repetitions "
            f"({repetitions}), got ({start}, {stop})"
        )
    return start, stop


def check_not_empty(items: Sequence | Iterable, name: str = "items") -> Any:
    """Validate that a sized or materialisable collection is non-empty."""
    if not isinstance(items, Sequence):
        items = list(items)
    if len(items) == 0:
        raise ValidationError(f"{name} must not be empty")
    return items


def _check_finite_float(value: Any, name: str) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(value) or math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value


def _check_int(value: Any, name: str) -> int:
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got a bool")
    try:
        as_int = int(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be an integer, got {value!r}") from exc
    if as_int != value:
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    return as_int
