"""repro — Credible Intervals for Knowledge Graph Accuracy Estimation.

A production-quality reproduction of Marchesin & Silvello (SIGMOD 2025):
cost-minimal KG accuracy auditing with Bayesian credible intervals.

Quickstart
----------

>>> from repro import (
...     load_nell, SimpleRandomSampling, AdaptiveHPD, KGAccuracyEvaluator,
... )
>>> kg = load_nell(seed=42)
>>> evaluator = KGAccuracyEvaluator(
...     kg, SimpleRandomSampling(), AdaptiveHPD(),
... )
>>> result = evaluator.run(rng=42)
>>> bool(result.converged)
True

See ``examples/`` for end-to-end scenarios and ``repro.experiments`` for
the reproduction of every table and figure in the paper.

Performance
-----------

The Monte-Carlo hot path runs through a vectorised **batch interval
engine** (:mod:`repro.intervals.batch`): every interval method solves
whole arrays of evidences in one ``compute_batch`` call — closed forms
at array level for the frequentist families, a vectorised damped-Newton
HPD solver for the credible ones.  Coverage audits aggregate the
``Bin(n, mu)`` repetitions by unique outcome and solve each distinct
outcome exactly once, and :class:`KGAccuracyEvaluator` memoises interval
solves across the iterative stop rule and its Monte-Carlo replays.
Batch and scalar paths agree to ~1e-8.

Above the evaluators, the **study-execution runtime**
(:mod:`repro.runtime`) describes every experiment grid as seeded,
picklable cells and executes them through a
:class:`ParallelExecutor` — fanned out over worker processes with
bit-identical results, cached in a content-addressed
:class:`ResultStore` so re-runs skip completed cells and interrupted
grids resume (``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``).
"""

from .annotation import (
    DEFAULT_COST_MODEL,
    AnnotationLedger,
    AnnotationCost,
    Annotator,
    AnnotatorPool,
    CostModel,
    NoisyAnnotator,
    OracleAnnotator,
)
from .estimators import (
    Evidence,
    kish_design_effect,
    srs_evidence,
    srs_evidence_from_labels,
    twcs_evidence,
    twcs_point_estimate,
)
from .evaluation import (
    DynamicAuditor,
    SampleSizePlanner,
    audit_by_predicate,
    sequential_coverage,
    EvaluationConfig,
    EvaluationResult,
    KGAccuracyEvaluator,
    StudyResult,
    compare_costs,
    empirical_coverage,
    reduction_ratio,
    run_study,
)
from .exceptions import (
    ConvergenceError,
    IntervalError,
    KGError,
    OptimizationError,
    PriorError,
    ReproError,
    SamplingError,
    ValidationError,
)
from .inference import (
    InferenceAssistedEvaluator,
    InferenceEngine,
    generate_inferable_kg,
)
from .intervals import (
    JEFFREYS,
    ArcsineInterval,
    LogitInterval,
    KERMAN,
    UNIFORM,
    UNINFORMATIVE_PRIORS,
    AdaptiveHPD,
    AgrestiCoullInterval,
    BatchIntervals,
    BetaPosterior,
    BetaPrior,
    ClopperPearsonInterval,
    ETCredibleInterval,
    HPDCredibleInterval,
    Interval,
    IntervalMethod,
    WaldInterval,
    WilsonInterval,
    et_bounds_batch,
    hpd_bounds,
    hpd_bounds_batch,
)
from .kg import (
    KnowledgeGraph,
    TripleIndex,
    build_evolving_kg,
    SyntheticKG,
    Triple,
    TripleStore,
    describe_kg,
    generate_profiled_kg,
    load_dataset,
    load_dbpedia,
    load_factbench,
    load_kg,
    load_nell,
    load_syn100m,
    load_yago,
    save_kg,
)
from .runtime import (
    CellSpec,
    CoverageCell,
    ParallelExecutor,
    PlanOutcome,
    ResultStore,
    SequentialCoverageCell,
    StudyCell,
    StudyPlan,
)
from .sampling import (
    SamplingStrategy,
    StratifiedPredicateSampling,
    SimpleRandomSampling,
    TwoStageWeightedClusterSampling,
    WeightedClusterSampling,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # KG substrate
    "TripleStore",
    "KnowledgeGraph",
    "SyntheticKG",
    "Triple",
    "load_dataset",
    "load_yago",
    "load_nell",
    "load_dbpedia",
    "load_factbench",
    "load_syn100m",
    "generate_profiled_kg",
    "describe_kg",
    "save_kg",
    "load_kg",
    "TripleIndex",
    "build_evolving_kg",
    # Annotation
    "Annotator",
    "OracleAnnotator",
    "NoisyAnnotator",
    "AnnotatorPool",
    "CostModel",
    "AnnotationCost",
    "DEFAULT_COST_MODEL",
    "AnnotationLedger",
    # Sampling and estimation
    "SamplingStrategy",
    "SimpleRandomSampling",
    "TwoStageWeightedClusterSampling",
    "WeightedClusterSampling",
    "StratifiedPredicateSampling",
    "Evidence",
    "srs_evidence",
    "srs_evidence_from_labels",
    "twcs_evidence",
    "twcs_point_estimate",
    "kish_design_effect",
    # Intervals
    "Interval",
    "IntervalMethod",
    "BatchIntervals",
    "WaldInterval",
    "WilsonInterval",
    "AgrestiCoullInterval",
    "ClopperPearsonInterval",
    "ArcsineInterval",
    "LogitInterval",
    "BetaPrior",
    "BetaPosterior",
    "KERMAN",
    "JEFFREYS",
    "UNIFORM",
    "UNINFORMATIVE_PRIORS",
    "ETCredibleInterval",
    "HPDCredibleInterval",
    "AdaptiveHPD",
    "hpd_bounds",
    "hpd_bounds_batch",
    "et_bounds_batch",
    # Evaluation
    "EvaluationConfig",
    "EvaluationResult",
    "KGAccuracyEvaluator",
    "run_study",
    "StudyResult",
    "compare_costs",
    "empirical_coverage",
    "reduction_ratio",
    "DynamicAuditor",
    "SampleSizePlanner",
    "sequential_coverage",
    "audit_by_predicate",
    # Runtime (parallel study execution)
    "CellSpec",
    "StudyCell",
    "CoverageCell",
    "SequentialCoverageCell",
    "StudyPlan",
    "ParallelExecutor",
    "PlanOutcome",
    "ResultStore",
    "InferenceEngine",
    "InferenceAssistedEvaluator",
    "generate_inferable_kg",
    # Errors
    "ReproError",
    "ValidationError",
    "KGError",
    "SamplingError",
    "IntervalError",
    "PriorError",
    "OptimizationError",
    "ConvergenceError",
]
