"""Shared statistical primitives used across the library.

This subpackage isolates the low-level numerical machinery — Beta
distribution helpers, two-sample significance testing, descriptive
summaries, and deterministic random-source handling — so that the
higher-level sampling / interval code reads as statistics, not as
numerics.
"""

from .beta import (
    BetaParameters,
    beta_cdf,
    beta_interval_mass,
    beta_mean,
    beta_mode,
    beta_pdf,
    beta_ppf,
    beta_skewness,
    beta_std,
    beta_variance,
)
from .binomial import binomial_cdf, binomial_pmf, binomial_pmf_matrix
from .describe import Summary, summarize
from .rng import RandomSource, derive_seed, spawn_rng
from .ttest import TTestResult, independent_ttest, welch_ttest

__all__ = [
    "BetaParameters",
    "beta_pdf",
    "beta_cdf",
    "beta_ppf",
    "beta_mean",
    "beta_mode",
    "beta_variance",
    "beta_std",
    "beta_skewness",
    "beta_interval_mass",
    "Summary",
    "binomial_pmf",
    "binomial_pmf_matrix",
    "binomial_cdf",
    "summarize",
    "RandomSource",
    "spawn_rng",
    "derive_seed",
    "TTestResult",
    "independent_ttest",
    "welch_ttest",
]
