"""Beta distribution helpers built on :mod:`scipy.special` primitives.

The interval-estimation code needs the Beta pdf / cdf / quantile plus a
handful of shape diagnostics (mode, skewness).  We implement them here on
top of the regularised incomplete beta function and its inverse rather
than going through ``scipy.stats.beta`` object construction, which is an
order of magnitude slower in the tight loops used by the iterative
evaluation framework.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special

from .._validation import check_positive, check_probability
from ..exceptions import ValidationError

__all__ = [
    "BetaParameters",
    "beta_pdf",
    "beta_cdf",
    "beta_ppf",
    "beta_pdf_batch",
    "beta_cdf_batch",
    "beta_ppf_batch",
    "beta_mean",
    "beta_mode",
    "beta_variance",
    "beta_std",
    "beta_skewness",
    "beta_interval_mass",
]


@dataclass(frozen=True)
class BetaParameters:
    """A validated ``Beta(a, b)`` parameter pair.

    Attributes
    ----------
    a:
        The "successes" shape parameter; strictly positive.
    b:
        The "failures" shape parameter; strictly positive.
    """

    a: float
    b: float

    def __post_init__(self) -> None:
        check_positive(self.a, "a")
        check_positive(self.b, "b")

    @property
    def mean(self) -> float:
        """Distribution mean ``a / (a + b)``."""
        return beta_mean(self.a, self.b)

    @property
    def variance(self) -> float:
        """Distribution variance."""
        return beta_variance(self.a, self.b)

    @property
    def mode(self) -> float:
        """Distribution mode (see :func:`beta_mode` for edge cases)."""
        return beta_mode(self.a, self.b)

    @property
    def skewness(self) -> float:
        """Distribution skewness (see :func:`beta_skewness`)."""
        return beta_skewness(self.a, self.b)

    @property
    def is_symmetric(self) -> bool:
        """Whether the density is symmetric about 1/2 (``a == b``)."""
        return self.a == self.b

    @property
    def is_unimodal_interior(self) -> bool:
        """Whether the density has a single interior mode (``a, b > 1``)."""
        return self.a > 1.0 and self.b > 1.0


def beta_pdf(x, a: float, b: float):
    """Beta probability density, vectorised over *x*.

    Computed in log space to stay finite for the large posterior shape
    parameters produced by long annotation runs.
    """
    a = check_positive(a, "a")
    b = check_positive(b, "b")
    x = np.asarray(x, dtype=float)
    out = np.zeros_like(x, dtype=float)
    inside = (x >= 0.0) & (x <= 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_density = (
            special.xlogy(a - 1.0, x)
            + special.xlog1py(b - 1.0, -x)
            - special.betaln(a, b)
        )
    out = np.where(inside, np.exp(log_density), 0.0)
    if out.ndim == 0:
        return float(out)
    return out


def beta_cdf(x, a: float, b: float):
    """Beta cumulative distribution function, vectorised over *x*."""
    a = check_positive(a, "a")
    b = check_positive(b, "b")
    x = np.asarray(x, dtype=float)
    clipped = np.clip(x, 0.0, 1.0)
    out = special.betainc(a, b, clipped)
    if out.ndim == 0:
        return float(out)
    return out


def beta_ppf(q, a: float, b: float):
    """Beta quantile function (inverse CDF), vectorised over *q*."""
    a = check_positive(a, "a")
    b = check_positive(b, "b")
    q_arr = np.asarray(q, dtype=float)
    if np.any((q_arr < 0.0) | (q_arr > 1.0)):
        raise ValidationError(f"quantile levels must be in [0, 1], got {q!r}")
    out = special.betaincinv(a, b, q_arr)
    if out.ndim == 0:
        return float(out)
    return out


def _check_positive_array(values, name: str) -> np.ndarray:
    """Validate an array of strictly positive, finite shape parameters."""
    arr = np.asarray(values, dtype=float)
    if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr <= 0.0)):
        raise ValidationError(f"{name} must be finite and > 0, got {values!r}")
    return arr


def _beta_pdf_raw(x, a, b) -> np.ndarray:
    """:func:`beta_pdf_batch` arithmetic without argument validation.

    Callers must have validated ``(a, b)`` already and hold an
    ``np.errstate`` guard for the log-space corner cases; the iterative
    HPD solver re-evaluates densities every Newton step, where repeated
    validation dominates small-batch solves.
    """
    x = np.asarray(x, dtype=float)
    inside = (x >= 0.0) & (x <= 1.0)
    log_density = (
        special.xlogy(a - 1.0, x)
        + special.xlog1py(b - 1.0, -x)
        - special.betaln(a, b)
    )
    return np.where(inside, np.exp(log_density), 0.0)


def beta_pdf_batch(x, a, b) -> np.ndarray:
    """Beta density, vectorised over *x* **and** the shape parameters.

    The scalar-parameter :func:`beta_pdf` serves one posterior at a time;
    this variant broadcasts ``(x, a, b)`` together so the batch interval
    engine can evaluate one density per posterior in a single call.
    """
    a = _check_positive_array(a, "a")
    b = _check_positive_array(b, "b")
    with np.errstate(divide="ignore", invalid="ignore"):
        return _beta_pdf_raw(x, a, b)


def _beta_cdf_raw(x, a, b) -> np.ndarray:
    """:func:`beta_cdf_batch` arithmetic without argument validation."""
    # minimum(maximum(x)) is np.clip's own definition, minus the
    # dispatch wrapper — bit-identical, measurably cheaper on the tiny
    # arrays the memoised solve path produces.
    clipped = np.minimum(np.maximum(np.asarray(x, dtype=float), 0.0), 1.0)
    return np.asarray(special.betainc(a, b, clipped), dtype=float)


def beta_cdf_batch(x, a, b) -> np.ndarray:
    """Beta CDF, vectorised over *x* **and** the shape parameters."""
    a = _check_positive_array(a, "a")
    b = _check_positive_array(b, "b")
    return _beta_cdf_raw(x, a, b)


def _beta_ppf_raw(q, a, b) -> np.ndarray:
    """:func:`beta_ppf_batch` arithmetic without argument validation."""
    return np.asarray(
        special.betaincinv(a, b, np.asarray(q, dtype=float)), dtype=float
    )


def beta_ppf_batch(q, a, b) -> np.ndarray:
    """Beta quantile function, vectorised over *q* **and** the shapes."""
    a = _check_positive_array(a, "a")
    b = _check_positive_array(b, "b")
    q_arr = np.asarray(q, dtype=float)
    if np.any((q_arr < 0.0) | (q_arr > 1.0)):
        raise ValidationError(f"quantile levels must be in [0, 1], got {q!r}")
    # Route through the raw primitive so validated and raw callers run
    # the *same* arithmetic — the invariant the kernel registry pins.
    return _beta_ppf_raw(q_arr, a, b)


def beta_mean(a: float, b: float) -> float:
    """Mean of ``Beta(a, b)``."""
    a = check_positive(a, "a")
    b = check_positive(b, "b")
    return a / (a + b)


def beta_variance(a: float, b: float) -> float:
    """Variance of ``Beta(a, b)``."""
    a = check_positive(a, "a")
    b = check_positive(b, "b")
    total = a + b
    return (a * b) / (total * total * (total + 1.0))


def beta_std(a: float, b: float) -> float:
    """Standard deviation of ``Beta(a, b)``."""
    return math.sqrt(beta_variance(a, b))


def beta_mode(a: float, b: float) -> float:
    """Mode of ``Beta(a, b)``.

    For ``a, b > 1`` the interior mode ``(a - 1) / (a + b - 2)`` is
    returned.  Monotone shapes return the corresponding boundary, and the
    symmetric boundary-bimodal / flat cases return 0.5 as the natural
    centre of mass.
    """
    a = check_positive(a, "a")
    b = check_positive(b, "b")
    if a > 1.0 and b > 1.0:
        return (a - 1.0) / (a + b - 2.0)
    if a <= 1.0 < b:
        return 0.0
    if b <= 1.0 < a:
        return 1.0
    if a == b:
        # Uniform (a == b == 1) or U-shaped: no unique mode; use centre.
        return 0.5
    return 0.0 if a < b else 1.0


def beta_skewness(a: float, b: float) -> float:
    """Skewness of ``Beta(a, b)``.

    Positive values indicate a right tail (mass near 0), negative values
    a left tail (mass near 1) — the common case for accurate KGs.
    """
    a = check_positive(a, "a")
    b = check_positive(b, "b")
    total = a + b
    return 2.0 * (b - a) * math.sqrt(total + 1.0) / ((total + 2.0) * math.sqrt(a * b))


def beta_interval_mass(lower: float, upper: float, a: float, b: float) -> float:
    """Posterior mass ``F(upper) - F(lower)`` of ``Beta(a, b)``."""
    lower = check_probability(lower, "lower")
    upper = check_probability(upper, "upper")
    if lower > upper:
        raise ValidationError(
            f"lower ({lower}) cannot exceed upper ({upper})"
        )
    return float(beta_cdf(upper, a, b) - beta_cdf(lower, a, b))
