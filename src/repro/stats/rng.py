"""Deterministic random-source handling.

Every stochastic component in the library accepts either a seed, a
:class:`numpy.random.Generator`, or ``None``.  Funnelling all of them
through :func:`spawn_rng` keeps experiment repetitions reproducible and
lets the Monte-Carlo harness derive independent child streams cheaply.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RandomSource", "spawn_rng", "derive_seed"]

#: Anything that can act as a source of randomness for the library.
RandomSource = Union[None, int, np.random.Generator, np.random.SeedSequence]


def spawn_rng(source: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *source*.

    ``None`` yields a fresh, OS-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` yields a deterministic one; an
    existing generator is passed through unchanged so that callers can
    share a stream.
    """
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, np.random.SeedSequence):
        return np.random.default_rng(source)
    return np.random.default_rng(source)


def derive_seed(base_seed: int, *indices: int) -> int:
    """Derive a deterministic child seed from *base_seed* and *indices*.

    Uses :class:`numpy.random.SeedSequence` spawning semantics so that
    ``derive_seed(s, i)`` and ``derive_seed(s, j)`` produce statistically
    independent streams for ``i != j``.  The result is a 63-bit integer
    suitable for any seed-accepting API.
    """
    sequence = np.random.SeedSequence(entropy=base_seed, spawn_key=tuple(indices))
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))
