"""Descriptive summaries for Monte-Carlo experiment outputs.

The paper reports every experimental quantity as ``mean ± std`` over
1,000 repetitions.  :class:`Summary` is the single value type the
experiment layer uses for those aggregates, including the paper-style
string rendering used in the regenerated tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean / dispersion summary of a one-dimensional sample.

    Attributes
    ----------
    mean:
        Sample mean.
    std:
        Sample standard deviation (``ddof=1``; 0 for singleton samples).
    count:
        Number of observations.
    minimum / maximum:
        Sample range.
    """

    mean: float
    std: float
    count: int
    minimum: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.count)

    def format(self, digits: int = 0) -> str:
        """Render as the paper's ``mean±std`` cell format.

        ``digits=0`` mimics the integer triple counts of Tables 2-4;
        ``digits=2`` mimics the cost columns.
        """
        if digits < 0:
            raise ValidationError(f"digits must be >= 0, got {digits}")
        return f"{self.mean:.{digits}f}±{self.std:.{digits}f}"

    def __str__(self) -> str:
        return self.format(digits=2)


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of *values*.

    Raises :class:`~repro.exceptions.ValidationError` for empty or
    non-finite input — a silent NaN here would propagate into every
    regenerated table.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError("summarize expects a one-dimensional sample")
    if arr.size == 0:
        raise ValidationError("summarize expects a non-empty sample")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("summarize expects only finite values")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        mean=float(arr.mean()),
        std=std,
        count=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
