"""Two-sample significance tests.

The paper compares annotation costs between methods with "standard
independent t-tests" at ``p < 0.01`` (Tables 2-4).  We implement both the
pooled-variance Student test used by the paper and Welch's unequal-
variance variant, computing the p-value through the regularised
incomplete beta function so that no distribution objects are constructed
in the Monte-Carlo loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import special

from ..exceptions import ValidationError

__all__ = ["TTestResult", "independent_ttest", "welch_ttest"]


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sample t-test.

    Attributes
    ----------
    statistic:
        The t statistic; positive when the first sample mean is larger.
    pvalue:
        Two-sided p-value.
    dof:
        Degrees of freedom (fractional for Welch's test).
    """

    statistic: float
    pvalue: float
    dof: float

    def significant(self, alpha: float = 0.01) -> bool:
        """Whether the difference is significant at level *alpha*."""
        return self.pvalue < alpha


def independent_ttest(sample_a: Sequence[float], sample_b: Sequence[float]) -> TTestResult:
    """Student's pooled-variance two-sample t-test (two-sided).

    This is the "standard independent t-test" the paper uses to compare
    per-repetition annotation costs of two interval methods.
    """
    a = _as_sample(sample_a, "sample_a")
    b = _as_sample(sample_b, "sample_b")
    n_a, n_b = a.size, b.size
    dof = n_a + n_b - 2
    if dof <= 0:
        raise ValidationError("pooled t-test requires at least 3 observations in total")
    var_a = _sample_variance(a)
    var_b = _sample_variance(b)
    pooled = ((n_a - 1) * var_a + (n_b - 1) * var_b) / dof
    denom = math.sqrt(pooled * (1.0 / n_a + 1.0 / n_b))
    statistic = _safe_t(a.mean() - b.mean(), denom)
    return TTestResult(statistic=statistic, pvalue=_two_sided_p(statistic, dof), dof=float(dof))


def welch_ttest(sample_a: Sequence[float], sample_b: Sequence[float]) -> TTestResult:
    """Welch's unequal-variance two-sample t-test (two-sided)."""
    a = _as_sample(sample_a, "sample_a")
    b = _as_sample(sample_b, "sample_b")
    if a.size < 2 or b.size < 2:
        raise ValidationError("Welch's t-test requires at least 2 observations per sample")
    se_a = _sample_variance(a) / a.size
    se_b = _sample_variance(b) / b.size
    denom_sq = se_a + se_b
    statistic = _safe_t(a.mean() - b.mean(), math.sqrt(denom_sq))
    if denom_sq == 0.0:
        # Identical constant samples: dof is conventional, p from statistic.
        dof = float(a.size + b.size - 2)
    else:
        dof = denom_sq**2 / (
            se_a**2 / (a.size - 1) + se_b**2 / (b.size - 1)
        )
    return TTestResult(statistic=statistic, pvalue=_two_sided_p(statistic, dof), dof=float(dof))


def _as_sample(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional")
    if arr.size < 2:
        raise ValidationError(f"{name} must contain at least 2 observations")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr


def _sample_variance(arr: np.ndarray) -> float:
    return float(arr.var(ddof=1))


def _safe_t(mean_diff: float, denom: float) -> float:
    if denom == 0.0:
        if mean_diff == 0.0:
            return 0.0
        return math.copysign(math.inf, mean_diff)
    return mean_diff / denom


def _two_sided_p(statistic: float, dof: float) -> float:
    """Two-sided p-value of a t statistic via the incomplete beta function.

    Uses the identity ``P(|T| > t) = I_{dof / (dof + t^2)}(dof / 2, 1/2)``
    for a Student-t variable with *dof* degrees of freedom.
    """
    if math.isinf(statistic):
        return 0.0
    if statistic == 0.0:
        return 1.0
    x = dof / (dof + statistic * statistic)
    return float(special.betainc(dof / 2.0, 0.5, x))
