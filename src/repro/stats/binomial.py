"""Binomial distribution helpers.

Used by the expected-width machinery (Figure 3) and the sample-size
planner: exact pmf evaluation in log space, vectorised over both the
success probability and the outcome axis.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from .._validation import check_positive_int

__all__ = ["binomial_pmf", "binomial_pmf_matrix", "binomial_cdf"]


def binomial_pmf(tau, n: int, mu) -> np.ndarray:
    """``P(X = tau)`` for ``X ~ Bin(n, mu)``, vectorised over *tau*/*mu*."""
    n = check_positive_int(n, "n")
    tau_arr = np.asarray(tau, dtype=float)
    mu_arr = np.asarray(mu, dtype=float)
    log_comb = (
        special.gammaln(n + 1)
        - special.gammaln(tau_arr + 1)
        - special.gammaln(n - tau_arr + 1)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        log_pmf = (
            log_comb
            + special.xlogy(tau_arr, mu_arr)
            + special.xlog1py(n - tau_arr, -mu_arr)
        )
    out = np.exp(log_pmf)
    if out.ndim == 0:
        return float(out)
    return out


def binomial_pmf_matrix(n: int, mus: np.ndarray) -> np.ndarray:
    """Pmf of every outcome for every rate; shape ``(len(mus), n + 1)``.

    Row ``i`` is the full outcome distribution of ``Bin(n, mus[i])`` —
    the mixing weights used to compute expected interval widths.
    """
    n = check_positive_int(n, "n")
    mus = np.asarray(mus, dtype=float)
    taus = np.arange(n + 1, dtype=float)
    return binomial_pmf(taus[None, :], n, mus[:, None])


def binomial_cdf(tau, n: int, mu: float) -> float:
    """``P(X <= tau)`` via the regularised incomplete beta function."""
    n = check_positive_int(n, "n")
    tau = int(tau)
    if tau < 0:
        return 0.0
    if tau >= n:
        return 1.0
    # P(X <= tau) = I_{1-mu}(n - tau, tau + 1).
    return float(special.betainc(n - tau, tau + 1, 1.0 - mu))
