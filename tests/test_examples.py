"""Smoke tests: every example script must run clean end to end.

Examples are documentation that executes; a broken example is a broken
promise.  Each script runs in a subprocess with the repository's
``src`` on the path and must exit 0 with its headline output present.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "estimated accuracy"),
    ("audit_large_kg.py", "SYN 100M"),
    ("compare_interval_methods.py", "empirical coverage"),
    ("dynamic_kg_audit.py", "re-audit annotations saved"),
    ("predicate_quality_report.py", "curation priority"),
    ("plan_audit_budget.py", "planner prediction"),
    ("informative_priors.py", "informative priors save"),
]


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("script,marker", CASES, ids=[c[0] for c in CASES])
def test_example_runs_clean(script, marker):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout
    assert "Traceback" not in result.stderr


def test_all_examples_are_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _ in CASES}
    assert on_disk == covered, "update CASES when adding examples"
