"""Unit tests for the per-predicate partitioned audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.partitioned import audit_by_predicate
from repro.exceptions import ValidationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.synthetic import SyntheticKG
from repro.kg.triple import Triple


@pytest.fixture(scope="module")
def mixed_quality_kg() -> KnowledgeGraph:
    """Two large predicates with very different error rates."""
    rng = np.random.default_rng(0)
    triples: list[Triple] = []
    labels: list[bool] = []
    for i in range(1_200):
        triples.append(Triple(f"e:{i % 400}", "reliable", f"v:{i}"))
        labels.append(bool(rng.random() < 0.97))
    for i in range(800):
        triples.append(Triple(f"e:{i % 300}", "flaky", f"w:{i}"))
        labels.append(bool(rng.random() < 0.55))
    return KnowledgeGraph(triples, labels)


class TestAuditByPredicate:
    @pytest.fixture(scope="class")
    def result(self, mixed_quality_kg):
        return audit_by_predicate(mixed_quality_kg, rng=0)

    def test_one_audit_per_predicate(self, result):
        assert {p.partition for p in result.partitions} == {"reliable", "flaky"}

    def test_partition_estimates_near_truth(self, result, mixed_quality_kg):
        from repro.kg.queries import TripleIndex

        profiles = TripleIndex(mixed_quality_kg).predicate_profiles()
        for audit in result.partitions:
            truth = profiles[audit.partition].accuracy
            assert audit.mu_hat == pytest.approx(truth, abs=0.12)
            assert audit.interval.contains(audit.mu_hat)

    def test_partitions_converged(self, result):
        for audit in result.partitions:
            assert audit.converged
            assert audit.interval.moe <= 0.05 or audit.n_annotated == 0

    def test_weights_sum_to_one(self, result):
        assert sum(p.weight for p in result.partitions) == pytest.approx(1.0)

    def test_worst_partition_identified(self, result):
        assert result.worst_partition.partition == "flaky"

    def test_global_estimate_consistent(self, result, mixed_quality_kg):
        assert result.global_mu_hat == pytest.approx(
            mixed_quality_kg.accuracy, abs=0.06
        )
        assert result.global_interval.contains(result.global_mu_hat)

    def test_cost_accounts_all_annotations(self, result):
        total = sum(p.n_annotated for p in result.partitions)
        assert result.cost.num_triples == total
        assert result.cost_hours > 0

    def test_by_name_lookup(self, result):
        assert result.by_name()["flaky"].partition == "flaky"


class TestEdgeCases:
    def test_small_partition_exhausted(self):
        triples = [Triple(f"e:{i}", "big", f"v:{i}") for i in range(500)]
        labels = [True] * 500
        triples += [Triple("e:rare", "rare", f"v:{i}") for i in range(4)]
        labels += [True, False, True, True]
        kg = KnowledgeGraph(triples, labels)
        result = audit_by_predicate(kg, rng=1)
        rare = result.by_name()["rare"]
        # The 4-fact partition is annotated exhaustively and converged.
        assert rare.n_annotated == 4
        assert rare.converged
        assert rare.mu_hat == pytest.approx(0.75)

    def test_budget_limits_annotations(self, mixed_quality_kg):
        result = audit_by_predicate(
            mixed_quality_kg, epsilon=0.005, max_triples=200, rng=0
        )
        total = sum(p.n_annotated for p in result.partitions)
        assert total == 200
        assert not all(p.converged for p in result.partitions)

    def test_requires_materialised_kg(self):
        with pytest.raises(ValidationError):
            audit_by_predicate(SyntheticKG(100, 10, accuracy=0.9, seed=0))

    def test_unannotated_partition_reports_ignorance(self):
        triples = [Triple(f"e:{i}", "p1", f"v:{i}") for i in range(100)]
        triples.append(Triple("e:q", "p2", "v:q"))
        kg = KnowledgeGraph(triples, [True] * 100 + [False])
        result = audit_by_predicate(kg, max_triples=5, rng=0)
        starved = result.by_name()["p2"]
        assert starved.n_annotated == 0
        assert not starved.converged
        assert starved.interval.width == 1.0  # total ignorance, no fabrication


class TestEvolutionBuilder:
    def test_snapshot_growth(self):
        from repro.kg.evolution import UpdateBatchSpec, build_evolving_kg

        snapshots = build_evolving_kg(
            base_facts=600,
            base_accuracy=0.9,
            updates=[
                UpdateBatchSpec(num_facts=300, accuracy=0.8),
                UpdateBatchSpec(num_facts=300, accuracy=0.4),
            ],
            seed=0,
        )
        assert [kg.num_triples for kg in snapshots] == [600, 900, 1_200]
        # Blended accuracy moves with each batch.
        assert snapshots[1].accuracy == pytest.approx((0.9 * 600 + 0.8 * 300) / 900, abs=0.01)
        assert snapshots[2].accuracy < snapshots[1].accuracy

    def test_deterministic(self):
        from repro.kg.evolution import UpdateBatchSpec, build_evolving_kg

        spec = [UpdateBatchSpec(num_facts=100, accuracy=0.5)]
        a = build_evolving_kg(200, 0.9, spec, seed=5)
        b = build_evolving_kg(200, 0.9, spec, seed=5)
        assert a[-1].triples == b[-1].triples

    def test_validates_specs(self):
        from repro.kg.evolution import UpdateBatchSpec

        with pytest.raises(Exception):
            UpdateBatchSpec(num_facts=0, accuracy=0.5)
