"""Behavioural tests of the evaluation loop's convergence dynamics.

These probe the *shape* of the iterative procedure — how the MoE decays
and the interval tightens — complementing the outcome-level framework
tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.framework import EvaluationConfig, KGAccuracyEvaluator
from repro.intervals.ahpd import AdaptiveHPD
from repro.intervals.wilson import WilsonInterval
from repro.sampling.srs import SimpleRandomSampling
from repro.sampling.twcs import TwoStageWeightedClusterSampling


class TestConvergenceDynamics:
    def test_moe_trends_downward(self, medium_kg):
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), WilsonInterval()
        )
        trace = evaluator.run(rng=0, keep_trace=True).trace
        moes = np.array([record.moe for record in trace])
        # The MoE is noisy step to step but the decade trend is down.
        if moes.size >= 20:
            first_decile = moes[: moes.size // 10 + 1].mean()
            last_decile = moes[-(moes.size // 10 + 1):].mean()
            assert last_decile < first_decile

    def test_only_final_moe_meets_threshold(self, medium_kg):
        # The stop rule fires at the *first* crossing: every earlier
        # consultation must be above epsilon.
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), WilsonInterval()
        )
        trace = evaluator.run(rng=1, keep_trace=True).trace
        for record in trace[:-1]:
            assert record.moe > 0.05
        assert trace[-1].moe <= 0.05

    def test_moe_scales_inverse_sqrt_n(self, medium_kg):
        # Between consultations k and 4k the MoE should roughly halve.
        config = EvaluationConfig(epsilon=0.02, max_triples=5_000)
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), WilsonInterval(), config=config
        )
        trace = evaluator.run(rng=2, keep_trace=True).trace
        by_n = {record.n_annotated: record.moe for record in trace}
        pairs = [(n, 4 * n) for n in (50, 100, 200) if n in by_n and 4 * n in by_n]
        assert pairs, "trace too short for the scaling check"
        for n, n4 in pairs:
            ratio = by_n[n4] / by_n[n]
            assert 0.3 < ratio < 0.75  # ideal is 0.5

    def test_estimates_concentrate(self, medium_kg):
        evaluator = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), WilsonInterval()
        )
        trace = evaluator.run(rng=3, keep_trace=True).trace
        early = [r.mu_hat for r in trace[:5]]
        late = [r.mu_hat for r in trace[-5:]]
        truth = medium_kg.accuracy
        assert abs(np.mean(late) - truth) <= abs(np.mean(early) - truth) + 0.05

    def test_twcs_trace_units_grow_by_cluster(self, medium_kg):
        evaluator = KGAccuracyEvaluator(
            medium_kg, TwoStageWeightedClusterSampling(m=3), WilsonInterval()
        )
        trace = evaluator.run(rng=0, keep_trace=True).trace
        increments = np.diff([record.n_annotated for record in trace])
        assert np.all(increments >= 1)
        assert np.all(increments <= 3)

    def test_ahpd_interval_never_wider_than_each_consultation(self, medium_kg):
        # At every consultation the recorded aHPD interval satisfies
        # the width race against a fixed Jeffreys HPD on the same data.
        from repro.intervals.hpd import HPDCredibleInterval

        ahpd_eval = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), AdaptiveHPD()
        )
        fixed_eval = KGAccuracyEvaluator(
            medium_kg, SimpleRandomSampling(), HPDCredibleInterval()
        )
        ahpd_trace = ahpd_eval.run(rng=9, keep_trace=True).trace
        fixed_trace = fixed_eval.run(rng=9, keep_trace=True).trace
        # Same seed => same sample path while both are still running.
        for a_rec, f_rec in zip(ahpd_trace, fixed_trace):
            assert a_rec.n_annotated == f_rec.n_annotated
            assert (a_rec.upper - a_rec.lower) <= (
                f_rec.upper - f_rec.lower
            ) + 1e-9
