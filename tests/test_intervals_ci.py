"""Unit tests for the frequentist interval methods."""

from __future__ import annotations

import math

import pytest

from repro.estimators.base import Evidence
from repro.intervals.agresti_coull import AgrestiCoullInterval
from repro.intervals.base import critical_value
from repro.intervals.clopper_pearson import ClopperPearsonInterval
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval
from repro.stats.beta import beta_cdf


class TestWald:
    def test_formula_eq5(self):
        ev = Evidence.from_counts(80, 100)
        interval = WaldInterval().compute(ev, alpha=0.05)
        z = critical_value(0.05)
        half = z * math.sqrt(0.8 * 0.2 / 100)
        assert interval.lower == pytest.approx(0.8 - half)
        assert interval.upper == pytest.approx(0.8 + half)

    def test_zero_width_pathology(self):
        # Example 1: unanimous sample -> V = 0 -> CI = [1, 1].
        ev = Evidence.from_counts(30, 30)
        interval = WaldInterval().compute(ev, alpha=0.05)
        assert interval.width == 0.0
        assert interval.lower == interval.upper == 1.0

    def test_overshoot_near_boundary(self):
        ev = Evidence.from_counts(29, 30)
        interval = WaldInterval().compute(ev, alpha=0.05)
        assert interval.upper > 1.0  # the documented Wald overshoot

    def test_uses_design_variance_directly(self):
        # TWCS-style evidence with its own variance.
        ev = Evidence(
            mu_hat=0.8, variance=0.001, n_effective=50, tau_effective=40, n_annotated=60
        )
        interval = WaldInterval().compute(ev, alpha=0.05)
        assert interval.moe == pytest.approx(critical_value(0.05) * math.sqrt(0.001))


class TestWilson:
    def test_formula_eq7(self):
        n, tau, alpha = 100, 80, 0.05
        ev = Evidence.from_counts(tau, n)
        interval = WilsonInterval().compute(ev, alpha=alpha)
        z = critical_value(alpha)
        mu = tau / n
        denom = 1 + z * z / n
        centre = (mu + z * z / (2 * n)) / denom
        spread = (z / denom) * math.sqrt(mu * (1 - mu) / n + z * z / (4 * n * n))
        assert interval.lower == pytest.approx(centre - spread)
        assert interval.upper == pytest.approx(centre + spread)

    def test_never_zero_width_on_unanimous(self):
        ev = Evidence.from_counts(30, 30)
        interval = WilsonInterval().compute(ev, alpha=0.05)
        assert interval.width > 0.0

    def test_stays_in_unit_interval(self):
        for tau, n in [(0, 30), (30, 30), (1, 30), (29, 30)]:
            interval = WilsonInterval().compute(Evidence.from_counts(tau, n), 0.05)
            assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_centre_shrinks_toward_half(self):
        ev = Evidence.from_counts(30, 30)
        interval = WilsonInterval().compute(ev, alpha=0.05)
        assert interval.midpoint < 1.0

    def test_design_effect_widens_interval(self):
        srs_ev = Evidence.from_counts(80, 100)
        # Same point estimate but only 50 effective samples.
        deff_ev = Evidence(
            mu_hat=0.8, variance=0.0032, n_effective=50, tau_effective=40, n_annotated=100
        )
        assert (
            WilsonInterval().compute(deff_ev, 0.05).width
            > WilsonInterval().compute(srs_ev, 0.05).width
        )


class TestAgrestiCoull:
    def test_contains_wilson_interval(self):
        # Agresti-Coull is known to contain the Wilson interval.
        for tau, n in [(25, 30), (15, 30), (29, 30)]:
            ev = Evidence.from_counts(tau, n)
            ac = AgrestiCoullInterval().compute(ev, 0.05)
            wilson = WilsonInterval().compute(ev, 0.05)
            assert ac.lower <= wilson.lower + 1e-12
            assert ac.upper >= wilson.upper - 1e-12

    def test_centre_matches_wilson_centre(self):
        ev = Evidence.from_counts(25, 30)
        ac = AgrestiCoullInterval().compute(ev, 0.05)
        wilson = WilsonInterval().compute(ev, 0.05)
        assert ac.midpoint == pytest.approx(wilson.midpoint)


class TestClopperPearson:
    def test_tail_inversion_property(self):
        # At the bounds, the binomial tail probabilities equal alpha/2 —
        # expressed through the Beta representation.
        tau, n, alpha = 22, 30, 0.05
        interval = ClopperPearsonInterval().compute(Evidence.from_counts(tau, n), alpha)
        assert beta_cdf(interval.lower, tau, n - tau + 1) == pytest.approx(alpha / 2, abs=1e-9)
        assert beta_cdf(interval.upper, tau + 1, n - tau) == pytest.approx(
            1 - alpha / 2, abs=1e-9
        )

    def test_boundary_outcomes(self):
        all_correct = ClopperPearsonInterval().compute(Evidence.from_counts(30, 30), 0.05)
        assert all_correct.upper == 1.0
        assert all_correct.lower > 0.8
        none_correct = ClopperPearsonInterval().compute(Evidence.from_counts(0, 30), 0.05)
        assert none_correct.lower == 0.0
        assert none_correct.upper < 0.2

    def test_wider_than_wilson(self):
        # Conservatism: CP is at least as wide as Wilson for interior tau.
        for tau in (5, 15, 25):
            ev = Evidence.from_counts(tau, 30)
            cp = ClopperPearsonInterval().compute(ev, 0.05)
            wilson = WilsonInterval().compute(ev, 0.05)
            assert cp.width >= wilson.width - 1e-12
