"""Property-based invariants of the frequentist interval family."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.base import Evidence
from repro.intervals.agresti_coull import AgrestiCoullInterval
from repro.intervals.clopper_pearson import ClopperPearsonInterval
from repro.intervals.transforms import ArcsineInterval, LogitInterval
from repro.intervals.wald import WaldInterval
from repro.intervals.wilson import WilsonInterval

# Methods whose bounds are guaranteed inside [0, 1].  Agresti-Coull is
# deliberately absent: as an adjusted-Wald recipe it can overshoot
# slightly at tiny n (Brown, Cai & DasGupta [8]), like Wald itself.
BOUNDED_METHODS = (
    WilsonInterval(),
    ClopperPearsonInterval(),
    ArcsineInterval(),
    LogitInterval(),
)
ALL_METHODS = BOUNDED_METHODS + (AgrestiCoullInterval(), WaldInterval())

outcomes = st.tuples(
    st.integers(min_value=0, max_value=300),
    st.integers(min_value=1, max_value=300),
).filter(lambda pair: pair[0] <= pair[1])

alphas = st.sampled_from([0.10, 0.05, 0.01])


@given(outcome=outcomes, alpha=alphas)
@settings(max_examples=120, deadline=None)
def test_bounded_methods_stay_in_unit_interval(outcome, alpha):
    tau, n = outcome
    evidence = Evidence.from_counts(tau, n)
    for method in BOUNDED_METHODS:
        interval = method.compute(evidence, alpha)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0, method.name


@given(outcome=outcomes, alpha=alphas)
@settings(max_examples=120, deadline=None)
def test_intervals_cover_the_point_estimate(outcome, alpha):
    tau, n = outcome
    evidence = Evidence.from_counts(tau, n)
    for method in ALL_METHODS:
        interval = method.compute(evidence, alpha)
        if method.name == "Logit" and (tau == 0 or tau == n):
            continue  # continuity correction relocates the centre
        assert interval.lower - 1e-12 <= evidence.mu_hat <= interval.upper + 1e-12, (
            method.name
        )


@given(outcome=outcomes)
@settings(max_examples=100, deadline=None)
def test_nesting_in_alpha(outcome):
    # Higher confidence must never shrink an interval.
    tau, n = outcome
    evidence = Evidence.from_counts(tau, n)
    for method in ALL_METHODS:
        w90 = method.compute(evidence, 0.10).width
        w95 = method.compute(evidence, 0.05).width
        w99 = method.compute(evidence, 0.01).width
        assert w90 <= w95 + 1e-12 <= w99 + 2e-12, method.name


@given(outcome=outcomes, alpha=alphas)
@settings(max_examples=100, deadline=None)
def test_width_decreases_with_sample_size(outcome, alpha):
    # Scaling (tau, n) -> (4 tau, 4 n) keeps the point estimate exactly
    # fixed, so every method's width must shrink (or stay zero).
    tau, n = outcome
    small = Evidence.from_counts(tau, n)
    large = Evidence.from_counts(4 * tau, 4 * n)
    for method in ALL_METHODS:
        w_small = method.compute(small, alpha).width
        w_large = method.compute(large, alpha).width
        assert w_large <= w_small + 1e-9, method.name


@given(outcome=outcomes, alpha=alphas)
@settings(max_examples=100, deadline=None)
def test_symmetry_under_label_flip(outcome, alpha):
    # Auditing mu or 1 - mu is the same problem (paper Sec. 6.4): every
    # method's interval must mirror when successes and failures swap.
    tau, n = outcome
    forward = Evidence.from_counts(tau, n)
    mirrored = Evidence.from_counts(n - tau, n)
    for method in ALL_METHODS:
        a = method.compute(forward, alpha)
        b = method.compute(mirrored, alpha)
        assert a.lower == pytest.approx(1.0 - b.upper, abs=1e-9), method.name
        assert a.upper == pytest.approx(1.0 - b.lower, abs=1e-9), method.name
