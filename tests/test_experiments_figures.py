"""Content tests for the analytic experiments (Table 1, Figures 2-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentSettings
from repro.experiments.figure2 import FIGURE2_SCENARIOS, et_waste_ratio, run_figure2
from repro.experiments.figure3 import compute_figure3, expected_hpd_width, run_figure3
from repro.experiments.table1 import run_table1
from repro.intervals.priors import JEFFREYS, KERMAN, UNIFORM

SETTINGS = ExperimentSettings(repetitions=5)


class TestTable1:
    def test_matches_paper_exactly(self):
        report = run_table1(SETTINGS, include_syn100m=False)
        rows = {row["dataset"]: row for row in report.rows}
        assert rows["YAGO"]["num_facts"] == 1_386
        assert rows["NELL"]["num_clusters"] == 817
        assert rows["DBPEDIA"]["avg_cluster_size"] == pytest.approx(3.18)
        assert rows["FACTBENCH"]["accuracy"] == pytest.approx(0.54)

    def test_syn100m_row(self):
        report = run_table1(SETTINGS, include_syn100m=True)
        syn = report.rows[-1]
        assert syn["num_facts"] == 101_415_011
        assert syn["num_clusters"] == 5_000_000
        assert syn["avg_cluster_size"] == pytest.approx(20.28)


class TestFigure2:
    def test_three_scenarios(self):
        report = run_figure2(SETTINGS)
        assert [row["scenario"] for row in report.rows] == [
            "symmetric",
            "moderately skewed",
            "highly skewed",
        ]

    def test_symmetric_panel_identical_intervals(self):
        report = run_figure2(SETTINGS)
        row = report.rows[0]
        assert row["et_interval"] == row["hpd_interval"]
        assert row["width_gain"] == "0.0%"

    def test_paper_waste_ratio_claims(self):
        # Moderate skew: < 75%; high skew: ~< 20% (paper Sec. 4.2).
        moderate = et_waste_ratio(FIGURE2_SCENARIOS[1].posterior(), 0.05)
        high = et_waste_ratio(FIGURE2_SCENARIOS[2].posterior(), 0.05)
        assert moderate < 0.75
        assert high < 0.25
        assert high < moderate

    def test_hpd_width_never_larger(self):
        report = run_figure2(SETTINGS)
        for row in report.rows:
            assert row["hpd_width"] <= row["et_width"] + 1e-9


class TestFigure3:
    @pytest.fixture(scope="class")
    def series(self):
        return compute_figure3(n=30, alpha=0.05, grid_points=99)

    def test_curves_positive_and_bounded(self, series):
        for widths in series.widths_by_prior.values():
            assert np.all(widths > 0)
            assert np.all(widths < 1)

    def test_kerman_optimal_at_extremes(self, series):
        winners = series.optimal_prior()
        assert winners[0] == "Kerman"
        assert winners[-1] == "Kerman"

    def test_uniform_optimal_at_centre(self, series):
        winners = series.optimal_prior()
        centre = len(winners) // 2
        assert winners[centre] == "Uniform"

    def test_jeffreys_never_optimal(self, series):
        # The paper's headline Fig. 3 finding.
        assert "Jeffreys" not in set(series.optimal_prior())

    def test_jeffreys_between_the_others(self):
        # Jeffreys is a trade-off: between Kerman and Uniform widths.
        mus = np.array([0.05, 0.5, 0.95])
        kerman = expected_hpd_width(KERMAN, 30, 0.05, mus)
        jeffreys = expected_hpd_width(JEFFREYS, 30, 0.05, mus)
        uniform = expected_hpd_width(UNIFORM, 30, 0.05, mus)
        lower = np.minimum(kerman, uniform)
        upper = np.maximum(kerman, uniform)
        assert np.all(jeffreys >= lower - 1e-9)
        assert np.all(jeffreys <= upper + 1e-9)

    def test_symmetry_of_curves(self, series):
        # Uninformative priors are symmetric, so E[w](mu) == E[w](1-mu).
        for widths in series.widths_by_prior.values():
            assert np.allclose(widths, widths[::-1], atol=1e-9)

    def test_report_renders(self):
        report = run_figure3(SETTINGS, n=30, grid_points=39)
        assert "Kerman" in report.render()
        assert any("optimal" in note for note in report.notes)
