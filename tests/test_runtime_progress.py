"""Progress-reporter tests: per-cell lines, tty ticker, calibration.

:mod:`repro.runtime.progress` promises *aggregated* reporting: one
stderr line per completed cell whatever its shard count, an in-place
shard ticker on interactive terminals only, and a single calibration
line per adaptive-chunking run.  These tests pin that surface down
directly (the executor integration is covered in the shard suite).
"""

from __future__ import annotations

import io
import sys

from repro.runtime import (
    CellSpec,
    ChunkCalibration,
    ProgressReporter,
    RunTelemetry,
    TaskFailure,
)
from repro.runtime.scheduler import CellResult
from repro.runtime.telemetry import ProgressSubscriber


class _TtyStream(io.StringIO):
    def isatty(self) -> bool:  # pragma: no cover - trivial
        return True


def _cell(label: str = "NELL/SRS/Wilson") -> CellSpec:
    return CellSpec(key=(label,), label=label, method="Wilson")


def _result(**overrides) -> CellResult:
    base = dict(cell=_cell(), value=None, seconds=1.234, cached=False)
    base.update(overrides)
    return CellResult(**base)


class TestCompletionLines:
    def test_computed_cell_line(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(3, 12, _result())
        line = stream.getvalue()
        assert "[ 3/12]" in line
        assert "NELL/SRS/Wilson" in line
        assert "1.23s" in line

    def test_cached_cell_says_cache(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(1, 2, _result(cached=True, seconds=0.0))
        assert "(cache)" in stream.getvalue()

    def test_sharded_cell_annotates_shard_count(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(1, 1, _result(shards=20))
        line = stream.getvalue()
        assert "20 shards" in line
        assert "resumed" not in line

    def test_resumed_shards_annotated(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(1, 1, _result(shards=20, shards_cached=7))
        assert "7 resumed" in stream.getvalue()

    def test_progress_width_aligns_to_total(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(7, 100, _result())
        assert "[  7/100]" in stream.getvalue()

    def test_default_stream_is_stderr(self, monkeypatch):
        captured = io.StringIO()
        monkeypatch.setattr(sys, "stderr", captured)
        ProgressReporter()(1, 1, _result())
        assert "NELL/SRS/Wilson" in captured.getvalue()


class TestCalibrationLine:
    def test_announces_chunk_and_pilot(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream).calibration_update(
            ChunkCalibration(
                cell_key=("NELL", "SRS", "Wilson"),
                pilot_repetitions=4,
                pilot_seconds=0.5,
                chunk_size=40,
            )
        )
        line = stream.getvalue()
        assert "[calibrated] chunk_size=40" in line
        assert "4 pilot reps" in line
        assert "NELL/SRS/Wilson" in line


class TestShardTicker:
    def test_silent_on_non_tty(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream).shard_update(_cell(), 1, 4, 2, 8)
        assert stream.getvalue() == ""

    def test_ticker_rewrites_in_place_on_tty(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream)
        reporter.shard_update(_cell(), 1, 4, 2, 8)
        output = stream.getvalue()
        assert output.startswith("\r\x1b[K")
        assert "1/4 shards" in output
        assert "(2/8 reps)" in output
        assert not output.endswith("\n")

    def test_completion_line_clears_pending_ticker(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream)
        reporter.shard_update(_cell(), 3, 4, 6, 8)
        before = len(stream.getvalue())
        reporter(1, 1, _result(shards=4))
        tail = stream.getvalue()[before:]
        # The completion line first erases the ticker, then prints.
        assert tail.startswith("\r\x1b[K")
        assert tail.endswith("\n")

    def test_no_clear_without_prior_ticker(self):
        stream = _TtyStream()
        ProgressReporter(stream=stream)(1, 1, _result())
        assert "\r" not in stream.getvalue()


class TestTickerThrottle:
    def test_first_tick_always_draws(self):
        stream = _TtyStream()
        ProgressReporter(stream=stream, tick_interval=3600.0).shard_update(
            _cell(), 1, 4, 2, 8
        )
        assert "1/4 shards" in stream.getvalue()

    def test_rapid_intermediate_ticks_are_suppressed(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream, tick_interval=3600.0)
        reporter.shard_update(_cell(), 1, 4, 2, 8)
        drawn = stream.getvalue()
        reporter.shard_update(_cell(), 2, 4, 4, 8)
        reporter.shard_update(_cell(), 3, 4, 6, 8)
        assert stream.getvalue() == drawn  # inside the interval: no redraw

    def test_final_tick_always_draws(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream, tick_interval=3600.0)
        reporter.shard_update(_cell(), 1, 4, 2, 8)
        reporter.shard_update(_cell(), 4, 4, 8, 8)
        assert "4/4 shards" in stream.getvalue()

    def test_zero_interval_draws_every_tick(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream, tick_interval=0.0)
        reporter.shard_update(_cell(), 1, 4, 2, 8)
        reporter.shard_update(_cell(), 2, 4, 4, 8)
        assert "2/4 shards" in stream.getvalue()


def _failure(**overrides) -> TaskFailure:
    base = dict(
        label="NELL/SRS/Wilson",
        token="tok0",
        attempts=1,
        error="ValueError: boom",
        traceback=None,
        backend="serial",
    )
    base.update(overrides)
    return TaskFailure(**base)


class TestFaultLines:
    """Retries and quarantines are real lines even on non-tty streams."""

    def test_retry_line_on_non_tty(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream).retry_update(_failure(), 2, 3, 0.5)
        line = stream.getvalue()
        assert "[retry 2/3]" in line
        assert "NELL/SRS/Wilson" in line
        assert "ValueError: boom" in line
        assert "backoff 0.50s" in line
        assert line.endswith("\n")

    def test_quarantine_line_on_non_tty(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream).failure_update(_failure(attempts=3))
        line = stream.getvalue()
        assert "[quarantined]" in line
        assert "NELL/SRS/Wilson" in line

    def test_calibration_line_on_non_tty(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream).calibration_update(
            ChunkCalibration(
                cell_key=("NELL",), pilot_repetitions=2,
                pilot_seconds=0.1, chunk_size=8,
            )
        )
        assert "[calibrated] chunk_size=8" in stream.getvalue()

    def test_retry_line_clears_a_pending_ticker_first(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream)
        reporter.shard_update(_cell(), 1, 4, 2, 8)
        before = len(stream.getvalue())
        reporter.retry_update(_failure(), 1, 2, 0.1)
        tail = stream.getvalue()[before:]
        assert tail.startswith("\r\x1b[K")
        assert "[retry" in tail


class TestFinishUpdate:
    """The abort-clear guarantee: however the run ends, the ticker is
    cleared so the traceback or prompt starts on a fresh line."""

    def test_finish_clears_a_pending_ticker(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream)
        reporter.shard_update(_cell(), 3, 4, 6, 8)
        before = len(stream.getvalue())
        reporter.finish_update("aborted")
        assert stream.getvalue()[before:] == "\r\x1b[K"

    def test_finish_is_silent_without_a_ticker(self):
        stream = _TtyStream()
        ProgressReporter(stream=stream).finish_update("ok")
        assert stream.getvalue() == ""

    def test_run_finish_event_reaches_finish_update(self):
        # The executor emits run_finish in a finally block; the
        # subscriber must route it to finish_update so a
        # PlanExecutionError abort mid-ticker still clears the line.
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream)
        bus = RunTelemetry()
        bus.subscribe(ProgressSubscriber(reporter))
        bus.emit(
            "shard_progress", payload=_cell(), label="NELL/SRS/Wilson",
            shards_done=1, shards_total=4, reps_done=2, reps_total=8,
        )
        before = len(stream.getvalue())
        bus.emit("run_finish", status="aborted", seconds=0.1)
        assert stream.getvalue()[before:] == "\r\x1b[K"

    def test_plain_callable_progress_ignores_finish(self):
        # Duck typing: a bare lambda progress hook has no finish_update
        # and must not break on run_finish.
        seen = []
        bus = RunTelemetry()
        bus.subscribe(ProgressSubscriber(lambda done, total, result: seen.append(done)))
        bus.emit("run_finish", status="ok", seconds=0.0)
        assert seen == []
