"""Progress-reporter tests: per-cell lines, tty ticker, calibration.

:mod:`repro.runtime.progress` promises *aggregated* reporting: one
stderr line per completed cell whatever its shard count, an in-place
shard ticker on interactive terminals only, and a single calibration
line per adaptive-chunking run.  These tests pin that surface down
directly (the executor integration is covered in the shard suite).
"""

from __future__ import annotations

import io
import sys

from repro.runtime import CellSpec, ChunkCalibration, ProgressReporter
from repro.runtime.scheduler import CellResult


class _TtyStream(io.StringIO):
    def isatty(self) -> bool:  # pragma: no cover - trivial
        return True


def _cell(label: str = "NELL/SRS/Wilson") -> CellSpec:
    return CellSpec(key=(label,), label=label, method="Wilson")


def _result(**overrides) -> CellResult:
    base = dict(cell=_cell(), value=None, seconds=1.234, cached=False)
    base.update(overrides)
    return CellResult(**base)


class TestCompletionLines:
    def test_computed_cell_line(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(3, 12, _result())
        line = stream.getvalue()
        assert "[ 3/12]" in line
        assert "NELL/SRS/Wilson" in line
        assert "1.23s" in line

    def test_cached_cell_says_cache(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(1, 2, _result(cached=True, seconds=0.0))
        assert "(cache)" in stream.getvalue()

    def test_sharded_cell_annotates_shard_count(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(1, 1, _result(shards=20))
        line = stream.getvalue()
        assert "20 shards" in line
        assert "resumed" not in line

    def test_resumed_shards_annotated(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(1, 1, _result(shards=20, shards_cached=7))
        assert "7 resumed" in stream.getvalue()

    def test_progress_width_aligns_to_total(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream)(7, 100, _result())
        assert "[  7/100]" in stream.getvalue()

    def test_default_stream_is_stderr(self, monkeypatch):
        captured = io.StringIO()
        monkeypatch.setattr(sys, "stderr", captured)
        ProgressReporter()(1, 1, _result())
        assert "NELL/SRS/Wilson" in captured.getvalue()


class TestCalibrationLine:
    def test_announces_chunk_and_pilot(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream).calibration_update(
            ChunkCalibration(
                cell_key=("NELL", "SRS", "Wilson"),
                pilot_repetitions=4,
                pilot_seconds=0.5,
                chunk_size=40,
            )
        )
        line = stream.getvalue()
        assert "[calibrated] chunk_size=40" in line
        assert "4 pilot reps" in line
        assert "NELL/SRS/Wilson" in line


class TestShardTicker:
    def test_silent_on_non_tty(self):
        stream = io.StringIO()
        ProgressReporter(stream=stream).shard_update(_cell(), 1, 4, 2, 8)
        assert stream.getvalue() == ""

    def test_ticker_rewrites_in_place_on_tty(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream)
        reporter.shard_update(_cell(), 1, 4, 2, 8)
        output = stream.getvalue()
        assert output.startswith("\r\x1b[K")
        assert "1/4 shards" in output
        assert "(2/8 reps)" in output
        assert not output.endswith("\n")

    def test_completion_line_clears_pending_ticker(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream=stream)
        reporter.shard_update(_cell(), 3, 4, 6, 8)
        before = len(stream.getvalue())
        reporter(1, 1, _result(shards=4))
        tail = stream.getvalue()[before:]
        # The completion line first erases the ticker, then prints.
        assert tail.startswith("\r\x1b[K")
        assert tail.endswith("\n")

    def test_no_clear_without_prior_ticker(self):
        stream = _TtyStream()
        ProgressReporter(stream=stream)(1, 1, _result())
        assert "\r" not in stream.getvalue()
