"""Smoke + shape tests for the Monte-Carlo experiment modules.

Full 1,000-repetition reproductions live in the benchmark harness; here
each experiment runs with a handful of repetitions on a reduced dataset
roster to validate wiring, table shapes, and the qualitative orderings
that don't need large samples.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_batch_size_ablation, run_hpd_solver_ablation
from repro.experiments.config import ExperimentSettings
from repro.experiments.coverage_audit import run_coverage_audit
from repro.experiments.dynamic_audit import run_dynamic_audit
from repro.experiments.example1 import run_example1
from repro.experiments.example2 import run_example2
from repro.experiments.figure4 import figure4_studies, run_figure4
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3, table3_studies
from repro.experiments.table4 import run_table4

SMALL = ExperimentSettings(repetitions=4, datasets=("YAGO", "NELL"))
TINY = ExperimentSettings(repetitions=3, datasets=("YAGO",))


class TestTable2:
    def test_shape_and_content(self):
        report = run_table2(SMALL)
        assert len(report.rows) == 7  # 3 ET + 3 HPD + aHPD
        assert set(report.headers) == {"interval", "YAGO", "NELL"}
        for row in report.rows:
            for dataset in ("YAGO", "NELL"):
                assert "±" in str(row[dataset])


class TestTable3:
    def test_structure(self):
        report = run_table3(SMALL, strategies=("SRS",))
        assert len(report.rows) == 3  # Wald, Wilson, aHPD
        assert any("†" in str(note) for note in report.notes)

    def test_studies_keys(self):
        studies = table3_studies(TINY, strategies=("SRS",))
        assert ("YAGO", "SRS", "aHPD") in studies
        assert studies[("YAGO", "SRS", "aHPD")].repetitions == 3


class TestTable4:
    def test_syn100m_single_cell(self):
        settings = ExperimentSettings(repetitions=3)
        report = run_table4(settings, accuracies=(0.9,), strategies=("SRS",))
        assert len(report.rows) == 3
        assert "mu=0.9 triples" in report.headers


class TestFigure4:
    def test_reduction_column(self):
        report = run_figure4(TINY, alphas=(0.10,), strategies=("SRS",))
        assert len(report.rows) == 1
        assert report.rows[0]["reduction"].endswith("%")

    def test_studies_carry_alpha(self):
        studies = figure4_studies(TINY, alphas=(0.10,), strategies=("SRS",))
        assert ("YAGO", "SRS", 0.10, "aHPD") in studies


class TestExamples:
    def test_example1_rows(self):
        report = run_example1(ExperimentSettings(repetitions=30))
        quantities = [row["quantity"] for row in report.rows]
        assert "zero-width interval rate" in quantities

    def test_example2_rows(self):
        report = run_example2(ExperimentSettings(repetitions=3))
        assert [row["configuration"] for row in report.rows] == [
            "aHPD informative",
            "aHPD uninformative",
        ]


class TestCoverageAudit:
    def test_rows_per_method(self):
        report = run_coverage_audit(
            ExperimentSettings(repetitions=50), mus=(0.91, 0.5), n=30
        )
        methods = [row["method"] for row in report.rows]
        assert "Wald" in methods and "aHPD" in methods
        assert "Arcsine" in methods and "Logit" in methods
        assert len(report.rows) == 8


class TestDynamicAudit:
    def test_two_regimes(self):
        report = run_dynamic_audit(ExperimentSettings(repetitions=3))
        regimes = {row["regime"] for row in report.rows}
        assert regimes == {"stable", "drift"}


class TestAblations:
    def test_hpd_solver_agreement(self):
        report = run_hpd_solver_ablation(ExperimentSettings(repetitions=3), n=20)
        devs = [float(str(row["max_dev_vs_slsqp"])) for row in report.rows]
        assert max(devs) < 1e-6

    def test_batch_ablation_overshoot(self):
        report = run_batch_size_ablation(
            ExperimentSettings(repetitions=5), batch_sizes=(1, 30)
        )
        assert len(report.rows) == 2
        assert report.rows[0]["overshoot_vs_1"] == "0%"
