"""Unit tests for the settings module: knob registry, resolvers, RunContext."""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

import pytest

from repro.exceptions import ValidationError
from repro.runtime import (
    ParallelExecutor,
    ResultStore,
    configure,
    default_context,
    default_executor,
    reset_defaults,
)
from repro.runtime.settings import (
    KNOBS,
    RunContext,
    env_knob,
    resolve_chunk_seconds,
    resolve_chunk_size,
    resolve_max_retries,
    resolve_on_error,
    resolve_service_address,
    resolve_workers,
)

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(autouse=True)
def _fresh_defaults():
    yield
    reset_defaults()


class TestKnobRegistry:
    """settings.KNOBS is the single contract for REPRO_* environment use."""

    def test_expected_knobs(self):
        assert sorted(KNOBS) == [
            "REPRO_BACKEND",
            "REPRO_CACHE_DIR",
            "REPRO_CHAOS_RATE",
            "REPRO_CHAOS_SEED",
            "REPRO_CHUNK_SECONDS",
            "REPRO_CHUNK_SIZE",
            "REPRO_KERNEL",
            "REPRO_MAX_RETRIES",
            "REPRO_ON_ERROR",
            "REPRO_SERVICE",
            "REPRO_SOLVE_BATCH_MAX",
            "REPRO_SOLVE_BATCH_WINDOW",
            "REPRO_SOLVE_TABLE",
            "REPRO_SPOOL_DIR",
            "REPRO_TRACE_FILE",
            "REPRO_WORKERS",
        ]

    def test_every_knob_has_a_description(self):
        for name, (parse, description) in KNOBS.items():
            assert callable(parse), name
            assert description.strip(), name

    def test_every_source_mention_is_registered(self):
        # Any REPRO_* token anywhere in the package must be a registered
        # knob: a new env var without a KNOBS entry is drift, not a
        # feature.
        mentions = set()
        for path in SRC.rglob("*.py"):
            mentions.update(re.findall(r"REPRO_[A-Z_]+[A-Z]", path.read_text()))
        assert mentions  # the scan actually found the sources
        unregistered = mentions - set(KNOBS)
        assert not unregistered, f"unregistered REPRO_* knobs: {unregistered}"

    def test_settings_is_the_only_environ_reader(self):
        # The resolution-at-construction contract only holds if nothing
        # else consults the environment.
        offenders = [
            str(path.relative_to(SRC))
            for path in SRC.rglob("*.py")
            if "os.environ" in path.read_text()
            and path.name != "settings.py"
        ]
        assert offenders == []

    def test_unset_and_blank_are_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env_knob("REPRO_WORKERS") is None
        monkeypatch.setenv("REPRO_WORKERS", "   ")
        assert env_knob("REPRO_WORKERS") is None

    def test_parsed_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert env_knob("REPRO_WORKERS") == 4

    def test_malformed_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "lots")
        with pytest.raises(ValidationError, match="REPRO_CHUNK_SIZE"):
            env_knob("REPRO_CHUNK_SIZE")

    def test_unregistered_name_raises(self):
        with pytest.raises(ValidationError, match="unregistered"):
            env_knob("REPRO_NOT_A_KNOB")


class TestResolvers:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2
        assert resolve_workers(None) == 7

    def test_workers_floor(self):
        with pytest.raises(ValidationError, match="workers"):
            resolve_workers(0)

    def test_chunk_size_validation(self):
        assert resolve_chunk_size(None) is None
        assert resolve_chunk_size(5) == 5
        with pytest.raises(ValidationError, match="chunk_size"):
            resolve_chunk_size(0)

    def test_chunk_seconds_validation(self):
        assert resolve_chunk_seconds(0.5) == 0.5
        with pytest.raises(ValidationError, match="chunk_seconds"):
            resolve_chunk_seconds(0.0)

    def test_max_retries(self, monkeypatch):
        assert resolve_max_retries(None) == 0
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        assert resolve_max_retries(None) == 2
        with pytest.raises(ValidationError, match="max_retries"):
            resolve_max_retries(-1)

    def test_on_error(self):
        assert resolve_on_error(None) == "raise"
        assert resolve_on_error("continue") == "continue"
        with pytest.raises(ValidationError, match="on_error"):
            resolve_on_error("explode")

    def test_service_address(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        with pytest.raises(ValidationError, match="REPRO_SERVICE"):
            resolve_service_address(None)
        monkeypatch.setenv("REPRO_SERVICE", "127.0.0.1:8631")
        assert resolve_service_address(None) == "127.0.0.1:8631"
        assert resolve_service_address("/tmp/svc.sock") == "/tmp/svc.sock"


class TestRunContext:
    def test_is_immutable(self):
        ctx = RunContext(workers=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.workers = 3

    def test_resolves_once_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        ctx = RunContext()
        monkeypatch.setenv("REPRO_WORKERS", "9")
        assert ctx.workers == 3  # snapshot, not a live env read

    def test_chunk_knobs_mutually_exclusive(self):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            RunContext(chunk_size=5, chunk_seconds=0.5)

    def test_replace_clears_sibling_chunk_knob(self):
        ctx = RunContext(chunk_size=5)
        adaptive = ctx.replace(chunk_seconds=0.5)
        assert adaptive.chunk_size is None
        assert adaptive.chunk_seconds == 0.5
        fixed = adaptive.replace(chunk_size=3)
        assert fixed.chunk_seconds is None

    def test_replace_max_retries_supersedes_policy(self):
        ctx = RunContext(max_retries=1)
        bumped = ctx.replace(max_retries=4)
        assert bumped.retry_policy.max_retries == 4
        assert ctx.retry_policy.max_retries == 1  # original untouched

    def test_store_coercion(self, tmp_path):
        ctx = RunContext(store=tmp_path / "cache")
        assert isinstance(ctx.store, ResultStore)

    def test_describe_is_json_ready(self, tmp_path):
        ctx = RunContext(
            workers=2, store=tmp_path / "cache", backend="serial", max_retries=1
        )
        description = ctx.describe()
        assert description["workers"] == 2
        assert description["backend"] == "serial"
        assert description["max_retries"] == 1
        assert description["cache_dir"].endswith("cache")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValidationError, match="unknown execution backend"):
            RunContext(backend="quantum")


class TestWrapperEquivalence:
    """configure()/default_executor() are thin wrappers over RunContext."""

    def test_default_executor_equals_from_context(self, tmp_path):
        kwargs = dict(
            workers=2,
            chunk_size=4,
            backend="serial",
            max_retries=1,
            on_error="continue",
        )
        configure(cache_dir=tmp_path / "cache", **kwargs)
        via_wrapper = default_executor()
        via_context = ParallelExecutor.from_context(
            RunContext(store=tmp_path / "cache", **kwargs)
        )
        for attr in (
            "workers", "chunk_size", "chunk_seconds", "backend", "on_error",
        ):
            assert getattr(via_wrapper, attr) == getattr(via_context, attr)
        assert via_wrapper.retry_policy == via_context.retry_policy
        assert via_wrapper.store.root == via_context.store.root

    def test_configure_context_bulk_install(self):
        ctx = RunContext(workers=3, backend="serial", max_retries=2)
        configure(context=ctx)
        installed = default_context()
        assert installed.workers == 3
        assert installed.backend == "serial"
        assert installed.retry_policy.max_retries == 2

    def test_configure_context_excludes_kwargs(self):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            configure(workers=2, context=RunContext())

    def test_reset_defaults_restores_env_fallback(self, monkeypatch):
        configure(context=RunContext(workers=2))
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert default_executor().workers == 2  # override wins
        reset_defaults()
        assert default_executor().workers == 5  # env fallback again

    def test_execute_rejects_executor_and_context(self):
        from repro.runtime import execute
        from repro.runtime.spec import StudyPlan

        plan = StudyPlan.__new__(StudyPlan)  # never run; validation first
        with pytest.raises(ValidationError, match="not both"):
            execute(plan, executor=default_executor(), context=RunContext())
