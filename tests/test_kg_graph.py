"""Unit tests for the in-memory KnowledgeGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyGraphError, UnknownEntityError, ValidationError
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple


class TestConstruction:
    def test_counts(self, tiny_kg):
        assert tiny_kg.num_triples == 6
        assert tiny_kg.num_clusters == 3
        assert len(tiny_kg) == 6

    def test_accuracy(self, tiny_kg):
        assert tiny_kg.accuracy == pytest.approx(4 / 6)

    def test_clusters_are_contiguous(self, tiny_kg):
        # Subjects must be grouped after internal re-ordering.
        subjects = [t.subject for t in tiny_kg.triples]
        seen = set()
        previous = None
        for subject in subjects:
            if subject != previous:
                assert subject not in seen
                seen.add(subject)
            previous = subject

    def test_offsets_consistent_with_sizes(self, tiny_kg):
        assert tiny_kg.cluster_offsets[0] == 0
        assert tiny_kg.cluster_offsets[-1] == tiny_kg.num_triples
        assert np.array_equal(
            np.diff(tiny_kg.cluster_offsets), tiny_kg.cluster_sizes
        )

    def test_labels_follow_reordering(self):
        # Construct with interleaved subjects; labels must track triples.
        triples = [
            Triple("b", "p", "o1"),
            Triple("a", "p", "o2"),
            Triple("b", "p", "o3"),
        ]
        kg = KnowledgeGraph(triples, [True, False, True])
        for idx in range(3):
            triple = kg.triple(idx)
            expected = triple.subject == "b"
            assert bool(kg.labels([idx])[0]) == expected

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            KnowledgeGraph([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            KnowledgeGraph([Triple("s", "p", "o")], [True, False])

    def test_non_triple_rejected(self):
        with pytest.raises(ValidationError):
            KnowledgeGraph([("s", "p", "o")], [True])  # type: ignore[list-item]


class TestLookups:
    def test_subjects_vectorised(self, tiny_kg):
        subjects = tiny_kg.subjects(np.arange(6))
        sizes = tiny_kg.cluster_sizes
        expected = np.repeat(np.arange(3), sizes)
        assert np.array_equal(subjects, expected)

    def test_cluster_triples(self, tiny_kg):
        for cid in range(tiny_kg.num_clusters):
            idx = tiny_kg.cluster_triples(cid)
            assert idx.size == tiny_kg.cluster_size(cid)
            assert np.all(tiny_kg.subjects(idx) == cid)

    def test_entity_cluster_by_name(self, tiny_kg):
        cluster = tiny_kg.entity_cluster("e:bob")
        assert len(cluster) == 3
        assert all(t.subject == "e:bob" for t in cluster)

    def test_unknown_entity(self, tiny_kg):
        with pytest.raises(UnknownEntityError):
            tiny_kg.entity_id("e:nobody")

    def test_out_of_range_index(self, tiny_kg):
        with pytest.raises(ValidationError):
            tiny_kg.labels([99])
        with pytest.raises(ValidationError):
            tiny_kg.labels([-1])

    def test_out_of_range_cluster(self, tiny_kg):
        with pytest.raises(ValidationError):
            tiny_kg.cluster_triples(5)

    def test_labels_read_only(self, tiny_kg):
        with pytest.raises(ValueError):
            tiny_kg.all_labels[0] = False


class TestMerge:
    def test_merge_counts_and_accuracy(self, tiny_kg):
        other = KnowledgeGraph(
            [Triple("e:dave", "bornIn", "v:oslo")], [False]
        )
        merged = tiny_kg.merge(other)
        assert merged.num_triples == 7
        assert merged.num_clusters == 4
        assert merged.accuracy == pytest.approx(4 / 7)

    def test_merge_same_subject_consolidates(self, tiny_kg):
        other = KnowledgeGraph(
            [Triple("e:alice", "hasGenre", "v:jazz")], [True]
        )
        merged = tiny_kg.merge(other)
        assert merged.num_clusters == 3
        assert len(merged.entity_cluster("e:alice")) == 3

    def test_merge_rejects_other_types(self, tiny_kg):
        with pytest.raises(ValidationError):
            tiny_kg.merge("not a graph")  # type: ignore[arg-type]

    def test_originals_unchanged(self, tiny_kg):
        before = tiny_kg.num_triples
        tiny_kg.merge(tiny_kg)
        assert tiny_kg.num_triples == before


class TestDunder:
    def test_iteration(self, tiny_kg):
        assert list(iter(tiny_kg)) == list(tiny_kg.triples)

    def test_repr_mentions_stats(self, tiny_kg):
        text = repr(tiny_kg)
        assert "num_triples=6" in text
        assert "accuracy=" in text
